"""Scientific text generation.

Generates the ground-truth content of synthetic scientific documents: prose
paragraphs with domain vocabulary, LaTeX equations, SMILES strings, tables,
figure captions, citation blocks and reference entries.  The generator is the
stand-in for the paper's HTML-derived ground truth: every document's true text
is known exactly, which is what makes the accuracy metrics computable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.documents import lexicon
from repro.documents.document import PageContent, PageElement


@dataclass(frozen=True)
class TextGenConfig:
    """Knobs of the text generator.

    Attributes
    ----------
    min_sentences_per_paragraph, max_sentences_per_paragraph:
        Range of paragraph lengths.
    min_words_per_sentence, max_words_per_sentence:
        Range of sentence lengths (whitespace tokens).
    min_elements_per_page, max_elements_per_page:
        Range of content blocks per page (headings and boilerplate excluded).
    """

    min_sentences_per_paragraph: int = 3
    max_sentences_per_paragraph: int = 6
    min_words_per_sentence: int = 9
    max_words_per_sentence: int = 22
    min_elements_per_page: int = 4
    max_elements_per_page: int = 8


_GREEK = ("\\alpha", "\\beta", "\\gamma", "\\lambda", "\\mu", "\\sigma", "\\theta", "\\phi", "\\omega", "\\epsilon")
_OPERATORS = ("+", "-", "\\cdot", "\\times")
_FUNCTIONS = ("\\exp", "\\log", "\\sin", "\\cos", "\\tanh", "\\sqrt")
_VARIABLES = ("x", "y", "z", "t", "u", "v", "n", "k", "p", "q")
_SMILES_FRAGMENTS = ("C", "CC", "C(=O)", "O", "N", "c1ccccc1", "C(N)", "S(=O)(=O)", "Cl", "F", "[Na+]", "C#N", "OC")


class ScientificTextGenerator:
    """Domain-conditioned generator of scientific page content.

    Parameters
    ----------
    domain:
        One of :data:`repro.documents.lexicon.DOMAINS`.
    rng:
        Random generator driving all sampling (pass a per-document stream for
        reproducibility).
    config:
        Optional :class:`TextGenConfig`.
    """

    def __init__(
        self,
        domain: str,
        rng: np.random.Generator,
        config: TextGenConfig | None = None,
    ) -> None:
        if domain not in lexicon.DOMAINS:
            raise KeyError(f"unknown domain: {domain!r}")
        self.domain = domain
        self.rng = rng
        self.config = config or TextGenConfig()
        self._terms = np.asarray(lexicon.DOMAIN_TERMS[domain])
        self._nouns = np.asarray(lexicon.ACADEMIC_NOUNS)
        self._verbs = np.asarray(lexicon.ACADEMIC_VERBS)
        self._adjectives = np.asarray(lexicon.ACADEMIC_ADJECTIVES)
        self._connectives = np.asarray(lexicon.CONNECTIVES)
        self._fragile = np.asarray(lexicon.FRAGILE_ENTITIES.get(domain, ("unit",)))
        self._surnames = np.asarray(lexicon.AUTHOR_SURNAMES)

    # ------------------------------------------------------------------ #
    # Sentence / paragraph generation
    # ------------------------------------------------------------------ #
    def sentence(self) -> str:
        """Generate one scientific-sounding sentence."""
        rng = self.rng
        cfg = self.config
        n_words = int(rng.integers(cfg.min_words_per_sentence, cfg.max_words_per_sentence + 1))
        adj = rng.choice(self._adjectives, size=3)
        noun = rng.choice(self._nouns, size=4)
        term = rng.choice(self._terms, size=4)
        verb = rng.choice(self._verbs, size=2)
        parts: list[str] = []
        if rng.random() < 0.25:
            parts.append(str(rng.choice(self._connectives)).capitalize() + ",")
            parts.append("the")
        else:
            parts.append("The")
        parts.extend([str(adj[0]), str(noun[0]), "of", "the", str(term[0])])
        parts.append(str(verb[0]) + "s")
        parts.extend(["a", str(adj[1]), str(noun[1]), "in", "the", str(term[1]), str(noun[2])])
        if rng.random() < 0.35:
            parts.extend(["with", "respect", "to", "the", str(term[2]), str(noun[3])])
        if rng.random() < 0.25:
            value = rng.random() * 100
            parts.extend(["at", f"{value:.1f}", "percent"])
        if rng.random() < 0.18:
            parts.extend(["for", str(self._fragile[int(rng.integers(0, len(self._fragile)))])])
        # Pad or trim to the target length with additional qualifier words.
        fillers = rng.choice(self._terms, size=max(1, n_words))
        i = 0
        while len(parts) < n_words and i < len(fillers):
            parts.extend(["and", "the", str(fillers[i])])
            i += 1
        sentence = " ".join(parts[:n_words]).rstrip(",")
        return sentence + "."

    def paragraph(self, n_sentences: int | None = None) -> str:
        """Generate a paragraph of several sentences, possibly with a citation."""
        rng = self.rng
        cfg = self.config
        if n_sentences is None:
            n_sentences = int(
                rng.integers(cfg.min_sentences_per_paragraph, cfg.max_sentences_per_paragraph + 1)
            )
        sentences = [self.sentence() for _ in range(n_sentences)]
        if rng.random() < 0.5:
            cite_at = int(rng.integers(0, n_sentences))
            sentences[cite_at] = sentences[cite_at][:-1] + " " + self.inline_citation() + "."
        return " ".join(sentences)

    def inline_citation(self) -> str:
        """Generate an inline citation marker."""
        rng = self.rng
        if rng.random() < 0.5:
            return f"[{int(rng.integers(1, 60))}]"
        name = str(rng.choice(self._surnames))
        year = int(rng.integers(1998, 2025))
        return f"({name} et al., {year})"

    # ------------------------------------------------------------------ #
    # Structured elements
    # ------------------------------------------------------------------ #
    def equation_latex(self) -> str:
        """Generate a LaTeX equation string."""
        rng = self.rng
        lhs_var = str(rng.choice(_VARIABLES))
        greek = rng.choice(_GREEK, size=2)
        op = rng.choice(_OPERATORS, size=2)
        fn = str(rng.choice(_FUNCTIONS))
        rhs_var = rng.choice(_VARIABLES, size=2)
        style = int(rng.integers(0, 4))
        if style == 0:
            body = f"{fn}({greek[0]} {op[0]} {rhs_var[0]}^{int(rng.integers(2, 5))})"
            return f"{lhs_var} = \\frac{{{body}}}{{{greek[1]} {op[1]} {rhs_var[1]}}}"
        if style == 1:
            return (
                f"\\frac{{\\partial {lhs_var}}}{{\\partial t}} = "
                f"\\nabla^2 {lhs_var} {op[0]} {greek[0]} {rhs_var[0]}"
            )
        if style == 2:
            return (
                f"{lhs_var}_{{n+1}} = {lhs_var}_n {op[0]} {greek[0]} "
                f"\\sum_{{i=1}}^{{N}} {fn}({rhs_var[0]}_i)"
            )
        return (
            f"\\mathbb{{E}}[{lhs_var}] = \\int_0^\\infty {fn}({rhs_var[0]}) "
            f"\\, d{rhs_var[0]} {op[1]} {greek[1]}"
        )

    def equation_element(self) -> PageElement:
        """Equation block (ground truth is the LaTeX source, as in HTML/MathML)."""
        latex = self.equation_latex()
        return PageElement(kind="equation", text=latex, latex=latex)

    def smiles_string(self) -> str:
        """Generate a SMILES-like molecular identifier."""
        rng = self.rng
        n = int(rng.integers(3, 8))
        frags = rng.choice(np.asarray(_SMILES_FRAGMENTS), size=n)
        return "".join(str(f) for f in frags)

    def smiles_element(self) -> PageElement:
        """A compound description sentence carrying a SMILES identifier."""
        smiles = self.smiles_string()
        sentence = (
            f"The candidate compound ({smiles}) was synthesized and characterized "
            f"by {self.rng.choice(self._terms)} analysis."
        )
        return PageElement(kind="smiles", text=sentence)

    def table_element(self) -> PageElement:
        """A small numeric results table rendered as aligned plain text."""
        rng = self.rng
        n_rows = int(rng.integers(3, 7))
        n_cols = int(rng.integers(3, 6))
        headers = ["condition"] + [str(rng.choice(self._nouns)) for _ in range(n_cols - 1)]
        lines = ["Table: " + " | ".join(headers)]
        values = rng.random((n_rows, n_cols - 1)) * rng.integers(1, 100)
        for r in range(n_rows):
            label = str(rng.choice(self._terms))
            cells = [f"{values[r, c]:.2f}" for c in range(n_cols - 1)]
            lines.append(" | ".join([label] + cells))
        return PageElement(kind="table", text="\n".join(lines))

    def figure_caption_element(self, figure_number: int) -> PageElement:
        """A figure caption block."""
        caption = (
            f"Figure {figure_number}: {self.sentence()} Error bars denote one "
            f"standard deviation across {int(self.rng.integers(3, 12))} replicates."
        )
        return PageElement(kind="figure_caption", text=caption)

    def citation_block_element(self) -> PageElement:
        """A short related-work passage dense with citations."""
        rng = self.rng
        sentences = []
        for _ in range(int(rng.integers(2, 4))):
            s = self.sentence()
            sentences.append(s[:-1] + " " + self.inline_citation() + ".")
        return PageElement(kind="citation_block", text=" ".join(sentences))

    def reference_entry_element(self, index: int) -> PageElement:
        """A bibliography entry."""
        rng = self.rng
        authors = ", ".join(str(s) for s in rng.choice(self._surnames, size=int(rng.integers(2, 4)), replace=False))
        title = " ".join(str(w) for w in rng.choice(self._terms, size=int(rng.integers(4, 7))))
        journal = f"Journal of {str(rng.choice(self._terms)).capitalize()}"
        year = int(rng.integers(1995, 2025))
        pages = f"{int(rng.integers(1, 900))}--{int(rng.integers(900, 1800))}"
        text = f"[{index}] {authors}. {title.capitalize()}. {journal}, {year}, pp. {pages}."
        return PageElement(kind="reference_entry", text=text)

    def heading_element(self, title: str | None = None) -> PageElement:
        """A section heading block."""
        if title is None:
            title = str(self.rng.choice(np.asarray(lexicon.SECTION_TITLES)))
        return PageElement(kind="heading", text=title)

    def boilerplate_element(self) -> PageElement:
        """First-page boilerplate (license lines, submission notes, ...)."""
        line = str(self.rng.choice(np.asarray(lexicon.FIRST_PAGE_BOILERPLATE)))
        return PageElement(kind="boilerplate", text=line)

    # ------------------------------------------------------------------ #
    # Page assembly
    # ------------------------------------------------------------------ #
    def _body_element(self, figure_counter: int) -> tuple[PageElement, int]:
        """Sample one body element according to the domain element mix."""
        rng = self.rng
        mix = lexicon.ELEMENT_MIX[self.domain]
        kinds = list(mix.keys())
        weights = np.asarray([mix[k] for k in kinds], dtype=float)
        weights = weights / weights.sum()
        kind = str(rng.choice(kinds, p=weights))
        if kind == "paragraph":
            return PageElement(kind="paragraph", text=self.paragraph()), figure_counter
        if kind == "equation":
            return self.equation_element(), figure_counter
        if kind == "table":
            return self.table_element(), figure_counter
        if kind == "figure_caption":
            figure_counter += 1
            return self.figure_caption_element(figure_counter), figure_counter
        if kind == "smiles":
            return self.smiles_element(), figure_counter
        return self.citation_block_element(), figure_counter

    def first_page(self, title: str, abstract_sentences: int = 5) -> PageContent:
        """Generate the title/abstract page."""
        elements: list[PageElement] = [
            PageElement(kind="heading", text=title),
            self.boilerplate_element(),
            PageElement(kind="heading", text="Abstract"),
            PageElement(kind="paragraph", text=self.paragraph(abstract_sentences)),
            self.heading_element("Introduction"),
            PageElement(kind="paragraph", text=self.paragraph()),
            PageElement(kind="paragraph", text=self.paragraph()),
        ]
        return PageContent(index=0, elements=tuple(elements))

    def body_page(self, index: int, figure_counter: int = 0) -> tuple[PageContent, int]:
        """Generate a body page; returns the page and the updated figure count."""
        rng = self.rng
        cfg = self.config
        n_elements = int(rng.integers(cfg.min_elements_per_page, cfg.max_elements_per_page + 1))
        elements: list[PageElement] = []
        if rng.random() < 0.4:
            elements.append(self.heading_element())
        for _ in range(n_elements):
            element, figure_counter = self._body_element(figure_counter)
            elements.append(element)
        return PageContent(index=index, elements=tuple(elements)), figure_counter

    def references_page(self, index: int, n_entries: int | None = None) -> PageContent:
        """Generate the bibliography page."""
        rng = self.rng
        if n_entries is None:
            n_entries = int(rng.integers(10, 25))
        elements: list[PageElement] = [self.heading_element("References")]
        for i in range(1, n_entries + 1):
            elements.append(self.reference_entry_element(i))
        return PageContent(index=index, elements=tuple(elements))

    def document_pages(self, title: str, n_pages: int) -> list[PageContent]:
        """Generate all pages of a document (first page, body, references)."""
        if n_pages < 1:
            raise ValueError("n_pages must be >= 1")
        pages: list[PageContent] = [self.first_page(title)]
        figure_counter = 0
        for idx in range(1, max(1, n_pages - 1)):
            page, figure_counter = self.body_page(idx, figure_counter)
            pages.append(page)
        if n_pages >= 2:
            pages.append(self.references_page(n_pages - 1))
        return pages[:n_pages]


def generate_generic_sentences(rng: np.random.Generator, n_sentences: int) -> list[str]:
    """Generate non-scientific filler sentences (web-style text).

    Used to pre-train the "generic" encoder baselines (BERT / MiniLM stand-ins)
    so that Table 4 can contrast scientific vs web-scale pre-training.
    """
    vocab = np.asarray(
        lexicon.GENERIC_TERMS
        + lexicon.ACADEMIC_ADJECTIVES[:6]
        + ("is", "was", "the", "a", "of", "for", "with", "and", "new", "best", "near", "local")
    )
    sentences = []
    for _ in range(n_sentences):
        n = int(rng.integers(7, 16))
        words = rng.choice(vocab, size=n)
        sentence = " ".join(str(w) for w in words)
        sentences.append(sentence.capitalize() + ".")
    return sentences
