"""Rendering transforms between ground-truth content and derived layers.

Real PDFs do not embed LaTeX: an equation's embedded text is whatever glyph
sequence the typesetter emitted, and OCR engines see only the rasterised
symbols.  These helpers translate ground-truth elements (notably equations and
tables) into the forms the different channels observe:

* :func:`latex_to_embedded_glyphs` — what an *extraction* parser recovers from
  the text layer of a typeset equation (commands dropped, odd spacing).
* :func:`latex_to_prose` — Marker's "LaTeX to plaintext" conversion (failure
  mode (f) of Figure 1).
* :func:`latex_ocr_garble` — what a line-based OCR engine makes of rendered
  math.
* :func:`table_reading_order` — a table as recovered in raw reading order
  (column separators lost).
"""

from __future__ import annotations

import re

import numpy as np

_COMMAND_WORDS: dict[str, str] = {
    "\\frac": "",
    "\\partial": "∂",
    "\\nabla": "∇",
    "\\sum": "Σ",
    "\\int": "∫",
    "\\infty": "∞",
    "\\alpha": "α",
    "\\beta": "β",
    "\\gamma": "γ",
    "\\lambda": "λ",
    "\\mu": "μ",
    "\\sigma": "σ",
    "\\theta": "θ",
    "\\phi": "φ",
    "\\omega": "ω",
    "\\epsilon": "ε",
    "\\cdot": "·",
    "\\times": "×",
    "\\exp": "exp",
    "\\log": "log",
    "\\sin": "sin",
    "\\cos": "cos",
    "\\tanh": "tanh",
    "\\sqrt": "√",
    "\\mathbb{E}": "E",
    "\\,": " ",
}

_PROSE_WORDS: dict[str, str] = {
    "\\frac": "fraction of",
    "\\partial": "partial",
    "\\nabla": "nabla",
    "\\sum": "sum over",
    "\\int": "integral of",
    "\\infty": "infinity",
    "\\alpha": "alpha",
    "\\beta": "beta",
    "\\gamma": "gamma",
    "\\lambda": "lambda",
    "\\mu": "mu",
    "\\sigma": "sigma",
    "\\theta": "theta",
    "\\phi": "phi",
    "\\omega": "omega",
    "\\epsilon": "epsilon",
    "\\cdot": "times",
    "\\times": "times",
    "\\exp": "exp",
    "\\log": "log",
    "\\sin": "sin",
    "\\cos": "cos",
    "\\tanh": "tanh",
    "\\sqrt": "square root of",
    "\\mathbb{E}": "expectation",
    "\\,": " ",
}


def _apply_command_map(latex: str, table: dict[str, str]) -> str:
    out = latex
    # Replace longer commands first so e.g. ``\\exp`` is not clobbered by ``\\e``.
    for cmd in sorted(table, key=len, reverse=True):
        out = out.replace(cmd, table[cmd])
    return out


def latex_to_embedded_glyphs(latex: str, rng: np.random.Generator | None = None) -> str:
    """Approximate the text layer a typeset equation leaves behind.

    Commands collapse to unicode glyphs, braces/backslashes disappear, and the
    glyph order roughly follows visual layout, with occasional spurious spaces
    where kerning boxes break the run.
    """
    out = _apply_command_map(latex, _COMMAND_WORDS)
    out = out.replace("{", " ").replace("}", " ")
    out = out.replace("\\", " ")
    out = re.sub(r"[ \t]+", " ", out).strip()
    if rng is not None and out:
        # Subscript/superscript markers frequently detach in extraction output.
        out = out.replace("_", " _ ") if rng.random() < 0.5 else out.replace("_", "")
        out = out.replace("^", " ^ ") if rng.random() < 0.5 else out.replace("^", "")
        out = re.sub(r"[ \t]+", " ", out).strip()
    return out


def latex_to_prose(latex: str) -> str:
    """Marker-style conversion of an equation into plain English-ish text."""
    out = _apply_command_map(latex, _PROSE_WORDS)
    out = out.replace("{", " ").replace("}", " ")
    out = out.replace("\\", " ")
    out = out.replace("=", " equals ")
    out = out.replace("+", " plus ")
    out = out.replace("-", " minus ")
    out = re.sub(r"[_^]", " ", out)
    out = re.sub(r"[ \t]+", " ", out).strip()
    return out


def latex_ocr_garble(latex: str, severity: float, rng: np.random.Generator) -> str:
    """What a line-oriented OCR engine reads off a rendered equation.

    OCR engines were not trained on math: fraction bars become dashes, Greek
    letters are mis-read as Latin look-alikes, and sub/superscripts collapse
    into the baseline.
    """
    glyphs = latex_to_embedded_glyphs(latex, rng)
    lookalikes = {"α": "a", "β": "B", "γ": "y", "λ": "A", "μ": "u", "σ": "o",
                  "θ": "0", "φ": "o", "ω": "w", "ε": "e", "∂": "d", "∇": "V",
                  "Σ": "E", "∫": "J", "∞": "oo", "·": ".", "×": "x", "√": "v"}
    out_chars = []
    for ch in glyphs:
        if ch in lookalikes and rng.random() < 0.4 + 0.5 * severity:
            out_chars.append(lookalikes[ch])
        else:
            out_chars.append(ch)
    out = "".join(out_chars)
    if rng.random() < 0.3 + 0.4 * severity:
        out = out.replace("_", "").replace("^", "")
    return out


def table_reading_order(table_text: str, drop_separator_prob: float, rng: np.random.Generator) -> str:
    """Recover a table in raw reading order, possibly losing column separators."""
    lines = table_text.split("\n")
    out_lines = []
    for line in lines:
        if "|" in line and rng.random() < drop_separator_prob:
            out_lines.append(line.replace(" | ", " "))
        else:
            out_lines.append(line)
    return "\n".join(out_lines)
