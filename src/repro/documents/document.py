"""Core document data model: pages, elements, text layer, image layer.

A :class:`SciDocument` carries three views of the same content:

* ``pages`` — the *ground-truth* structured content (what the paper obtains
  from publisher HTML): a list of :class:`PageContent`, each a sequence of
  typed :class:`PageElement` blocks (paragraphs, equations, tables, SMILES,
  captions, references).
* ``text_layer`` — the text *embedded in the PDF*, which is what extraction
  parsers (PyMuPDF, pypdf) read.  Its fidelity ranges from clean born-digital
  text to OCR-derived, scrambled, or entirely missing layers.
* ``image_layer`` — the rendering/scan quality of the page images, which is
  what recognition parsers (Tesseract, Nougat, Marker) read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.documents.metadata import DocumentMetadata


class DocumentType(str, enum.Enum):
    """Format family a document was ingested from.

    Routing is format-aware: recognition parsers (Nougat, Marker, Tesseract,
    GROBID) transcribe rendered page images, which only PDF-family documents
    have, so HTML/Markdown documents are never eligible for them.  Extraction
    parsers read the text layer and accept every type.
    """

    PDF = "pdf"
    HTML = "html"
    MARKDOWN = "markdown"

    @classmethod
    def coerce(cls, value: "DocumentType | str") -> "DocumentType":
        """Validate a member or its string value into a member."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            known = [m.value for m in cls]
            raise ValueError(
                f"unknown document type {value!r}; known: {known}"
            ) from None


class TextLayerQuality(str, enum.Enum):
    """Fidelity class of the text embedded in a document.

    The classes mirror the situations described in the paper's background
    section: born-digital documents with a faithful layer, layers attached by
    sub-par OCR software, deliberately scrambled text, and scanned documents
    with no layer at all.
    """

    CLEAN = "clean"
    NOISY = "noisy"
    OCR_DERIVED = "ocr_derived"
    SCRAMBLED = "scrambled"
    MISSING = "missing"

    @property
    def is_usable(self) -> bool:
        """Whether extraction-based parsing can produce acceptable text."""
        return self in (TextLayerQuality.CLEAN, TextLayerQuality.NOISY)


#: Element kinds produced by the text generator, in the order they typically
#: appear on a page.
ELEMENT_KINDS: tuple[str, ...] = (
    "heading",
    "boilerplate",
    "paragraph",
    "equation",
    "table",
    "figure_caption",
    "smiles",
    "citation_block",
    "reference_entry",
)


@dataclass(frozen=True)
class PageElement:
    """One typed content block of a page.

    Attributes
    ----------
    kind:
        One of :data:`ELEMENT_KINDS`.
    text:
        Ground-truth plain-text rendering of the block.
    latex:
        For ``equation`` elements, the LaTeX source (recognition parsers that
        understand math, e.g. Nougat, reproduce this; extraction parsers leak
        a garbled plaintext version instead).
    """

    kind: str
    text: str
    latex: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ELEMENT_KINDS:
            raise ValueError(f"unknown element kind: {self.kind!r}")

    @property
    def n_words(self) -> int:
        """Number of whitespace-delimited words in the ground-truth text."""
        return len(self.text.split())


@dataclass(frozen=True)
class PageContent:
    """Ground-truth content of a single page."""

    index: int
    elements: tuple[PageElement, ...]

    def ground_truth_text(self) -> str:
        """Plain-text rendering of the page (blocks joined by blank lines)."""
        return "\n".join(el.text for el in self.elements)

    def elements_of_kind(self, kind: str) -> tuple[PageElement, ...]:
        """All elements of one kind on this page."""
        return tuple(el for el in self.elements if el.kind == kind)

    @property
    def n_words(self) -> int:
        """Total ground-truth word count of the page."""
        return sum(el.n_words for el in self.elements)

    @property
    def equation_fraction(self) -> float:
        """Fraction of blocks that are equations (a difficulty proxy)."""
        if not self.elements:
            return 0.0
        return len(self.elements_of_kind("equation")) / len(self.elements)


@dataclass
class TextLayer:
    """The text embedded in the document, page by page.

    ``page_texts`` may deviate from the ground truth: it is whatever the
    producing tool (or a later OCR pass) attached to the PDF.  Extraction
    parsers read this layer verbatim, so its quality bounds their accuracy.
    """

    quality: TextLayerQuality
    page_texts: list[str]
    producer: str

    @property
    def n_pages(self) -> int:
        return len(self.page_texts)

    @property
    def n_characters(self) -> int:
        """Total number of embedded characters (zero for a missing layer)."""
        return sum(len(t) for t in self.page_texts)

    def text(self) -> str:
        """Concatenated embedded text of the whole document."""
        return "\n".join(self.page_texts)

    def first_page_text(self) -> str:
        """Embedded text of the first page (the signal CLS I–III operate on)."""
        return self.page_texts[0] if self.page_texts else ""


@dataclass
class ImageLayer:
    """Rendering/scan quality of the page images.

    A born-digital document renders crisply (``is_scanned=False``); a scanned
    document carries the degradations the paper simulates (random rotations,
    contrast changes, Gaussian blur, compression).  Recognition parsers'
    character error rates are driven by :meth:`degradation_score`.
    """

    dpi: int = 300
    rotation_deg: float = 0.0
    blur_sigma: float = 0.0
    contrast: float = 1.0
    noise_level: float = 0.0
    jpeg_quality: int = 95
    is_scanned: bool = False

    def degradation_score(self) -> float:
        """Scalar in ``[0, 1]``: 0 = pristine render, 1 = barely legible scan.

        The score combines the individual degradations with weights chosen so
        that typical "low-quality scan" parameters (150 dpi, a few degrees of
        rotation, mild blur, strong compression) land around 0.4–0.7.
        """
        dpi_term = max(0.0, min(1.0, (300.0 - self.dpi) / 250.0))
        rot_term = min(1.0, abs(self.rotation_deg) / 10.0)
        blur_term = min(1.0, self.blur_sigma / 3.0)
        contrast_term = min(1.0, abs(1.0 - self.contrast) / 0.8)
        noise_term = min(1.0, self.noise_level / 0.5)
        jpeg_term = max(0.0, min(1.0, (95.0 - self.jpeg_quality) / 80.0))
        score = (
            0.22 * dpi_term
            + 0.18 * rot_term
            + 0.22 * blur_term
            + 0.12 * contrast_term
            + 0.16 * noise_term
            + 0.10 * jpeg_term
        )
        return float(max(0.0, min(1.0, score)))


@dataclass
class SciDocument:
    """A synthetic scientific document with ground truth and derived layers.

    Attributes
    ----------
    doc_id:
        Stable identifier (also used to derive per-document random streams).
    metadata:
        Publisher/producer/year/category metadata (CLS II features).
    pages:
        Ground-truth page contents.
    text_layer:
        Embedded text layer read by extraction parsers.
    image_layer:
        Rendering quality read by recognition parsers.
    seed:
        Root seed the document was generated from (kept for provenance).
    doc_type:
        Format family (:class:`DocumentType` value) the document was ingested
        from — ``"pdf"`` for synthetic/SimPDF documents, ``"html"``/
        ``"markdown"`` for web-text sources.  Drives per-type parser
        eligibility in the routing layer.
    """

    doc_id: str
    metadata: DocumentMetadata
    pages: list[PageContent]
    text_layer: TextLayer
    image_layer: ImageLayer
    seed: int = 0
    doc_type: str = DocumentType.PDF.value

    def __post_init__(self) -> None:
        self.doc_type = DocumentType.coerce(self.doc_type).value
        if not self.pages:
            raise ValueError("a document must have at least one page")
        if self.text_layer.n_pages != len(self.pages):
            raise ValueError(
                "text layer must cover every page: "
                f"{self.text_layer.n_pages} layer pages vs {len(self.pages)} pages"
            )

    # ------------------------------------------------------------------ #
    # Ground-truth accessors
    # ------------------------------------------------------------------ #
    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def n_words(self) -> int:
        """Total ground-truth word count of the document."""
        return sum(page.n_words for page in self.pages)

    def ground_truth_text(self) -> str:
        """Full ground-truth plain text (ψ in the paper's notation)."""
        return "\n".join(page.ground_truth_text() for page in self.pages)

    def ground_truth_pages(self) -> list[str]:
        """Per-page ground-truth plain text."""
        return [page.ground_truth_text() for page in self.pages]

    def iter_elements(self) -> Iterator[PageElement]:
        """Iterate over all elements across pages in reading order."""
        for page in self.pages:
            yield from page.elements

    # ------------------------------------------------------------------ #
    # Difficulty proxies
    # ------------------------------------------------------------------ #
    @property
    def equation_fraction(self) -> float:
        """Document-level fraction of equation blocks."""
        n_elements = sum(len(p.elements) for p in self.pages)
        if n_elements == 0:
            return 0.0
        n_eq = sum(len(p.elements_of_kind("equation")) for p in self.pages)
        return n_eq / n_elements

    @property
    def is_born_digital(self) -> bool:
        """True when the document was not produced by a scanning pipeline."""
        return not self.image_layer.is_scanned

    def with_text_layer(self, text_layer: TextLayer) -> "SciDocument":
        """Return a copy of the document with a replaced text layer."""
        return replace(self, text_layer=text_layer)

    def with_image_layer(self, image_layer: ImageLayer) -> "SciDocument":
        """Return a copy of the document with a replaced image layer."""
        return replace(self, image_layer=image_layer)


def total_pages(documents: Iterable[SciDocument]) -> int:
    """Sum of page counts over a collection of documents."""
    return sum(doc.n_pages for doc in documents)
