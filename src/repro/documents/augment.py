"""Benchmark augmentations (Section 6.2 and Tables 2–3 of the paper).

Two augmentation campaigns are applied to held-out test documents:

* **Image-layer degradation** (Table 2): random rotations, contrast changes,
  Gaussian blur and compression applied to a fraction of documents, emulating
  low-quality scans.  Text extraction is unaffected (the embedded layer is not
  touched); recognition parsers see the degraded images.
* **Text-layer degradation** (Table 3): the embedded text layer of a fraction
  of documents is replaced with the output of a common OCR/structuring tool
  (Tesseract- or GROBID-like output), testing whether AdaParse detects that a
  higher-quality parse is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.documents import noise
from repro.documents.corpus import Corpus, embedded_page_text
from repro.documents.document import ImageLayer, SciDocument, TextLayer, TextLayerQuality
from repro.utils.rng import rng_from


@dataclass(frozen=True)
class AugmentationConfig:
    """Shared knobs of the two augmentation campaigns.

    Attributes
    ----------
    affected_fraction:
        Fraction of documents to augment (the paper uses 15 %).
    seed:
        Root seed of the augmentation streams.
    scan_severity:
        Scale factor in ``[0, 1]`` for how harsh the simulated scans are.
    ocr_tool:
        Which tool's output replaces the text layer in the text-degradation
        campaign (``"tesseract"`` or ``"grobid"``); ``"mixed"`` alternates.
    """

    affected_fraction: float = 0.15
    seed: int = 777
    scan_severity: float = 0.7
    ocr_tool: str = "mixed"

    def __post_init__(self) -> None:
        if not 0.0 <= self.affected_fraction <= 1.0:
            raise ValueError("affected_fraction must lie in [0, 1]")
        if not 0.0 <= self.scan_severity <= 1.0:
            raise ValueError("scan_severity must lie in [0, 1]")
        if self.ocr_tool not in ("tesseract", "grobid", "mixed"):
            raise ValueError(f"unknown ocr_tool {self.ocr_tool!r}")


def _affected_mask(n: int, fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Boolean mask selecting ``round(fraction * n)`` documents."""
    n_affected = int(round(fraction * n))
    mask = np.zeros(n, dtype=bool)
    if n_affected > 0:
        idx = rng.choice(n, size=min(n_affected, n), replace=False)
        mask[idx] = True
    return mask


def degraded_scan_layer(severity: float, rng: np.random.Generator) -> ImageLayer:
    """Sample a degraded scan matching the paper's augmentation recipe."""
    severity = float(np.clip(severity, 0.0, 1.0))
    return ImageLayer(
        dpi=int(rng.choice([110, 150, 200], p=[0.3, 0.5, 0.2])),
        rotation_deg=float(rng.normal(0.0, 1.0 + 3.0 * severity)),
        blur_sigma=float(abs(rng.normal(0.5 + 1.2 * severity, 0.4))),
        contrast=float(np.clip(rng.normal(1.0 - 0.3 * severity, 0.15), 0.3, 1.4)),
        noise_level=float(abs(rng.normal(0.10 + 0.15 * severity, 0.05))),
        jpeg_quality=int(rng.integers(30, 70)),
        is_scanned=True,
    )


def degrade_image_layers(corpus: Corpus, config: AugmentationConfig | None = None) -> Corpus:
    """Apply the image-layer degradation campaign (Table 2).

    The embedded text layer is preserved (the paper notes these changes do not
    affect extraction methods), but the document is flagged as scanned with
    degraded rendering parameters.
    """
    config = config or AugmentationConfig()
    rng = rng_from(config.seed, "augment-image", len(corpus))
    mask = _affected_mask(len(corpus), config.affected_fraction, rng)
    documents: list[SciDocument] = []
    for doc, hit in zip(corpus.documents, mask):
        if not hit:
            documents.append(doc)
            continue
        doc_rng = rng_from(config.seed, "augment-image", doc.doc_id)
        layer = degraded_scan_layer(config.scan_severity, doc_rng)
        documents.append(doc.with_image_layer(layer))
    return Corpus(documents=documents, config=corpus.config)


def _ocr_tool_page_text(
    doc: SciDocument, page_index: int, tool: str, rng: np.random.Generator
) -> str:
    """Synthesize the page text a common tool would have attached."""
    base = embedded_page_text(doc.pages[page_index], rng)
    if tool == "tesseract":
        severity = 0.45 + 0.35 * doc.image_layer.degradation_score() + 0.1 * rng.random()
        return noise.ocr_channel(base, severity=severity, rng=rng)
    # GROBID-like output: structured body text, but whole non-body blocks
    # (captions, tables, references) are dropped and headers duplicated.
    kept_blocks: list[str] = []
    for element in doc.pages[page_index].elements:
        if element.kind in ("table", "figure_caption", "smiles", "reference_entry", "boilerplate"):
            if rng.random() < 0.7:
                continue
        text = element.text
        if element.kind == "equation":
            text = ""
        if text:
            kept_blocks.append(text)
    out = "\n".join(kept_blocks)
    return noise.substitute_characters(out, rate=0.003, rng=rng)


def replace_text_layers_with_ocr(
    corpus: Corpus, config: AugmentationConfig | None = None
) -> Corpus:
    """Apply the text-layer degradation campaign (Table 3).

    A fraction of documents gets its embedded text layer replaced with the
    output of a common tool (Tesseract or GROBID), as the paper does to test
    whether AdaParse notices that the embedded text is no longer trustworthy.
    """
    config = config or AugmentationConfig()
    rng = rng_from(config.seed, "augment-text", len(corpus))
    mask = _affected_mask(len(corpus), config.affected_fraction, rng)
    documents: list[SciDocument] = []
    for i, (doc, hit) in enumerate(zip(corpus.documents, mask)):
        if not hit:
            documents.append(doc)
            continue
        doc_rng = rng_from(config.seed, "augment-text", doc.doc_id)
        if config.ocr_tool == "mixed":
            tool = "tesseract" if (i % 2 == 0) else "grobid"
        else:
            tool = config.ocr_tool
        page_texts = [
            _ocr_tool_page_text(doc, p, tool, doc_rng) for p in range(doc.n_pages)
        ]
        layer = TextLayer(
            quality=TextLayerQuality.OCR_DERIVED,
            page_texts=page_texts,
            producer=f"replaced-{tool}",
        )
        documents.append(doc.with_text_layer(layer))
    return Corpus(documents=documents, config=corpus.config)


def strip_text_layers(corpus: Corpus, fraction: float, seed: int = 31) -> Corpus:
    """Remove the text layer from a fraction of documents entirely.

    Not used by a numbered table in the paper, but useful for stress-testing
    CLS I (the validity check) and for the failure-injection tests.
    """
    rng = rng_from(seed, "strip-text", len(corpus))
    mask = _affected_mask(len(corpus), fraction, rng)
    documents = []
    for doc, hit in zip(corpus.documents, mask):
        if not hit:
            documents.append(doc)
            continue
        layer = TextLayer(
            quality=TextLayerQuality.MISSING,
            page_texts=["" for _ in range(doc.n_pages)],
            producer=doc.text_layer.producer,
        )
        documents.append(doc.with_text_layer(layer))
    return Corpus(documents=documents, config=corpus.config)
