"""Low-level text corruption channels.

These primitives model the character- and word-level damage that real parsing
pipelines introduce (Figure 1 of the paper).  They are used in two places:

* by the corpus builder, to attach *imperfect embedded text layers* to
  documents (e.g. a layer produced by legacy OCR software), and
* by :mod:`repro.parsers.failure_modes`, which composes them into the named
  parser failure modes (whitespace injection, character scrambling, SMILES
  corruption, ...).

All functions are pure given the supplied :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np

#: Common OCR confusion pairs (symmetrised at call time where appropriate).
OCR_CONFUSIONS: dict[str, str] = {
    "l": "1",
    "1": "l",
    "I": "l",
    "O": "0",
    "0": "O",
    "o": "c",
    "e": "c",
    "c": "e",
    "a": "o",
    "s": "5",
    "5": "S",
    "B": "8",
    "g": "q",
    "h": "b",
    "n": "r",
    "u": "v",
    "v": "u",
    "t": "f",
    "f": "t",
    "Z": "2",
    "m": "rn",
    "w": "vv",
}

#: Characters that commonly survive as mojibake when ligatures/encodings break.
LIGATURE_BREAKS: dict[str, str] = {
    "fi": "ﬁ",
    "fl": "ﬂ",
    "ff": "ﬀ",
    "--": "–",
}


def _split_preserving(text: str) -> list[str]:
    """Split into whitespace-delimited tokens (words), dropping empty tokens."""
    return [w for w in text.split(" ") if w != ""]


def inject_whitespace(text: str, rate: float, rng: np.random.Generator) -> str:
    """Insert spurious spaces inside words with probability ``rate`` per word.

    Models failure mode (a) of Figure 1: extraction tools emitting a space for
    every kerning adjustment.
    """
    if rate <= 0 or not text:
        return text
    words = text.split(" ")
    mask = rng.random(len(words)) < rate
    out: list[str] = []
    for word, hit in zip(words, mask):
        if hit and len(word) >= 4:
            pos = int(rng.integers(1, len(word)))
            word = word[:pos] + " " + word[pos:]
        out.append(word)
    return " ".join(out)


def substitute_words(
    text: str,
    rate: float,
    rng: np.random.Generator,
    vocabulary: tuple[str, ...] | None = None,
) -> str:
    """Replace words with unrelated vocabulary words (failure mode (b))."""
    if rate <= 0 or not text:
        return text
    words = text.split(" ")
    vocab = vocabulary if vocabulary else ("data", "value", "figure", "item", "entry")
    mask = rng.random(len(words)) < rate
    if mask.any():
        replacements = rng.choice(vocab, size=int(mask.sum()))
        it = iter(replacements)
        words = [str(next(it)) if hit and w else w for w, hit in zip(words, mask)]
    return " ".join(words)


def scramble_characters(text: str, rate: float, rng: np.random.Generator) -> str:
    """Shuffle the interior characters of words with probability ``rate``.

    Models failure mode (c): character scrambling from bad glyph-to-unicode
    maps or deliberate anti-extraction obfuscation.
    """
    if rate <= 0 or not text:
        return text
    words = text.split(" ")
    mask = rng.random(len(words)) < rate
    out: list[str] = []
    for word, hit in zip(words, mask):
        if hit and len(word) > 3:
            interior = list(word[1:-1])
            rng.shuffle(interior)
            word = word[0] + "".join(interior) + word[-1]
        out.append(word)
    return " ".join(out)


def substitute_characters(
    text: str,
    rate: float,
    rng: np.random.Generator,
    confusions: dict[str, str] | None = None,
) -> str:
    """Apply OCR-style character confusions with probability ``rate`` per char.

    Models failure mode (d) and the generic OCR noise channel.
    """
    if rate <= 0 or not text:
        return text
    table = confusions if confusions is not None else OCR_CONFUSIONS
    chars = list(text)
    mask = rng.random(len(chars)) < rate
    for i in np.flatnonzero(mask):
        c = chars[i]
        if c in table:
            chars[i] = table[c]
        elif c.isalpha():
            # Fall back to a nearby letter swap to keep the channel active on
            # characters without a canonical confusion.
            offset = 1 if rng.random() < 0.5 else -1
            chars[i] = chr(max(97, min(122, ord(c.lower()) + offset)))
    return "".join(chars)


def corrupt_case(text: str, rate: float, rng: np.random.Generator) -> str:
    """Flip the case of characters (pH → ph, Ph → pH, ...)."""
    if rate <= 0 or not text:
        return text
    chars = list(text)
    mask = rng.random(len(chars)) < rate
    for i in np.flatnonzero(mask):
        c = chars[i]
        if c.isalpha():
            chars[i] = c.lower() if c.isupper() else c.upper()
    return "".join(chars)


def drop_words(text: str, rate: float, rng: np.random.Generator) -> str:
    """Silently drop words with probability ``rate``."""
    if rate <= 0 or not text:
        return text
    words = text.split(" ")
    keep = rng.random(len(words)) >= rate
    kept = [w for w, k in zip(words, keep) if k]
    if not kept and words:
        kept = [words[0]]
    return " ".join(kept)


def merge_words(text: str, rate: float, rng: np.random.Generator) -> str:
    """Delete inter-word spaces with probability ``rate`` (lost whitespace)."""
    if rate <= 0 or not text:
        return text
    words = text.split(" ")
    if len(words) < 2:
        return text
    out: list[str] = [words[0]]
    merges = rng.random(len(words) - 1) < rate
    for word, merge in zip(words[1:], merges):
        if merge:
            out[-1] = out[-1] + word
        else:
            out.append(word)
    return " ".join(out)


def swap_adjacent_words(text: str, rate: float, rng: np.random.Generator) -> str:
    """Swap adjacent words with probability ``rate`` (reading-order errors)."""
    if rate <= 0 or not text:
        return text
    words = text.split(" ")
    i = 0
    while i < len(words) - 1:
        if rng.random() < rate:
            words[i], words[i + 1] = words[i + 1], words[i]
            i += 2
        else:
            i += 1
    return " ".join(words)


def break_ligatures(text: str, rate: float, rng: np.random.Generator) -> str:
    """Replace ligature-prone digraphs with their glyph forms."""
    if rate <= 0 or not text:
        return text
    out = text
    for plain, glyph in LIGATURE_BREAKS.items():
        if plain in out and rng.random() < rate:
            out = out.replace(plain, glyph)
    return out


def hard_wrap_lines(text: str, width: int, rng: np.random.Generator, hyphenate_rate: float = 0.15) -> str:
    """Re-wrap text at a fixed column width, occasionally hyphenating words.

    Extraction tools frequently return the PDF's visual line breaks rather
    than logical paragraphs; this channel reproduces that artefact.
    """
    if width <= 0 or not text:
        return text
    words = text.split(" ")
    lines: list[str] = []
    current = ""
    for word in words:
        if not current:
            current = word
        elif len(current) + 1 + len(word) <= width:
            current = current + " " + word
        else:
            if len(word) > 6 and rng.random() < hyphenate_rate:
                split = len(word) // 2
                current = current + " " + word[:split] + "-"
                lines.append(current)
                current = word[split:]
            else:
                lines.append(current)
                current = word
    if current:
        lines.append(current)
    return "\n".join(lines)


def ocr_channel(
    text: str,
    severity: float,
    rng: np.random.Generator,
    vocabulary: tuple[str, ...] | None = None,
) -> str:
    """Composite OCR noise channel parameterised by a severity in ``[0, 1]``.

    Severity 0 leaves the text nearly untouched; severity 1 corresponds to a
    barely legible scan.  The per-channel rates are calibrated so that the
    resulting character accuracy degrades smoothly from ≈0.99 to ≈0.6.
    """
    severity = float(max(0.0, min(1.0, severity)))
    out = substitute_characters(text, rate=0.002 + 0.06 * severity, rng=rng)
    out = merge_words(out, rate=0.002 + 0.03 * severity, rng=rng)
    out = inject_whitespace(out, rate=0.002 + 0.05 * severity, rng=rng)
    out = drop_words(out, rate=0.001 + 0.03 * severity, rng=rng)
    out = corrupt_case(out, rate=0.001 + 0.02 * severity, rng=rng)
    if severity > 0.5:
        out = scramble_characters(out, rate=0.04 * (severity - 0.5), rng=rng)
    if vocabulary:
        out = substitute_words(out, rate=0.01 * severity, rng=rng, vocabulary=vocabulary)
    return out


def scramble_layer(text: str, rng: np.random.Generator) -> str:
    """Aggressively scramble an embedded text layer (anti-extraction)."""
    out = scramble_characters(text, rate=0.8, rng=rng)
    out = substitute_characters(out, rate=0.15, rng=rng)
    out = merge_words(out, rate=0.2, rng=rng)
    return out
