"""Domain lexicons, publishers, producer tools and categorical vocabularies.

The corpus generator composes scientific prose from these word lists.  The
exact words do not matter for the reproduction; what matters is that

* different scientific domains have *distinct* technical vocabularies (so a
  text encoder pre-trained on scientific text has an advantage, Table 4),
* math-heavy domains (mathematics, physics, computer science) carry many more
  LaTeX equations, and chemistry/biology carry SMILES strings and entity names
  (so parser failure modes hit domains differently, Figure 1),
* publishers and producer tools correlate with text-layer quality (so the
  metadata-driven CLS II signal exists, Table 4).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Domains and sub-categories (the paper: 8 domains, 67 sub-categories).
# ---------------------------------------------------------------------------

DOMAINS: tuple[str, ...] = (
    "mathematics",
    "biology",
    "chemistry",
    "physics",
    "engineering",
    "medicine",
    "economics",
    "computer_science",
)

SUBCATEGORIES: dict[str, tuple[str, ...]] = {
    "mathematics": (
        "algebraic_geometry", "number_theory", "topology", "probability",
        "combinatorics", "analysis", "optimization", "dynamical_systems",
    ),
    "biology": (
        "genomics", "proteomics", "ecology", "zoology", "microbiology",
        "neuroscience", "botany", "evolutionary_biology", "cell_biology",
    ),
    "chemistry": (
        "organic_chemistry", "inorganic_chemistry", "physical_chemistry",
        "analytical_chemistry", "polymer_science", "electrochemistry",
        "catalysis", "medicinal_chemistry",
    ),
    "physics": (
        "condensed_matter", "high_energy", "astrophysics", "acoustics",
        "optics", "plasma_physics", "quantum_information", "fluid_dynamics",
    ),
    "engineering": (
        "mechanical", "electrical", "civil", "materials", "aerospace",
        "chemical_engineering", "robotics", "control_systems",
    ),
    "medicine": (
        "oncology", "cardiology", "epidemiology", "immunology", "radiology",
        "endocrinology", "public_health", "surgery", "pharmacology",
    ),
    "economics": (
        "econometrics", "macroeconomics", "microeconomics", "finance",
        "game_theory", "labor_economics", "development_economics",
    ),
    "computer_science": (
        "machine_learning", "systems", "databases", "networks",
        "computer_vision", "nlp", "security", "theory", "hpc",
    ),
}

# Prior over domains when sampling documents (roughly matches the mix of
# preprint servers in the paper: heavy on biomedical + physical sciences).
DOMAIN_WEIGHTS: dict[str, float] = {
    "mathematics": 0.08,
    "biology": 0.18,
    "chemistry": 0.12,
    "physics": 0.16,
    "engineering": 0.10,
    "medicine": 0.18,
    "economics": 0.06,
    "computer_science": 0.12,
}

# ---------------------------------------------------------------------------
# Shared academic vocabulary used by every domain.
# ---------------------------------------------------------------------------

ACADEMIC_VERBS: tuple[str, ...] = (
    "demonstrate", "propose", "observe", "derive", "evaluate", "estimate",
    "characterize", "quantify", "analyze", "measure", "compare", "predict",
    "investigate", "report", "confirm", "suggest", "indicate", "reveal",
    "establish", "validate", "examine", "assess", "model", "simulate",
)

ACADEMIC_NOUNS: tuple[str, ...] = (
    "approach", "framework", "method", "result", "analysis", "experiment",
    "dataset", "model", "parameter", "distribution", "sample", "hypothesis",
    "baseline", "benchmark", "procedure", "protocol", "mechanism", "structure",
    "property", "behavior", "observation", "measurement", "estimate",
    "uncertainty", "variance", "correlation", "significance", "threshold",
)

ACADEMIC_ADJECTIVES: tuple[str, ...] = (
    "significant", "robust", "novel", "consistent", "empirical", "theoretical",
    "experimental", "systematic", "substantial", "comparable", "optimal",
    "efficient", "scalable", "reliable", "heterogeneous", "stochastic",
    "nonlinear", "asymptotic", "marginal", "adaptive",
)

CONNECTIVES: tuple[str, ...] = (
    "moreover", "furthermore", "however", "consequently", "in contrast",
    "in particular", "notably", "therefore", "additionally", "nevertheless",
)

SECTION_TITLES: tuple[str, ...] = (
    "Introduction", "Background", "Related Work", "Methods", "Materials and Methods",
    "Theory", "Experimental Setup", "Results", "Discussion", "Evaluation",
    "Conclusion", "Future Work", "Acknowledgments", "Appendix",
)

# ---------------------------------------------------------------------------
# Domain-specific technical terms.
# ---------------------------------------------------------------------------

DOMAIN_TERMS: dict[str, tuple[str, ...]] = {
    "mathematics": (
        "manifold", "functor", "homomorphism", "eigenvalue", "conjecture",
        "lemma", "theorem", "corollary", "isomorphism", "cohomology",
        "martingale", "semigroup", "lattice", "polytope", "operator",
        "convergence", "measure", "topology", "fibration", "spectrum",
    ),
    "biology": (
        "transcriptome", "phenotype", "genotype", "ribosome", "chromatin",
        "mitochondria", "phylogeny", "homolog", "enzyme", "metabolite",
        "organism", "mutation", "expression", "receptor", "pathway",
        "protein", "sequencing", "microbiome", "apoptosis", "cytokine",
    ),
    "chemistry": (
        "ligand", "catalyst", "electrophile", "nucleophile", "stoichiometry",
        "enthalpy", "isomer", "chromatography", "spectroscopy", "titration",
        "polymerization", "oxidation", "reduction", "solvent", "adsorption",
        "electrolyte", "monomer", "crystallization", "yield", "reagent",
    ),
    "physics": (
        "hamiltonian", "lagrangian", "boson", "fermion", "photon",
        "entanglement", "superconductivity", "plasma", "dispersion",
        "scattering", "renormalization", "symmetry", "perturbation",
        "wavefunction", "curvature", "flux", "resonance", "decoherence",
        "soliton", "anisotropy",
    ),
    "engineering": (
        "actuator", "sensor", "torque", "stiffness", "fatigue", "turbine",
        "impedance", "voltage", "bandwidth", "latency", "payload",
        "composite", "alloy", "vibration", "feedback", "controller",
        "throughput", "tolerance", "calibration", "manifold",
    ),
    "medicine": (
        "cohort", "placebo", "biomarker", "diagnosis", "prognosis",
        "mortality", "morbidity", "etiology", "pathology", "lesion",
        "therapy", "dosage", "clinical", "randomized", "metastasis",
        "hypertension", "glucose", "antibody", "vaccine", "syndrome",
    ),
    "economics": (
        "elasticity", "equilibrium", "inflation", "liquidity", "volatility",
        "endogeneity", "instrument", "regression", "utility", "welfare",
        "incentive", "auction", "portfolio", "arbitrage", "heterogeneity",
        "consumption", "productivity", "unemployment", "tariff", "subsidy",
    ),
    "computer_science": (
        "algorithm", "complexity", "throughput", "latency", "scheduler",
        "cache", "gradient", "transformer", "embedding", "kernel",
        "parallelism", "bandwidth", "checkpoint", "inference", "compiler",
        "hashing", "consensus", "replication", "quantization", "pipeline",
    ),
}

# Named entities that are fragile under character-level corruption (the paper's
# "subtle but deadly" examples: pH vs Ph, hyperthyroidism vs hypothyroidism).
FRAGILE_ENTITIES: dict[str, tuple[str, ...]] = {
    "medicine": ("hyperthyroidism", "hypothyroidism", "hyperglycemia", "hypoglycemia"),
    "chemistry": ("pH", "Ph", "NaCl", "KCl", "H2O", "CO2"),
    "biology": ("mRNA", "tRNA", "DNA", "RNA", "ATP", "ADP"),
    "physics": ("keV", "MeV", "GeV", "meV"),
    "computer_science": ("O(n)", "O(log n)", "L1", "L2"),
    "mathematics": ("sup", "inf", "min", "max"),
    "engineering": ("kPa", "MPa", "GPa", "kHz"),
    "economics": ("GDP", "CPI", "VAR", "OLS"),
}

# ---------------------------------------------------------------------------
# Publishers, producer tools and their quality priors.
# ---------------------------------------------------------------------------

PUBLISHERS: tuple[str, ...] = ("arxiv", "biorxiv", "bmc", "mdpi", "medrxiv", "nature")

PUBLISHER_WEIGHTS: dict[str, float] = {
    "arxiv": 0.34,
    "biorxiv": 0.16,
    "bmc": 0.12,
    "mdpi": 0.12,
    "medrxiv": 0.10,
    "nature": 0.16,
}

# Publisher → domain affinity (used to sample a domain given a publisher).
PUBLISHER_DOMAIN_AFFINITY: dict[str, dict[str, float]] = {
    "arxiv": {
        "mathematics": 0.22, "physics": 0.30, "computer_science": 0.30,
        "economics": 0.05, "engineering": 0.08, "biology": 0.03,
        "chemistry": 0.01, "medicine": 0.01,
    },
    "biorxiv": {"biology": 0.70, "medicine": 0.15, "chemistry": 0.10, "computer_science": 0.05},
    "bmc": {"medicine": 0.55, "biology": 0.30, "public_health": 0.0, "chemistry": 0.05, "engineering": 0.10},
    "mdpi": {
        "chemistry": 0.25, "engineering": 0.25, "medicine": 0.15, "biology": 0.15,
        "physics": 0.10, "computer_science": 0.10,
    },
    "medrxiv": {"medicine": 0.80, "biology": 0.10, "economics": 0.05, "computer_science": 0.05},
    "nature": {
        "biology": 0.25, "medicine": 0.20, "physics": 0.20, "chemistry": 0.15,
        "engineering": 0.08, "computer_science": 0.08, "economics": 0.04,
    },
}

# PDF producer tools.  Each producer carries a prior over the embedded
# text-layer quality: LaTeX toolchains embed clean text, legacy office tools
# and scanner firmware much less so.
PRODUCERS: tuple[str, ...] = (
    "pdftex",
    "xetex",
    "luatex",
    "ms_word",
    "libreoffice",
    "indesign",
    "ghostscript",
    "scanner_firmware",
    "legacy_distiller",
    "unknown",
)

PRODUCER_WEIGHTS: dict[str, float] = {
    "pdftex": 0.30,
    "xetex": 0.10,
    "luatex": 0.06,
    "ms_word": 0.18,
    "libreoffice": 0.06,
    "indesign": 0.12,
    "ghostscript": 0.06,
    "scanner_firmware": 0.05,
    "legacy_distiller": 0.04,
    "unknown": 0.03,
}

# Producer → categorical prior over text-layer quality
# (clean, noisy, ocr_derived, scrambled, missing).
PRODUCER_TEXT_QUALITY: dict[str, tuple[float, float, float, float, float]] = {
    "pdftex": (0.92, 0.06, 0.00, 0.01, 0.01),
    "xetex": (0.90, 0.08, 0.00, 0.01, 0.01),
    "luatex": (0.90, 0.08, 0.00, 0.01, 0.01),
    "ms_word": (0.72, 0.20, 0.02, 0.04, 0.02),
    "libreoffice": (0.70, 0.22, 0.02, 0.04, 0.02),
    "indesign": (0.62, 0.22, 0.03, 0.09, 0.04),
    "ghostscript": (0.55, 0.25, 0.08, 0.07, 0.05),
    "scanner_firmware": (0.02, 0.08, 0.62, 0.08, 0.20),
    "legacy_distiller": (0.30, 0.30, 0.15, 0.15, 0.10),
    "unknown": (0.45, 0.25, 0.12, 0.10, 0.08),
}

PDF_FORMATS: tuple[str, ...] = ("1.3", "1.4", "1.5", "1.6", "1.7", "2.0")

FORMAT_WEIGHTS: dict[str, float] = {
    "1.3": 0.03,
    "1.4": 0.14,
    "1.5": 0.28,
    "1.6": 0.20,
    "1.7": 0.30,
    "2.0": 0.05,
}

# Per-domain composition of page elements: probability that a given content
# block is of each kind.  Math-heavy fields carry many equations; chemistry
# and biology carry SMILES and entity-heavy prose; medicine and economics are
# table-heavy.
ELEMENT_MIX: dict[str, dict[str, float]] = {
    "mathematics": {"paragraph": 0.48, "equation": 0.34, "table": 0.04, "figure_caption": 0.06, "smiles": 0.00, "citation_block": 0.08},
    "biology": {"paragraph": 0.62, "equation": 0.04, "table": 0.10, "figure_caption": 0.12, "smiles": 0.02, "citation_block": 0.10},
    "chemistry": {"paragraph": 0.52, "equation": 0.10, "table": 0.10, "figure_caption": 0.10, "smiles": 0.10, "citation_block": 0.08},
    "physics": {"paragraph": 0.52, "equation": 0.28, "table": 0.05, "figure_caption": 0.07, "smiles": 0.00, "citation_block": 0.08},
    "engineering": {"paragraph": 0.58, "equation": 0.16, "table": 0.10, "figure_caption": 0.08, "smiles": 0.00, "citation_block": 0.08},
    "medicine": {"paragraph": 0.60, "equation": 0.02, "table": 0.16, "figure_caption": 0.10, "smiles": 0.02, "citation_block": 0.10},
    "economics": {"paragraph": 0.60, "equation": 0.12, "table": 0.14, "figure_caption": 0.05, "smiles": 0.00, "citation_block": 0.09},
    "computer_science": {"paragraph": 0.56, "equation": 0.18, "table": 0.10, "figure_caption": 0.08, "smiles": 0.00, "citation_block": 0.08},
}

# Generic (non-scientific) vocabulary for pre-training the "web-scale" encoder
# baselines (BERT / MiniLM stand-ins) in Table 4.
GENERIC_TERMS: tuple[str, ...] = (
    "market", "company", "people", "government", "service", "product",
    "customer", "business", "school", "family", "community", "travel",
    "weather", "music", "movie", "game", "season", "team", "player",
    "election", "policy", "street", "restaurant", "holiday", "fashion",
    "garden", "recipe", "review", "price", "store",
)

AUTHOR_SURNAMES: tuple[str, ...] = (
    "Smith", "Chen", "Garcia", "Kumar", "Okafor", "Ivanov", "Tanaka",
    "Müller", "Rossi", "Nguyen", "Johansson", "Silva", "Kowalski", "Haddad",
    "Anderson", "Dubois", "Novak", "Sato", "Moreno", "Patel",
)

FIRST_PAGE_BOILERPLATE: tuple[str, ...] = (
    "Abstract",
    "Keywords",
    "Corresponding author",
    "Received in revised form",
    "Preprint submitted for review",
    "This work is licensed under a Creative Commons Attribution license",
)


def domain_vocabulary(domain: str) -> tuple[str, ...]:
    """Full word list for a domain: technical terms plus shared academic words."""
    if domain not in DOMAIN_TERMS:
        raise KeyError(f"unknown domain: {domain!r}")
    return DOMAIN_TERMS[domain] + ACADEMIC_NOUNS + ACADEMIC_VERBS + ACADEMIC_ADJECTIVES


def all_scientific_terms() -> tuple[str, ...]:
    """Union of every domain's technical terms (used for encoder pre-training)."""
    terms: list[str] = []
    for domain in DOMAINS:
        terms.extend(DOMAIN_TERMS[domain])
    return tuple(terms)
