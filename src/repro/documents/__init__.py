"""Synthetic scientific-document substrate.

The paper benchmarks parsers on 25 000 real scientific PDFs spanning eight
domains and six publishers.  Real PDFs (and the parsers' native rendering
stacks) are unavailable offline, so this package provides a *generative model*
of scientific documents that preserves the attributes the AdaParse routing
problem actually depends on:

* ground-truth text per page (prose, LaTeX equations, SMILES strings, tables,
  citations, references) with domain-dependent composition,
* an embedded **text layer** whose fidelity varies with the producing tool
  (clean born-digital, noisy, OCR-derived, scrambled, or missing),
* a rasterised **image layer** whose quality varies with scan degradation
  (rotation, blur, contrast, compression),
* publisher/producer/year/category metadata used by the CLS II classifier.
"""

from __future__ import annotations

from repro.documents.document import (
    DocumentType,
    ImageLayer,
    PageContent,
    PageElement,
    SciDocument,
    TextLayer,
    TextLayerQuality,
)
from repro.documents.metadata import DocumentMetadata
from repro.documents.corpus import Corpus, CorpusConfig, build_corpus
from repro.documents.augment import (
    AugmentationConfig,
    degrade_image_layers,
    replace_text_layers_with_ocr,
)
from repro.documents.simpdf import SimPdfReader, SimPdfWriter
from repro.documents.sources import (
    CrawlDumpSource,
    DocumentSource,
    ExplicitSource,
    HtmlDirSource,
    MarkdownDirSource,
    SimPdfDirSource,
    SourceKind,
    SourceSpec,
    SyntheticSource,
    create_source,
    parse_source_arg,
    register_source,
    source_kinds,
    source_names,
    validate_source_spec,
)

__all__ = [
    "DocumentType",
    "ImageLayer",
    "PageContent",
    "PageElement",
    "SciDocument",
    "TextLayer",
    "TextLayerQuality",
    "DocumentMetadata",
    "Corpus",
    "CorpusConfig",
    "build_corpus",
    "AugmentationConfig",
    "degrade_image_layers",
    "replace_text_layers_with_ocr",
    "SimPdfReader",
    "SimPdfWriter",
    "DocumentSource",
    "SourceKind",
    "SourceSpec",
    "SyntheticSource",
    "ExplicitSource",
    "SimPdfDirSource",
    "HtmlDirSource",
    "MarkdownDirSource",
    "CrawlDumpSource",
    "create_source",
    "parse_source_arg",
    "register_source",
    "source_kinds",
    "source_names",
    "validate_source_spec",
]
