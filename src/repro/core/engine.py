"""The AdaParse engine: adaptive routing of documents across parsers.

Both engine variants follow the architecture of Figure 2:

1. every document is parsed with the cheap default extractor (PyMuPDF);
2. **CLS I** checks the extracted text's validity from aggregate statistics —
   invalid documents are (budget permitting) sent to the high-quality parser;
3. **CLS II / CLS III** estimate, for valid documents, how much a re-parse
   with the high-quality parser would improve the text;
4. the **budget optimiser** routes the top-improvement documents to the
   high-quality parser, capped at an α fraction per batch; everyone else keeps
   the extracted text.

``AdaParseFT`` scores improvements with the fastText model (and optionally a
metadata classifier), skipping LLM inference entirely; ``AdaParseLLM`` uses
the fine-tuned (and DPO post-trained) Transformer selector.  Both expose the
standard :class:`repro.parsers.base.Parser` interface so the evaluation
harness and the HPC simulator treat them like any other parser.

Routing is **format-aware**: a document whose
:attr:`~repro.documents.document.SciDocument.doc_type` the high-quality
parser does not support (HTML/Markdown against an image-bound ViT parser,
for example) is never a candidate for the budgeted slots — it keeps the
default extraction and its decision records the ``type_ineligible`` stage
when routing would otherwise have been warranted.

Routing telemetry is a *return value*: :meth:`AdaParseEngine.parse_batches`
streams ``(results, decisions)`` per α-budgeted batch and
:meth:`AdaParseEngine.parse_with_telemetry` aggregates them, so engines hold
no mutable routing state on the hot path and are safe to share between
concurrent callers.  Consume telemetry through
:class:`repro.pipeline.ParsePipeline`, whose ``ParseReport`` carries the
decisions, aggregate resource usage, and throughput (the pre-PR-1
``last_summary`` attribute was removed after its deprecation cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

import numpy as np

from repro.core.budget import BudgetPlan, select_within_budget
from repro.core.cls1 import ValidationClassifier
from repro.core.cls2 import ImprovementClassifier
from repro.core.cls3 import ParserSelector
from repro.core.config import AdaParseConfig
from repro.documents.document import SciDocument
from repro.obs import profiling as _profiling
from repro.parsers.base import Parser, ParseResult, ParserCost, ResourceUsage
from repro.parsers.registry import ParserRegistry
from repro.utils.batching import chunked


#: Stages a routing decision can record.  ``type_ineligible`` marks a
#: document that *wanted* the high-quality parser (invalid extraction or a
#: score above the margin) but whose type that parser does not support.
ROUTING_STAGES: tuple[str, ...] = (
    "cls1_invalid",
    "accepted_default",
    "routed_high_quality",
    "budget_exhausted",
    "type_ineligible",
)


@dataclass(frozen=True)
class RoutingDecision:
    """Why one document was routed the way it was."""

    doc_id: str
    chosen_parser: str
    stage: str  # one of ROUTING_STAGES
    predicted_improvement: float = 0.0
    #: Format family of the document (drives per-type eligibility).
    doc_type: str = "pdf"


@dataclass
class RoutingSummary:
    """Aggregate routing statistics of one engine run."""

    decisions: list[RoutingDecision] = field(default_factory=list)

    def fraction_routed(self) -> float:
        """Fraction of documents routed to the high-quality parser."""
        if not self.decisions:
            return 0.0
        routed = sum(1 for d in self.decisions if d.stage in ("cls1_invalid", "routed_high_quality"))
        return routed / len(self.decisions)

    def counts_by_stage(self) -> dict[str, int]:
        """Number of documents per routing stage."""
        counts: dict[str, int] = {}
        for decision in self.decisions:
            counts[decision.stage] = counts.get(decision.stage, 0) + 1
        return counts

    def counts_by_doc_type(self) -> dict[str, dict[str, int]]:
        """Routing-stage counts split by document type.

        The per-type view is what format-aware routing is judged on: e.g.
        an HTML corpus must show zero ``routed_high_quality``/
        ``cls1_invalid`` entries when the high-quality parser is PDF-only.
        """
        by_type: dict[str, dict[str, int]] = {}
        for decision in self.decisions:
            stage_counts = by_type.setdefault(decision.doc_type, {})
            stage_counts[decision.stage] = stage_counts.get(decision.stage, 0) + 1
        return by_type

    def fraction_routed_by_doc_type(self) -> dict[str, float]:
        """Per-type fraction of documents sent to the high-quality parser."""
        totals: dict[str, int] = {}
        routed: dict[str, int] = {}
        for decision in self.decisions:
            totals[decision.doc_type] = totals.get(decision.doc_type, 0) + 1
            if decision.stage in ("cls1_invalid", "routed_high_quality"):
                routed[decision.doc_type] = routed.get(decision.doc_type, 0) + 1
        return {t: routed.get(t, 0) / n for t, n in totals.items() if n}


class AdaParseEngine(Parser):
    """Shared routing logic of the two AdaParse variants."""

    name = "adaparse"

    def __init__(
        self,
        registry: ParserRegistry,
        config: AdaParseConfig | None = None,
        validator: ValidationClassifier | None = None,
        improvement_classifier: ImprovementClassifier | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or AdaParseConfig()
        self.validator = validator or ValidationClassifier()
        self.improvement_classifier = improvement_classifier
        if self.config.default_parser not in registry:
            raise KeyError(f"default parser {self.config.default_parser!r} not registered")
        if self.config.high_quality_parser not in registry:
            raise KeyError(f"high-quality parser {self.config.high_quality_parser!r} not registered")
        # The engine's *static* cost profile approximates the expected mix:
        # default parse + selection on every document, high-quality parse on an
        # α fraction.  Used by schedulers that need a cost estimate up front.
        default_cost = registry.get(self.config.default_parser).cost
        expensive_cost = registry.get(self.config.high_quality_parser).cost
        alpha = self.config.alpha
        self.cost = ParserCost(
            cpu_seconds_per_page=default_cost.cpu_seconds_per_page
            + alpha * expensive_cost.cpu_seconds_per_page,
            gpu_seconds_per_page=alpha * expensive_cost.gpu_seconds_per_page
            + self.config.selection_gpu_seconds / 10.0,
            cpu_memory_mb=max(default_cost.cpu_memory_mb, expensive_cost.cpu_memory_mb),
            gpu_memory_mb=expensive_cost.gpu_memory_mb,
            model_load_seconds=expensive_cost.model_load_seconds,
            per_document_overhead_seconds=default_cost.per_document_overhead_seconds
            + self.config.selection_cpu_seconds,
            variability=default_cost.variability,
        )

    # ------------------------------------------------------------------ #
    # Hooks implemented by the variants
    # ------------------------------------------------------------------ #
    def improvement_scores(
        self, documents: list[SciDocument], extracted_texts: list[str]
    ) -> np.ndarray:
        """Predicted accuracy gain of the high-quality parser per document."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _selection_usage(self) -> ResourceUsage:
        return ResourceUsage(
            cpu_seconds=self.config.selection_cpu_seconds,
            gpu_seconds=self.config.selection_gpu_seconds,
        )

    def route_batch(
        self, documents: list[SciDocument]
    ) -> tuple[list[ParseResult], list[RoutingDecision]]:
        """Route one batch under the α budget — the engine's stateless core.

        Touches no instance state, so concurrent callers (and the pipeline's
        thread pool) can invoke it on a shared engine; it is also the
        override point subclasses use to customise routing, honoured by both
        the serial and the thread-pooled execution paths.
        """
        cfg = self.config
        default_parser = self.registry.get(cfg.default_parser)
        expensive_parser = self.registry.get(cfg.high_quality_parser)
        with _profiling.phase("parse.default"):
            default_results = [default_parser.parse(doc) for doc in documents]
        extracted_texts = [r.text for r in default_results]
        first_pages = [r.page_texts[0] if r.page_texts else "" for r in default_results]

        with _profiling.phase("route.validate"):
            verdicts = [
                self.validator.validate(text, n_pages=doc.n_pages)
                for text, doc in zip(extracted_texts, documents)
            ]
        with _profiling.phase("route.score"):
            scores = self.improvement_scores(documents, first_pages)
            if self.improvement_classifier is not None:
                likely = self.improvement_classifier.improvement_probability(
                    [doc.metadata for doc in documents]
                )
                scores = scores * likely
            # Invalid extractions take priority for the budgeted slots...
            forced = np.asarray([not v.is_valid for v in verdicts], dtype=bool)
            # ...but only documents whose type the high-quality parser
            # supports are candidates at all: format eligibility masks the
            # predictor's scores before the budget optimiser sees them.
            eligible = np.asarray(
                [expensive_parser.supports_doc_type(doc.doc_type) for doc in documents],
                dtype=bool,
            )
            effective = np.where(forced, np.inf, scores)
            effective = np.where(eligible, effective, -np.inf)
            plan: BudgetPlan = select_within_budget(
                effective, cfg.alpha, batch_size=None, margin=cfg.improvement_margin
            )

        results: list[ParseResult] = []
        decisions: list[RoutingDecision] = []
        for i, doc in enumerate(documents):
            selection_usage = default_results[i].usage + self._selection_usage()
            if plan.route_expensive[i]:
                with _profiling.phase("parse.high_quality"):
                    expensive_result = expensive_parser.parse(doc)
                usage = selection_usage + expensive_result.usage
                results.append(
                    ParseResult(
                        parser_name=self.name,
                        doc_id=doc.doc_id,
                        page_texts=expensive_result.page_texts,
                        usage=usage,
                        succeeded=expensive_result.succeeded,
                        error=expensive_result.error,
                    )
                )
                stage = "cls1_invalid" if forced[i] else "routed_high_quality"
                decisions.append(
                    RoutingDecision(
                        doc_id=doc.doc_id,
                        chosen_parser=cfg.high_quality_parser,
                        stage=stage,
                        predicted_improvement=float(scores[i]),
                        doc_type=doc.doc_type,
                    )
                )
            else:
                wanted_routing = forced[i] or float(scores[i]) > cfg.improvement_margin
                if not eligible[i] and wanted_routing:
                    stage = "type_ineligible"
                elif forced[i]:
                    stage = "budget_exhausted"
                else:
                    stage = "accepted_default"
                results.append(
                    ParseResult(
                        parser_name=self.name,
                        doc_id=doc.doc_id,
                        page_texts=default_results[i].page_texts,
                        usage=selection_usage,
                        succeeded=default_results[i].succeeded,
                        error=default_results[i].error,
                    )
                )
                decisions.append(
                    RoutingDecision(
                        doc_id=doc.doc_id,
                        chosen_parser=cfg.default_parser,
                        stage=stage,
                        predicted_improvement=float(scores[i]),
                        doc_type=doc.doc_type,
                    )
                )
        return results, decisions

    # ------------------------------------------------------------------ #
    # Fingerprinting
    # ------------------------------------------------------------------ #
    def config_fingerprint(self) -> str:
        """Stable fingerprint of everything that shapes this engine's output.

        Extends the base-parser fingerprint with the routing configuration
        (α, batch size, margin, selection costs), the fingerprints of both
        constituent parsers, the validator thresholds, and — when present —
        the trained selector's model weights.  Cached entries therefore
        invalidate when α changes, when either parser is upgraded, or when
        the selector is retrained.
        """
        from dataclasses import astuple

        from repro.utils.hashing import stable_hash_hex

        cfg = self.config
        selector = getattr(self, "selector", None)
        selector_fp = (
            selector.config_fingerprint()
            if selector is not None and hasattr(selector, "config_fingerprint")
            else type(self).__name__
        )
        improvement = self.improvement_classifier
        if improvement is None:
            improvement_fp = "none"
        elif hasattr(improvement, "weights_fingerprint"):
            improvement_fp = improvement.weights_fingerprint()
        else:  # duck-typed doubles without trained weights
            improvement_fp = type(improvement).__name__
        return stable_hash_hex(
            "adaparse-config",
            type(self).__name__,
            self.name,
            self.version,
            cfg.alpha,
            cfg.batch_size,
            cfg.default_parser,
            cfg.high_quality_parser,
            cfg.improvement_margin,
            cfg.selection_cpu_seconds,
            cfg.selection_gpu_seconds,
            cfg.seed,
            self.registry.get(cfg.default_parser).config_fingerprint(),
            self.registry.get(cfg.high_quality_parser).config_fingerprint(),
            *astuple(self.validator.config),
            selector_fp,
            improvement_fp,
        )

    # ------------------------------------------------------------------ #
    # Telemetry: a return value of the parse APIs (the old shim is gone)
    # ------------------------------------------------------------------ #
    @property
    def last_summary(self) -> "RoutingSummary":
        raise AttributeError(
            "AdaParseEngine.last_summary was removed after its deprecation cycle; "
            "routing telemetry is returned by parse_with_telemetry()/parse_batches() "
            "and carried in ParseReport.decisions (repro.pipeline.ParsePipeline.run)"
        )

    @last_summary.setter
    def last_summary(self, summary: "RoutingSummary") -> None:
        raise AttributeError(
            "AdaParseEngine.last_summary was removed after its deprecation cycle; "
            "routing telemetry is a return value of the parse APIs and cannot be assigned"
        )

    # ------------------------------------------------------------------ #
    # Batch parsing
    # ------------------------------------------------------------------ #
    def parse_batches(
        self, documents: Iterable[SciDocument], batch_size: int | None = None
    ) -> Iterator[tuple[list[ParseResult], list[RoutingDecision]]]:
        """Stream ``(results, decisions)`` per α-budgeted batch.

        This is the stateless core of the engine: it touches no instance
        state, so concurrent callers (and the thread-pooled
        :class:`repro.pipeline.ParsePipeline`) can share one engine.  The α
        cap is enforced independently within every batch, exactly as in the
        deployed system; memory stays O(batch).
        """
        size = batch_size or self.config.batch_size
        for batch in chunked(documents, size):
            yield self.route_batch(batch)

    def iter_parse(self, documents: Iterable[SciDocument]) -> Iterator[ParseResult]:
        """Stream parse results with per-batch α budgeting, O(batch) memory."""
        for batch_results, _ in self.parse_batches(documents):
            yield from batch_results

    def parse_with_telemetry(
        self, documents: Sequence[SciDocument], batch_size: int | None = None
    ) -> tuple[list[ParseResult], list[RoutingDecision]]:
        """Parse a collection, returning results *and* routing decisions.

        Telemetry is a return value rather than instance state: the engine
        holds no mutable routing state, so concurrent callers can share it.
        """
        results: list[ParseResult] = []
        decisions: list[RoutingDecision] = []
        for batch_results, batch_decisions in self.parse_batches(documents, batch_size):
            results.extend(batch_results)
            decisions.extend(batch_decisions)
        return results, decisions

    def parse_many(self, documents: list[SciDocument]) -> list[ParseResult]:
        """Parse a document collection, enforcing the α budget per batch."""
        results, _ = self.parse_with_telemetry(documents)
        return results

    def with_overrides(
        self, alpha: float | None = None, batch_size: int | None = None
    ) -> "AdaParseEngine":
        """A sibling engine sharing all trained components, with config tweaks.

        Used by the pipeline to honour per-request α/batch-size overrides
        without retraining or mutating the shared engine.
        """
        if alpha is None and batch_size is None:
            return self
        config = replace(
            self.config,
            alpha=self.config.alpha if alpha is None else alpha,
            batch_size=self.config.batch_size if batch_size is None else batch_size,
        )
        kwargs: dict[str, object] = {
            "registry": self.registry,
            "config": config,
            "validator": self.validator,
            "improvement_classifier": self.improvement_classifier,
        }
        if hasattr(self, "selector"):
            kwargs["selector"] = self.selector
        return type(self)(**kwargs)

    def _parse_pages(self, document: SciDocument, rng: np.random.Generator) -> list[str]:
        # Unused: the engine overrides parse()/parse_many() directly.
        raise NotImplementedError

    def parse(self, document: SciDocument) -> ParseResult:
        """Parse a single document.

        Without a batch there is no meaningful α constraint; the document is
        routed to the high-quality parser when its extraction is invalid or
        the predicted improvement clears the margin.  Large campaigns should
        use :meth:`parse_with_telemetry` (or the pipeline), which enforces
        the budget.
        """
        result, _ = self._route_single(document)
        return result

    def _route_single(self, document: SciDocument) -> tuple[ParseResult, list[RoutingDecision]]:
        cfg = self.config
        default_result = self.registry.get(cfg.default_parser).parse(document)
        text = default_result.text
        first_page = default_result.page_texts[0] if default_result.page_texts else ""
        verdict = self.validator.validate(text, n_pages=document.n_pages)
        score = float(self.improvement_scores([document], [first_page])[0])
        wanted_routing = (not verdict.is_valid) or score > cfg.improvement_margin
        eligible = self.registry.get(cfg.high_quality_parser).supports_doc_type(
            document.doc_type
        )
        route = wanted_routing and eligible
        selection_usage = default_result.usage + self._selection_usage()
        if route:
            expensive = self.registry.get(cfg.high_quality_parser).parse(document)
            result = ParseResult(
                parser_name=self.name,
                doc_id=document.doc_id,
                page_texts=expensive.page_texts,
                usage=selection_usage + expensive.usage,
                succeeded=expensive.succeeded,
                error=expensive.error,
            )
            stage = "cls1_invalid" if not verdict.is_valid else "routed_high_quality"
            chosen = cfg.high_quality_parser
        else:
            result = ParseResult(
                parser_name=self.name,
                doc_id=document.doc_id,
                page_texts=default_result.page_texts,
                usage=selection_usage,
                succeeded=default_result.succeeded,
                error=default_result.error,
            )
            stage = "type_ineligible" if wanted_routing else "accepted_default"
            chosen = cfg.default_parser
        decision = RoutingDecision(
            doc_id=document.doc_id,
            chosen_parser=chosen,
            stage=stage,
            predicted_improvement=score,
            doc_type=document.doc_type,
        )
        return result, [decision]


class AdaParseFT(AdaParseEngine):
    """AdaParse (FT): fastText-scored routing, no LLM inference.

    Implements CLS I and CLS II "within a single routine": the rule-based
    validity check plus a fastText improvement score (optionally gated by the
    metadata classifier) decide directly whether Nougat is triggered.
    """

    name = "adaparse_ft"

    def __init__(
        self,
        registry: ParserRegistry,
        selector: ParserSelector,
        config: AdaParseConfig | None = None,
        validator: ValidationClassifier | None = None,
        improvement_classifier: ImprovementClassifier | None = None,
    ) -> None:
        super().__init__(registry, config, validator, improvement_classifier)
        self.selector = selector

    def improvement_scores(
        self, documents: list[SciDocument], extracted_texts: list[str]
    ) -> np.ndarray:
        return self.selector.improvement_scores(
            extracted_texts, self.config.high_quality_parser
        )


class AdaParseLLM(AdaParseEngine):
    """AdaParse (LLM): Transformer-scored routing (SciBERT stand-in + DPO)."""

    name = "adaparse_llm"

    def __init__(
        self,
        registry: ParserRegistry,
        selector: ParserSelector,
        config: AdaParseConfig | None = None,
        validator: ValidationClassifier | None = None,
        improvement_classifier: ImprovementClassifier | None = None,
    ) -> None:
        super().__init__(registry, config, validator, improvement_classifier)
        self.selector = selector

    def improvement_scores(
        self, documents: list[SciDocument], extracted_texts: list[str]
    ) -> np.ndarray:
        return self.selector.improvement_scores(
            extracted_texts, self.config.high_quality_parser
        )


def build_default_engine(
    train_corpus=None,
    variant: str = "ft",
    registry: ParserRegistry | None = None,
    config: AdaParseConfig | None = None,
):
    """Convenience constructor: train a small AdaParse engine end to end.

    Parameters
    ----------
    train_corpus:
        Corpus used to label and train the selector.  When ``None`` a small
        synthetic corpus is generated (quickstart-sized; a real campaign should
        pass its own training split).
    variant:
        ``"ft"`` or ``"llm"``.
    registry, config:
        Optional parser registry and engine configuration.
    """
    from repro.core.training import AdaParseTrainer, TrainerSettings
    from repro.documents.corpus import CorpusConfig, build_corpus
    from repro.parsers.registry import default_registry

    if train_corpus is None:
        train_corpus = build_corpus(CorpusConfig(n_documents=80, seed=5, name="default-train"))
    registry = registry or default_registry()
    trainer = AdaParseTrainer(registry=registry, settings=TrainerSettings())
    if variant == "ft":
        return trainer.train_ft(train_corpus, config=config)
    if variant == "llm":
        return trainer.train_llm(train_corpus, config=config)
    raise ValueError(f"unknown AdaParse variant {variant!r}")
