"""Configuration of the AdaParse engine."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class AdaParseConfig:
    """Engine-level knobs shared by both AdaParse variants.

    Attributes
    ----------
    alpha:
        Maximum fraction of documents (per batch) routed to the high-quality
        parser — the paper's main operating point is 5 %.
    batch_size:
        Documents per scheduling batch (the paper uses 256); the α constraint
        is enforced within each batch.
    default_parser:
        The lightweight extraction parser run on every document.
    high_quality_parser:
        The expensive recognition parser reserved for the α-budgeted subset.
    improvement_margin:
        Minimum predicted accuracy improvement (high-quality minus default)
        for a document to be *eligible* for re-parsing; documents below the
        margin keep the extracted text even if budget remains.
    selection_cpu_seconds / selection_gpu_seconds:
        Per-document inference cost of the selection model itself (fastText is
        CPU-only and nearly free; the SciBERT-sized LLM adds a small GPU cost),
        charged on top of the default parse in the engine's resource usage.
    """

    alpha: float = 0.05
    batch_size: int = 256
    default_parser: str = "pymupdf"
    high_quality_parser: str = "nougat"
    improvement_margin: float = 0.02
    selection_cpu_seconds: float = 0.002
    selection_gpu_seconds: float = 0.0
    seed: int = 97

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.improvement_margin < 0:
            raise ValueError("improvement_margin must be non-negative")

    def with_alpha(self, alpha: float) -> "AdaParseConfig":
        """Copy of the configuration with a different α (used by ablations)."""
        return AdaParseConfig(
            alpha=alpha,
            batch_size=self.batch_size,
            default_parser=self.default_parser,
            high_quality_parser=self.high_quality_parser,
            improvement_margin=self.improvement_margin,
            selection_cpu_seconds=self.selection_cpu_seconds,
            selection_gpu_seconds=self.selection_gpu_seconds,
            seed=self.seed,
        )


#: Configuration used by the AdaParse (LLM) variant: the SciBERT-sized
#: selector adds a small per-document GPU inference cost.
LLM_VARIANT_CONFIG = AdaParseConfig(
    selection_cpu_seconds=0.01,
    selection_gpu_seconds=0.22,
)

#: Configuration used by the AdaParse (FT) variant: fastText inference is a
#: sub-millisecond CPU lookup.
FT_VARIANT_CONFIG = AdaParseConfig(
    selection_cpu_seconds=0.004,
    selection_gpu_seconds=0.0,
)
