"""CLS III: text-driven parser selection.

The final stage of the cascade predicts, from the extracted text itself, the
accuracy each parser would achieve on the document, and therefore which parser
to run.  The heavy lifting is done by
:class:`repro.ml.quality_model.ParserQualityPredictor` (a fine-tuned encoder
or a fastText model); this module adds the decision layer used by the engine:
ranking, improvement estimation relative to the default parser, and the
restriction to the configured candidate set (the deployed AdaParse restricts
itself to PyMuPDF vs Nougat for scalability, Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.quality_model import ParserQualityPredictor


@dataclass(frozen=True)
class SelectionDecision:
    """CLS III output for one document."""

    best_parser: str
    predicted_accuracies: dict[str, float]
    improvement_over_default: float


class ParserSelector:
    """Decision layer on top of the per-parser accuracy predictor."""

    def __init__(
        self,
        predictor: ParserQualityPredictor,
        default_parser: str = "pymupdf",
        candidate_parsers: list[str] | None = None,
    ) -> None:
        if default_parser not in predictor.parser_names:
            raise KeyError(f"default parser {default_parser!r} unknown to the predictor")
        self.predictor = predictor
        self.default_parser = default_parser
        if candidate_parsers is None:
            candidate_parsers = list(predictor.parser_names)
        unknown = [p for p in candidate_parsers if p not in predictor.parser_names]
        if unknown:
            raise KeyError(f"candidate parsers unknown to the predictor: {unknown}")
        if default_parser not in candidate_parsers:
            candidate_parsers = [default_parser] + candidate_parsers
        self.candidate_parsers = list(candidate_parsers)

    @property
    def parser_names(self) -> list[str]:
        return list(self.predictor.parser_names)

    def config_fingerprint(self) -> str:
        """Stable fingerprint of the selection configuration and weights."""
        from repro.utils.hashing import stable_hash_hex

        return stable_hash_hex(
            "parser-selector",
            self.default_parser,
            ",".join(self.candidate_parsers),
            self.predictor.weights_fingerprint(),
        )

    def predicted_accuracies(self, texts: list[str]) -> np.ndarray:
        """Predicted accuracy matrix restricted to the candidate parsers."""
        predictions = self.predictor.predict(texts)
        indices = [self.predictor.parser_names.index(p) for p in self.candidate_parsers]
        return predictions[:, indices]

    def decide(self, texts: list[str]) -> list[SelectionDecision]:
        """Per-document selection decisions for a batch of extracted texts."""
        if not texts:
            return []
        restricted = self.predicted_accuracies(texts)
        default_column = self.candidate_parsers.index(self.default_parser)
        decisions: list[SelectionDecision] = []
        for row in restricted:
            best_index = int(np.argmax(row))
            best_parser = self.candidate_parsers[best_index]
            improvement = float(row[best_index] - row[default_column])
            decisions.append(
                SelectionDecision(
                    best_parser=best_parser,
                    predicted_accuracies={
                        p: float(v) for p, v in zip(self.candidate_parsers, row)
                    },
                    improvement_over_default=improvement,
                )
            )
        return decisions

    def improvement_scores(self, texts: list[str], target_parser: str) -> np.ndarray:
        """Predicted accuracy gain of ``target_parser`` over the default parser."""
        if target_parser not in self.candidate_parsers:
            raise KeyError(f"{target_parser!r} is not a candidate parser")
        restricted = self.predicted_accuracies(texts)
        default_column = self.candidate_parsers.index(self.default_parser)
        target_column = self.candidate_parsers.index(target_parser)
        return restricted[:, target_column] - restricted[:, default_column]
