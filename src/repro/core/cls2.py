"""CLS II: metadata-driven "is an improvement likely?" classifier.

For documents whose extracted text passes validation, the second stage asks
whether re-parsing with a different (more expensive) parser is likely to bring
a significant quality improvement.  The paper infers this binary label from
document metadata (authoring tool, year of publication, number of pages,
publisher, ...) with a regression/classification model; here it is a logistic
regression over the :class:`repro.ml.features.MetadataFeaturizer` vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.documents.metadata import DocumentMetadata
from repro.ml.features import MetadataFeaturizer
from repro.ml.linear import LogisticRegression


@dataclass(frozen=True)
class ImprovementLabeling:
    """How training labels for CLS II are derived from per-parser accuracies."""

    default_parser: str = "pymupdf"
    margin: float = 0.05

    def labels(self, parser_names: list[str], accuracies: np.ndarray) -> np.ndarray:
        """1 when some parser beats the default by more than ``margin``."""
        default_index = parser_names.index(self.default_parser)
        best_other = np.max(
            np.delete(accuracies, default_index, axis=1), axis=1
        )
        return (best_other > accuracies[:, default_index] + self.margin).astype(np.int64)


class ImprovementClassifier:
    """Predicts whether re-parsing is likely to improve a document's text."""

    def __init__(
        self,
        featurizer: MetadataFeaturizer | None = None,
        labeling: ImprovementLabeling | None = None,
        l2: float = 1e-3,
    ) -> None:
        self.featurizer = featurizer or MetadataFeaturizer()
        self.labeling = labeling or ImprovementLabeling()
        self.model = LogisticRegression(n_classes=2, l2=l2)
        self._fitted = False

    def fit(
        self,
        metadatas: list[DocumentMetadata],
        parser_names: list[str],
        accuracies: np.ndarray,
    ) -> "ImprovementClassifier":
        """Fit from metadata records and the per-parser accuracy matrix."""
        features = self.featurizer.extract_batch(metadatas)
        labels = self.labeling.labels(parser_names, np.asarray(accuracies, dtype=np.float64))
        self.model.fit(features, labels)
        self._fitted = True
        return self

    def weights_fingerprint(self) -> str:
        """Stable hex digest of the trained logistic-regression weights.

        Part of the engine's cache fingerprint: retraining CLS II must
        invalidate cached routing decisions.
        """
        from repro.utils.hashing import hash_buffers

        buffers: list[bytes] = [b"improvement-classifier", str(self._fitted).encode()]
        for name in ("weights", "bias"):
            value = getattr(self.model, name, None)
            if value is None:
                buffers.append(f"{name}:none".encode("utf-8"))
                continue
            array = np.ascontiguousarray(value)
            buffers.extend(
                [
                    name.encode("utf-8"),
                    str(array.dtype).encode("utf-8"),
                    str(array.shape).encode("utf-8"),
                    array.tobytes(),
                ]
            )
        return hash_buffers(*buffers)

    def improvement_probability(self, metadatas: list[DocumentMetadata]) -> np.ndarray:
        """Probability that another parser improves on the default, per document."""
        if not self._fitted:
            raise RuntimeError("ImprovementClassifier is not fitted")
        features = self.featurizer.extract_batch(metadatas)
        return self.model.predict_proba(features)[:, 1]

    def improvement_likely(
        self, metadatas: list[DocumentMetadata], threshold: float = 0.5
    ) -> np.ndarray:
        """Boolean mask of documents deemed likely to improve."""
        return self.improvement_probability(metadatas) >= threshold

    def accuracy(
        self,
        metadatas: list[DocumentMetadata],
        parser_names: list[str],
        accuracies: np.ndarray,
    ) -> float:
        """Classification accuracy against labels derived from ``accuracies``."""
        labels = self.labeling.labels(parser_names, np.asarray(accuracies, dtype=np.float64))
        features = self.featurizer.extract_batch(metadatas)
        return self.model.accuracy(features, labels)
