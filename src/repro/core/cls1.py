"""CLS I: rule-based validation of the extracted text.

The first classification stage judges, from cheap aggregate statistics of the
PyMuPDF-extracted text (character counts, whitespace and alphabetic ratios,
scrambled-word indicators, ...), whether the extraction is *valid* at all.
Invalid documents bypass the rest of the cascade and go straight to the
high-quality parser.  The paper stresses that this stage must be interpretable
and fast — hence explicit thresholds rather than a learned model, with an
optional calibration helper that tunes the thresholds from labelled data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.features import TEXT_FEATURE_NAMES, TextStatisticsExtractor


@dataclass(frozen=True)
class ValidationConfig:
    """Thresholds of the rule-based validity check."""

    min_characters: int = 200
    min_words_per_page: float = 40.0
    min_alpha_ratio: float = 0.55
    max_whitespace_ratio: float = 0.35
    max_vowel_free_word_ratio: float = 0.25
    max_single_char_word_ratio: float = 0.20
    max_non_ascii_ratio: float = 0.20
    min_lexicon_hit_ratio: float = 0.02


@dataclass(frozen=True)
class ValidationVerdict:
    """Outcome of CLS I for one document."""

    is_valid: bool
    reasons: tuple[str, ...] = ()
    features: np.ndarray | None = None


class ValidationClassifier:
    """Rule-based validity classifier over extracted-text statistics."""

    def __init__(self, config: ValidationConfig | None = None) -> None:
        self.config = config or ValidationConfig()
        self.extractor = TextStatisticsExtractor()
        self._index = {name: i for i, name in enumerate(TEXT_FEATURE_NAMES)}

    def _feature(self, features: np.ndarray, name: str) -> float:
        return float(features[self._index[name]])

    def validate(self, text: str, n_pages: int = 1) -> ValidationVerdict:
        """Judge one extracted text (optionally normalised per page)."""
        cfg = self.config
        reasons: list[str] = []
        if len(text.strip()) < cfg.min_characters:
            reasons.append(f"text too short ({len(text.strip())} chars)")
            return ValidationVerdict(is_valid=False, reasons=tuple(reasons))
        features = self.extractor.extract(text)
        n_words = float(np.expm1(self._feature(features, "n_words_log")))
        words_per_page = n_words / max(1, n_pages)
        if words_per_page < cfg.min_words_per_page:
            reasons.append(f"too few words per page ({words_per_page:.0f})")
        if self._feature(features, "alpha_ratio") < cfg.min_alpha_ratio:
            reasons.append("low alphabetic ratio")
        if self._feature(features, "whitespace_ratio") > cfg.max_whitespace_ratio:
            reasons.append("excessive whitespace")
        if self._feature(features, "vowel_free_word_ratio") > cfg.max_vowel_free_word_ratio:
            reasons.append("many unpronounceable (scrambled) words")
        if self._feature(features, "single_char_word_ratio") > cfg.max_single_char_word_ratio:
            reasons.append("many single-character words (whitespace injection)")
        if self._feature(features, "non_ascii_ratio") > cfg.max_non_ascii_ratio:
            reasons.append("high non-ASCII ratio")
        if self._feature(features, "lexicon_hit_ratio") < cfg.min_lexicon_hit_ratio:
            reasons.append("no recognisable vocabulary")
        return ValidationVerdict(is_valid=not reasons, reasons=tuple(reasons), features=features)

    def is_valid(self, text: str, n_pages: int = 1) -> bool:
        """Boolean shortcut for :meth:`validate`."""
        return self.validate(text, n_pages=n_pages).is_valid

    def validate_batch(self, texts: list[str], n_pages: list[int] | None = None) -> list[ValidationVerdict]:
        """Validate a batch of extracted texts."""
        if n_pages is None:
            n_pages = [1] * len(texts)
        return [self.validate(t, n) for t, n in zip(texts, n_pages)]


def calibrate_validation_threshold(
    texts: list[str],
    accuracies: np.ndarray,
    accuracy_floor: float = 0.25,
    quantile: float = 0.05,
) -> ValidationConfig:
    """Tune CLS I thresholds from labelled data.

    Documents whose extraction accuracy falls below ``accuracy_floor`` are
    treated as "should have been flagged invalid"; thresholds are set at the
    requested quantile of the *good* documents' feature distributions so that
    valid documents are rarely rejected.
    """
    extractor = TextStatisticsExtractor()
    features = extractor.extract_batch(texts)
    accuracies = np.asarray(accuracies, dtype=np.float64)
    good = accuracies >= accuracy_floor
    if good.sum() < 5:
        return ValidationConfig()
    index = {name: i for i, name in enumerate(TEXT_FEATURE_NAMES)}
    good_features = features[good]
    return ValidationConfig(
        min_alpha_ratio=float(np.quantile(good_features[:, index["alpha_ratio"]], quantile)),
        max_whitespace_ratio=float(
            np.quantile(good_features[:, index["whitespace_ratio"]], 1 - quantile)
        ),
        max_vowel_free_word_ratio=float(
            np.quantile(good_features[:, index["vowel_free_word_ratio"]], 1 - quantile)
        ),
        max_single_char_word_ratio=float(
            np.quantile(good_features[:, index["single_char_word_ratio"]], 1 - quantile)
        ),
        max_non_ascii_ratio=float(
            np.quantile(good_features[:, index["non_ascii_ratio"]], 1 - quantile)
        ),
    )
