"""Budget-constrained assignment of documents to parsers (Appendix C).

The optimisation problem of Section 4 reduces, for the deployed two-parser
configuration, to choosing which documents get the expensive parser subject to
a total-compute constraint.  Appendix C shows the constraint translates into a
cap α on the *fraction* of documents routed to the expensive parser, and that
the objective is maximised by sorting documents by expected accuracy
improvement and taking the top ⌊αn⌋.  AdaParse applies this per scheduling
batch; the global solution is also implemented here so the ablation benchmark
can measure the (negligible) per-batch optimality gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


def alpha_for_budget(
    total_budget_seconds: float,
    n_documents: int,
    default_cost_seconds: float,
    expensive_cost_seconds: float,
) -> float:
    """The largest α compatible with a total compute budget.

    Implements the closed-form bound of Appendix C:
    ``α ≤ (T − n·T_default) / (n·(T_expensive − T_default))``, clipped to
    ``[0, 1]``.
    """
    if n_documents <= 0:
        raise ValueError("n_documents must be positive")
    if expensive_cost_seconds <= default_cost_seconds:
        # The "expensive" parser is not actually more expensive: the budget
        # never binds and every document may use it.
        return 1.0
    numerator = total_budget_seconds - n_documents * default_cost_seconds
    denominator = n_documents * (expensive_cost_seconds - default_cost_seconds)
    return float(np.clip(numerator / denominator, 0.0, 1.0))


def budget_for_alpha(
    alpha: float,
    n_documents: int,
    default_cost_seconds: float,
    expensive_cost_seconds: float,
) -> float:
    """Total compute implied by routing an α fraction to the expensive parser."""
    return float(
        n_documents * default_cost_seconds
        + alpha * n_documents * (expensive_cost_seconds - default_cost_seconds)
    )


@dataclass
class BudgetPlan:
    """Routing decision for a collection of documents.

    Attributes
    ----------
    route_expensive:
        Boolean array; ``True`` where the document goes to the expensive parser.
    improvements:
        The improvement scores the plan was computed from.
    alpha:
        The fraction cap that was enforced.
    """

    route_expensive: np.ndarray
    improvements: np.ndarray
    alpha: float
    batch_size: int | None = None

    @property
    def n_expensive(self) -> int:
        """Number of documents routed to the expensive parser."""
        return int(self.route_expensive.sum())

    @property
    def expensive_fraction(self) -> float:
        """Realised fraction of documents routed to the expensive parser."""
        if self.route_expensive.size == 0:
            return 0.0
        return float(self.route_expensive.mean())

    def expected_gain(self) -> float:
        """Sum of predicted improvements over the routed documents."""
        return float(self.improvements[self.route_expensive].sum())


def _select_top_k(improvements: np.ndarray, k: int, margin: float) -> np.ndarray:
    """Boolean mask of the top-``k`` positive-improvement documents."""
    mask = np.zeros(improvements.shape[0], dtype=bool)
    if k <= 0 or improvements.size == 0:
        return mask
    eligible = np.flatnonzero(improvements > margin)
    if eligible.size == 0:
        return mask
    order = eligible[np.argsort(improvements[eligible])[::-1]]
    mask[order[:k]] = True
    return mask


def select_within_budget(
    improvements: Sequence[float] | np.ndarray,
    alpha: float,
    batch_size: int | None = None,
    margin: float = 0.0,
) -> BudgetPlan:
    """Choose which documents to route to the expensive parser.

    Parameters
    ----------
    improvements:
        Predicted accuracy improvement of the expensive parser over the
        default parser, one value per document (in arrival order).
    alpha:
        Maximum fraction of documents routed to the expensive parser.
    batch_size:
        When given, the α cap is enforced within every consecutive batch of
        this size (AdaParse's deployed behaviour, which keeps the decision
        streaming-friendly); ``None`` enforces it globally (the reference
        solution of Appendix C).
    margin:
        Documents whose predicted improvement does not exceed ``margin`` keep
        the default parse even if budget remains.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must lie in [0, 1]")
    scores = np.asarray(improvements, dtype=np.float64)
    n = scores.shape[0]
    mask = np.zeros(n, dtype=bool)
    if n == 0:
        return BudgetPlan(route_expensive=mask, improvements=scores, alpha=alpha, batch_size=batch_size)
    if batch_size is None:
        k = int(np.floor(alpha * n))
        mask = _select_top_k(scores, k, margin)
    else:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        for start in range(0, n, batch_size):
            stop = min(n, start + batch_size)
            batch_scores = scores[start:stop]
            k = int(np.floor(alpha * (stop - start)))
            batch_mask = _select_top_k(batch_scores, k, margin)
            mask[start:stop] = batch_mask
    return BudgetPlan(route_expensive=mask, improvements=scores, alpha=alpha, batch_size=batch_size)


def optimality_gap(
    improvements: Sequence[float] | np.ndarray, alpha: float, batch_size: int
) -> float:
    """Relative gap between per-batch and global budget solutions.

    Appendix C argues the gap is negligible for large batches (k = 256); the
    ablation benchmark reports this quantity over the test corpus.
    """
    scores = np.asarray(improvements, dtype=np.float64)
    global_plan = select_within_budget(scores, alpha, batch_size=None)
    batch_plan = select_within_budget(scores, alpha, batch_size=batch_size)
    global_gain = global_plan.expected_gain()
    if global_gain <= 0:
        return 0.0
    return float((global_gain - batch_plan.expected_gain()) / global_gain)
