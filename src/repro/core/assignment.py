"""Budget-constrained assignment over the *full* parser set.

Section 4 of the paper states the general problem — pick one of ``m`` parsers
per document to maximise total expected accuracy subject to a total compute
budget — but the deployed system restricts itself to two parsers (Appendix C)
for scalability.  This module implements the general problem as a library
extension, so that campaigns with several mid-cost parsers (GROBID, Tesseract,
Marker) can be planned optimally as well:

* :func:`greedy_assignment` — marginal gain-per-cost upgrades starting from the
  cheapest parser (the natural generalisation of Appendix C's sort-and-take-α).
* :func:`lagrangian_assignment` — bisection on the budget multiplier λ, where
  each document independently maximises ``accuracy − λ·cost``.
* :func:`exhaustive_assignment` — brute force over all ``m^n`` assignments,
  usable only for tiny instances; the test-suite oracle.

All solvers consume an accuracy matrix (e.g. CLS III predictions) and a cost
matrix (expected compute seconds from the parser cost models) of shape
``[n_documents, n_parsers]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

from repro.documents.document import SciDocument
from repro.parsers.registry import ParserRegistry


@dataclass
class AssignmentPlan:
    """Result of one assignment optimisation.

    Attributes
    ----------
    assignment:
        Parser index per document (column of the accuracy/cost matrices).
    parser_names:
        Names of the columns; ``assignment`` indexes into this list.
    total_accuracy:
        Sum of predicted accuracies of the chosen (document, parser) pairs.
    total_cost:
        Sum of costs of the chosen pairs (same unit as the budget).
    budget:
        The budget the plan was computed for.
    feasible:
        Whether ``total_cost`` respects the budget.  The only infeasible case
        is a budget below the cost of the cheapest possible assignment, in
        which case the cheapest assignment is returned.
    """

    assignment: np.ndarray
    parser_names: list[str]
    total_accuracy: float
    total_cost: float
    budget: float
    feasible: bool

    @property
    def n_documents(self) -> int:
        return int(self.assignment.shape[0])

    def chosen_parsers(self) -> list[str]:
        """Parser name per document."""
        return [self.parser_names[int(j)] for j in self.assignment]

    def fraction_by_parser(self) -> dict[str, float]:
        """Fraction of documents assigned to each parser."""
        if self.n_documents == 0:
            return {name: 0.0 for name in self.parser_names}
        counts = np.bincount(self.assignment, minlength=len(self.parser_names))
        return {
            name: float(count) / self.n_documents
            for name, count in zip(self.parser_names, counts)
        }

    def summary(self) -> dict[str, object]:
        return {
            "n_documents": self.n_documents,
            "total_accuracy": round(self.total_accuracy, 4),
            "total_cost": round(self.total_cost, 4),
            "budget": self.budget,
            "feasible": self.feasible,
            "fraction_by_parser": {
                k: round(v, 4) for k, v in self.fraction_by_parser().items()
            },
        }


def _validate_matrices(accuracy: np.ndarray, costs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    accuracy = np.asarray(accuracy, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if accuracy.ndim != 2 or costs.ndim != 2:
        raise ValueError("accuracy and costs must be 2-D [n_documents, n_parsers]")
    if accuracy.shape != costs.shape:
        raise ValueError(f"shape mismatch: accuracy {accuracy.shape} vs costs {costs.shape}")
    if accuracy.shape[1] == 0:
        raise ValueError("at least one parser column is required")
    if np.any(costs < 0):
        raise ValueError("costs must be non-negative")
    return accuracy, costs


def _plan_from_assignment(
    assignment: np.ndarray,
    accuracy: np.ndarray,
    costs: np.ndarray,
    budget: float,
    parser_names: Sequence[str],
) -> AssignmentPlan:
    rows = np.arange(assignment.shape[0])
    total_accuracy = float(accuracy[rows, assignment].sum())
    total_cost = float(costs[rows, assignment].sum())
    return AssignmentPlan(
        assignment=assignment.astype(np.int64),
        parser_names=list(parser_names),
        total_accuracy=total_accuracy,
        total_cost=total_cost,
        budget=float(budget),
        feasible=total_cost <= budget + 1e-9,
    )


def _default_names(n_parsers: int, parser_names: Sequence[str] | None) -> list[str]:
    if parser_names is None:
        return [f"parser-{j}" for j in range(n_parsers)]
    names = list(parser_names)
    if len(names) != n_parsers:
        raise ValueError("parser_names length must match the number of columns")
    return names


# --------------------------------------------------------------------------- #
# Solvers
# --------------------------------------------------------------------------- #

#: Instances with at most this many candidate assignments are solved exactly
#: by enumeration instead of heuristically: for tiny campaigns the optimum is
#: cheaper than any clever approximation, and the heuristics' additive gap on
#: adversarial tiny instances can otherwise be arbitrarily large.
_EXACT_ENUMERATION_LIMIT = 4096


def _exact_if_tiny(
    accuracy: np.ndarray,
    costs: np.ndarray,
    budget: float,
    names: Sequence[str],
) -> AssignmentPlan | None:
    n_docs, n_parsers = accuracy.shape
    if n_parsers**n_docs <= _EXACT_ENUMERATION_LIMIT:
        return exhaustive_assignment(
            accuracy, costs, budget, names, max_documents=max(n_docs, 1)
        )
    return None


def _apply_greedy_upgrades(
    assignment: np.ndarray,
    accuracy: np.ndarray,
    costs: np.ndarray,
    budget: float,
) -> np.ndarray:
    """Greedily upgrade documents (best gain per extra cost first) within budget.

    Starts from ``assignment``; first takes any strictly better parser at
    equal-or-lower cost, then repeatedly applies the feasible upgrade with the
    highest accuracy gain per additional compute second.
    """
    assignment = assignment.astype(np.int64).copy()
    n_docs = assignment.shape[0]
    spent = float(costs[np.arange(n_docs), assignment].sum())

    # Free improvements: a better parser at no extra cost is always taken.
    for doc in range(n_docs):
        current = assignment[doc]
        for j in range(accuracy.shape[1]):
            if (
                costs[doc, j] <= costs[doc, current] + 1e-12
                and accuracy[doc, j] > accuracy[doc, current]
            ):
                current = j
        spent += float(costs[doc, current] - costs[doc, assignment[doc]])
        assignment[doc] = current

    def best_upgrade(doc: int) -> tuple[float, float, float, int] | None:
        """Best (ratio, gain, extra_cost, parser) upgrade of one document."""
        current = assignment[doc]
        base_acc = accuracy[doc, current]
        base_cost = costs[doc, current]
        best: tuple[float, float, float, int] | None = None
        for j in range(accuracy.shape[1]):
            extra_cost = costs[doc, j] - base_cost
            gain = accuracy[doc, j] - base_acc
            if extra_cost <= 0 or gain <= 0:
                continue
            ratio = gain / extra_cost
            if best is None or ratio > best[0]:
                best = (ratio, gain, extra_cost, j)
        return best

    candidates = {doc: best_upgrade(doc) for doc in range(n_docs)}
    while True:
        best_doc = -1
        best_candidate: tuple[float, float, float, int] | None = None
        for doc, candidate in candidates.items():
            if candidate is None:
                continue
            if candidate[2] > budget - spent + 1e-12:
                continue
            if best_candidate is None or candidate[0] > best_candidate[0]:
                best_candidate = candidate
                best_doc = doc
        if best_candidate is None:
            break
        _, _, extra_cost, target = best_candidate
        assignment[best_doc] = target
        spent += extra_cost
        candidates[best_doc] = best_upgrade(best_doc)
    return assignment


def greedy_assignment(
    accuracy: np.ndarray,
    costs: np.ndarray,
    budget: float,
    parser_names: Sequence[str] | None = None,
) -> AssignmentPlan:
    """Greedy marginal-gain-per-cost assignment.

    Every document starts on its cheapest parser.  Candidate *upgrades* (switch
    one document to a more accurate but costlier parser) are applied in order
    of accuracy gain per additional cost until the budget is exhausted.  This
    is the textbook greedy for the LP relaxation of the multiple-choice
    knapsack; with two parsers of uniform cost it reduces exactly to the
    paper's sort-by-improvement rule.  Tiny instances (at most
    ``_EXACT_ENUMERATION_LIMIT`` candidate assignments) are solved exactly.
    """
    accuracy, costs = _validate_matrices(accuracy, costs)
    names = _default_names(accuracy.shape[1], parser_names)
    n_docs = accuracy.shape[0]
    if n_docs == 0:
        return _plan_from_assignment(np.zeros(0, dtype=np.int64), accuracy, costs, budget, names)
    exact = _exact_if_tiny(accuracy, costs, budget, names)
    if exact is not None:
        return exact
    assignment = _apply_greedy_upgrades(np.argmin(costs, axis=1), accuracy, costs, budget)
    return _plan_from_assignment(assignment, accuracy, costs, budget, names)


def lagrangian_assignment(
    accuracy: np.ndarray,
    costs: np.ndarray,
    budget: float,
    parser_names: Sequence[str] | None = None,
    max_iterations: int = 60,
) -> AssignmentPlan:
    """Lagrangian-relaxation assignment via bisection on the price of compute.

    For a multiplier λ ≥ 0 every document independently picks
    ``argmax_j accuracy[i, j] − λ·costs[i, j]``; the budget constraint is
    enforced by bisecting λ until the induced total cost fits.  Because the
    dual can leave part of the budget unused (the per-document argmax jumps
    discontinuously in λ), the best feasible assignment found is refined with
    greedy upgrades before being returned.
    """
    accuracy, costs = _validate_matrices(accuracy, costs)
    names = _default_names(accuracy.shape[1], parser_names)
    n_docs = accuracy.shape[0]
    if n_docs == 0:
        return _plan_from_assignment(np.zeros(0, dtype=np.int64), accuracy, costs, budget, names)
    exact = _exact_if_tiny(accuracy, costs, budget, names)
    if exact is not None:
        return exact

    def assign_for(lam: float) -> np.ndarray:
        scores = accuracy - lam * costs
        # Break score ties towards the cheaper parser so high λ converges to
        # the cheapest assignment.
        tie_break = -costs * 1e-9
        return np.argmax(scores + tie_break, axis=1)

    cheapest = np.argmin(costs, axis=1)
    best_plan = _plan_from_assignment(cheapest, accuracy, costs, budget, names)

    lo, hi = 0.0, 1.0
    # Grow the bracket until λ = hi yields a feasible assignment (or give up
    # and fall back to the cheapest plan).
    for _ in range(60):
        plan = _plan_from_assignment(assign_for(hi), accuracy, costs, budget, names)
        if plan.feasible:
            if plan.total_accuracy >= best_plan.total_accuracy or not best_plan.feasible:
                best_plan = plan
            break
        hi *= 2.0
    for _ in range(max_iterations):
        mid = 0.5 * (lo + hi)
        plan = _plan_from_assignment(assign_for(mid), accuracy, costs, budget, names)
        if plan.feasible:
            hi = mid
            if not best_plan.feasible or plan.total_accuracy > best_plan.total_accuracy:
                best_plan = plan
        else:
            lo = mid
    zero_plan = _plan_from_assignment(assign_for(0.0), accuracy, costs, budget, names)
    if zero_plan.feasible and zero_plan.total_accuracy > best_plan.total_accuracy:
        best_plan = zero_plan
    if best_plan.feasible:
        refined = _apply_greedy_upgrades(best_plan.assignment, accuracy, costs, budget)
        refined_plan = _plan_from_assignment(refined, accuracy, costs, budget, names)
        if refined_plan.feasible and refined_plan.total_accuracy >= best_plan.total_accuracy:
            best_plan = refined_plan
    return best_plan


def exhaustive_assignment(
    accuracy: np.ndarray,
    costs: np.ndarray,
    budget: float,
    parser_names: Sequence[str] | None = None,
    max_documents: int = 10,
) -> AssignmentPlan:
    """Exact optimum by enumeration (test oracle; exponential in ``n``)."""
    accuracy, costs = _validate_matrices(accuracy, costs)
    names = _default_names(accuracy.shape[1], parser_names)
    n_docs, n_parsers = accuracy.shape
    if n_docs > max_documents:
        raise ValueError(
            f"exhaustive search limited to {max_documents} documents, got {n_docs}"
        )
    if n_docs == 0:
        return _plan_from_assignment(np.zeros(0, dtype=np.int64), accuracy, costs, budget, names)
    cheapest = np.argmin(costs, axis=1)
    best_plan = _plan_from_assignment(cheapest, accuracy, costs, budget, names)
    for combo in product(range(n_parsers), repeat=n_docs):
        assignment = np.asarray(combo, dtype=np.int64)
        plan = _plan_from_assignment(assignment, accuracy, costs, budget, names)
        if not plan.feasible:
            continue
        # Ties in accuracy break towards the cheaper plan, so the optimum
        # never spends budget that buys nothing.
        better = (
            not best_plan.feasible
            or plan.total_accuracy > best_plan.total_accuracy + 1e-12
            or (
                abs(plan.total_accuracy - best_plan.total_accuracy) <= 1e-12
                and plan.total_cost < best_plan.total_cost - 1e-12
            )
        )
        if better:
            best_plan = plan
    return best_plan


# --------------------------------------------------------------------------- #
# Problem construction from library objects
# --------------------------------------------------------------------------- #


def cost_matrix_for_documents(
    documents: Sequence[SciDocument],
    registry: ParserRegistry,
    parser_names: Sequence[str] | None = None,
) -> tuple[np.ndarray, list[str]]:
    """Expected compute cost (CPU + GPU seconds) per (document, parser)."""
    names = list(parser_names) if parser_names is not None else registry.names
    matrix = np.zeros((len(documents), len(names)), dtype=np.float64)
    for j, name in enumerate(names):
        parser = registry.get(name)
        for i, document in enumerate(documents):
            usage = parser.estimate_usage(document)
            matrix[i, j] = usage.total_compute_seconds
    return matrix, names


def plan_campaign_assignment(
    documents: Sequence[SciDocument],
    predicted_accuracy: np.ndarray,
    registry: ParserRegistry,
    budget_seconds: float,
    parser_names: Sequence[str] | None = None,
    method: str = "greedy",
) -> AssignmentPlan:
    """Plan a full-campaign assignment from CLS III predictions and cost models.

    Parameters
    ----------
    documents:
        The documents to be parsed.
    predicted_accuracy:
        Matrix ``[n_documents, n_parsers]`` of predicted accuracies, with
        columns ordered like ``parser_names`` (or the registry order).
    registry:
        Registry providing the per-parser cost models.
    budget_seconds:
        Total compute budget (CPU + GPU seconds).
    method:
        ``"greedy"`` or ``"lagrangian"``.
    """
    costs, names = cost_matrix_for_documents(documents, registry, parser_names)
    if method == "greedy":
        return greedy_assignment(predicted_accuracy, costs, budget_seconds, names)
    if method == "lagrangian":
        return lagrangian_assignment(predicted_accuracy, costs, budget_seconds, names)
    raise ValueError(f"unknown assignment method {method!r}")
