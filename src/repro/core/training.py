"""End-to-end training of AdaParse engines from a corpus.

Reproduces the paper's training recipe (Section 4.2, Appendix A):

1. label a training corpus by running every parser and scoring its output
   (the regression dataset);
2. supervised fine-tuning of the selector — fastText for AdaParse (FT), a
   (optionally pre-trained, LoRA-adapted) Transformer for AdaParse (LLM) —
   to predict per-parser BLEU from the default parser's first-page text;
3. optional DPO post-training of the Transformer on human preference pairs;
4. a final supervised pass at a lowered learning rate;
5. fitting the CLS II metadata classifier on the same labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.cls1 import ValidationClassifier, ValidationConfig
from repro.core.cls2 import ImprovementClassifier
from repro.core.cls3 import ParserSelector
from repro.core.config import AdaParseConfig, FT_VARIANT_CONFIG, LLM_VARIANT_CONFIG
from repro.core.engine import AdaParseFT, AdaParseLLM
from repro.documents.corpus import Corpus
from repro.ml.datasets import QualityDataset, build_quality_dataset
from repro.ml.dpo import DPOConfig, DPOTrainer, PreferencePair
from repro.ml.fasttext import FastTextConfig
from repro.ml.pretrain import PretrainConfig, pretrain_encoder_variant
from repro.ml.quality_model import FineTuneConfig, ParserQualityPredictor
from repro.ml.transformer import TransformerConfig, TransformerEncoder
from repro.parsers.registry import ParserRegistry


@dataclass(frozen=True)
class TrainerSettings:
    """Hyper-parameters of the end-to-end training pipeline.

    The defaults are sized for the scaled-down reproduction corpora used by
    the tests and benchmarks (hundreds of documents); a larger campaign can
    raise the encoder size and epoch counts.
    """

    label_pages: int | None = 3
    encoder_config: TransformerConfig = field(
        default_factory=lambda: TransformerConfig(
            vocab_size=2048,
            max_length=96,
            d_model=48,
            n_heads=4,
            n_layers=2,
            d_ff=96,
            lora_rank=4,
        )
    )
    finetune_config: FineTuneConfig = field(
        default_factory=lambda: FineTuneConfig(n_epochs=6, lora_only=False)
    )
    refinement_config: FineTuneConfig = field(
        default_factory=lambda: FineTuneConfig(n_epochs=2, learning_rate=5e-4, lora_only=True)
    )
    fasttext_config: FastTextConfig = field(default_factory=FastTextConfig)
    pretrain: bool = True
    pretrain_corpus: str = "scientific"
    pretrain_config: PretrainConfig = field(default_factory=lambda: PretrainConfig(n_sentences=800, n_epochs=1))
    dpo_config: DPOConfig = field(default_factory=lambda: DPOConfig(n_epochs=2))
    calibrate_cls1: bool = False
    candidate_parsers: tuple[str, ...] = ("pymupdf", "nougat")


@dataclass
class TrainingArtifacts:
    """Everything produced while training an engine (useful for analysis)."""

    dataset: QualityDataset
    predictor: ParserQualityPredictor
    improvement_classifier: ImprovementClassifier
    validator: ValidationClassifier
    dpo_trainer: DPOTrainer | None = None


class AdaParseTrainer:
    """Trains AdaParse (FT) and AdaParse (LLM) engines from a corpus."""

    def __init__(self, registry: ParserRegistry, settings: TrainerSettings | None = None) -> None:
        self.registry = registry
        self.settings = settings or TrainerSettings()
        self.artifacts: TrainingArtifacts | None = None

    # ------------------------------------------------------------------ #
    # Shared pieces
    # ------------------------------------------------------------------ #
    def build_dataset(self, corpus: Corpus) -> QualityDataset:
        """Label a corpus with per-parser BLEU (the supervised signal)."""
        return build_quality_dataset(
            corpus, self.registry, default_parser="pymupdf", label_pages=self.settings.label_pages
        )

    def _fit_support_models(
        self, dataset: QualityDataset
    ) -> tuple[ValidationClassifier, ImprovementClassifier]:
        validator = ValidationClassifier(ValidationConfig())
        if self.settings.calibrate_cls1:
            from repro.core.cls1 import calibrate_validation_threshold

            default_index = dataset.parser_names.index("pymupdf")
            config = calibrate_validation_threshold(
                dataset.texts, dataset.targets[:, default_index]
            )
            validator = ValidationClassifier(config)
        improvement = ImprovementClassifier()
        improvement.fit(dataset.metadatas, dataset.parser_names, dataset.targets)
        return validator, improvement

    # ------------------------------------------------------------------ #
    # Variant training
    # ------------------------------------------------------------------ #
    def train_ft(
        self,
        corpus: Corpus,
        config: AdaParseConfig | None = None,
        dataset: QualityDataset | None = None,
    ) -> AdaParseFT:
        """Train the fastText-based engine variant."""
        settings = self.settings
        dataset = dataset or self.build_dataset(corpus)
        predictor = ParserQualityPredictor(
            dataset.parser_names, backend="fasttext", fasttext_config=settings.fasttext_config
        )
        predictor.fit(dataset.texts, dataset.targets)
        validator, improvement = self._fit_support_models(dataset)
        selector = ParserSelector(
            predictor, default_parser="pymupdf", candidate_parsers=list(settings.candidate_parsers)
        )
        self.artifacts = TrainingArtifacts(
            dataset=dataset,
            predictor=predictor,
            improvement_classifier=improvement,
            validator=validator,
        )
        return AdaParseFT(
            registry=self.registry,
            selector=selector,
            config=config or FT_VARIANT_CONFIG,
            validator=validator,
            improvement_classifier=improvement,
        )

    def train_llm(
        self,
        corpus: Corpus,
        config: AdaParseConfig | None = None,
        dataset: QualityDataset | None = None,
        preference_pairs: Sequence[PreferencePair] | None = None,
    ) -> AdaParseLLM:
        """Train the Transformer-based engine variant (optionally with DPO)."""
        settings = self.settings
        dataset = dataset or self.build_dataset(corpus)
        encoder = TransformerEncoder(settings.encoder_config, name="adaparse-llm")
        if settings.pretrain:
            pretrain_encoder_variant(encoder, settings.pretrain_corpus, settings.pretrain_config)
        predictor = ParserQualityPredictor(
            dataset.parser_names,
            backend="transformer",
            encoder=encoder,
            finetune_config=settings.finetune_config,
        )
        predictor.fit(dataset.texts, dataset.targets)
        dpo_trainer: DPOTrainer | None = None
        if preference_pairs:
            dpo_trainer = DPOTrainer(encoder, settings.dpo_config)
            dpo_trainer.train(list(preference_pairs))
            # Stage 3: re-fine-tune the regression head (and adapters) at a
            # lowered learning rate on the supervised data.
            predictor.finetune_config = settings.refinement_config
            predictor.fit(
                dataset.texts,
                dataset.targets,
                learning_rate=settings.refinement_config.learning_rate,
                n_epochs=settings.refinement_config.n_epochs,
            )
        validator, improvement = self._fit_support_models(dataset)
        selector = ParserSelector(
            predictor, default_parser="pymupdf", candidate_parsers=list(settings.candidate_parsers)
        )
        self.artifacts = TrainingArtifacts(
            dataset=dataset,
            predictor=predictor,
            improvement_classifier=improvement,
            validator=validator,
            dpo_trainer=dpo_trainer,
        )
        return AdaParseLLM(
            registry=self.registry,
            selector=selector,
            config=config or LLM_VARIANT_CONFIG,
            validator=validator,
            improvement_classifier=improvement,
        )
