"""AdaParse core: hierarchical parser selection under a compute budget.

This package implements the paper's primary contribution (Sections 4–5):

* :mod:`repro.core.cls1` — CLS I, the rule-based validity check on cheap
  aggregate features of the extracted text.
* :mod:`repro.core.cls2` — CLS II, the metadata-driven classifier that decides
  whether another parser is likely to improve on the extracted text.
* :mod:`repro.core.cls3` — CLS III, the LLM-based selector that predicts which
  parser yields the most accurate output.
* :mod:`repro.core.budget` — the α-constrained optimisation of Appendix C
  (which documents get the expensive parser, per batch).
* :mod:`repro.core.engine` — the two engine variants, AdaParse (FT) and
  AdaParse (LLM), exposed with the same interface as ordinary parsers.
* :mod:`repro.core.training` — end-to-end training of an engine from a corpus
  (labels, supervised fine-tuning, DPO post-training).
"""

from __future__ import annotations

from repro.core.config import AdaParseConfig
from repro.core.budget import BudgetPlan, alpha_for_budget, select_within_budget
from repro.core.cls1 import ValidationClassifier, ValidationConfig
from repro.core.cls2 import ImprovementClassifier
from repro.core.cls3 import ParserSelector
from repro.core.engine import (
    AdaParseEngine,
    AdaParseFT,
    AdaParseLLM,
    RoutingDecision,
    RoutingSummary,
    build_default_engine,
)

__all__ = [
    "AdaParseConfig",
    "BudgetPlan",
    "alpha_for_budget",
    "select_within_budget",
    "ValidationClassifier",
    "ValidationConfig",
    "ImprovementClassifier",
    "ParserSelector",
    "AdaParseEngine",
    "AdaParseFT",
    "AdaParseLLM",
    "RoutingDecision",
    "RoutingSummary",
    "build_default_engine",
]
