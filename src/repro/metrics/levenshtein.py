"""Levenshtein (edit) distance with a vectorised and an optionally banded DP.

The paper discusses edit distance as the traditional character-level metric
and notes that it is computationally prohibitive for ultra-long parses.  The
implementation here vectorises the inner loop with numpy and supports a
Ukkonen-style band so the character-accuracy metric stays tractable on long
page texts.
"""

from __future__ import annotations

import numpy as np


def levenshtein_distance(a: str, b: str, band: int | None = None) -> int:
    """Edit distance between two strings.

    Dispatches to Myers' bit-parallel algorithm (exact, ``O(n·m/w)``) when no
    band is requested, and to a numpy-vectorised banded dynamic program
    otherwise.

    Parameters
    ----------
    a, b:
        Input strings.
    band:
        Optional half-width of a diagonal band.  With a band the result is
        exact whenever the true distance is at most ``band`` (plus the length
        difference); otherwise it is an upper-bound approximation.  Use
        ``None`` for the exact unbanded computation.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if band is None:
        return _myers_distance(a, b)
    return _banded_distance(a, b, band)


def _myers_distance(a: str, b: str) -> int:
    """Myers/Hyyrö bit-parallel edit distance (exact, unit costs).

    The pattern's character positions are encoded as bits of arbitrary-
    precision integers, so each text character is processed with a constant
    number of big-integer operations.
    """
    # Use the shorter string as the pattern (bit vector width).
    if len(a) > len(b):
        a, b = b, a
    m = len(a)
    mask = (1 << m) - 1
    high_bit = 1 << (m - 1)
    peq: dict[str, int] = {}
    for i, ch in enumerate(a):
        peq[ch] = peq.get(ch, 0) | (1 << i)
    vp = mask
    vn = 0
    score = m
    for ch in b:
        eq = peq.get(ch, 0)
        xv = eq | vn
        xh = (((eq & vp) + vp) ^ vp) | eq
        hp = vn | (~(xh | vp) & mask)
        hn = vp & xh
        if hp & high_bit:
            score += 1
        elif hn & high_bit:
            score -= 1
        hp = ((hp << 1) | 1) & mask
        hn = (hn << 1) & mask
        vp = hn | (~(xv | hp) & mask)
        vn = hp & xv
    return score


def _banded_distance(a: str, b: str, band: int) -> int:
    """Banded DP distance (numpy-vectorised rows).

    Notes
    -----
    Row ``i`` of the DP is computed with numpy.  The insertion recurrence
    ``current[j] = min(candidate[j], current[j-1] + 1)`` is a prefix-minimum:
    ``current[j] = j + min_{k<=j}(d[k] - k)`` where ``d`` is the row of
    deletion/substitution candidates, so it vectorises with
    ``np.minimum.accumulate``.
    """
    # Keep the inner (vectorised) dimension as the shorter string.
    if len(b) > len(a):
        a, b = b, a
    n, m = len(a), len(b)
    band = max(band, abs(n - m))
    b_codes = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32).astype(np.int64)
    previous = np.arange(m + 1, dtype=np.int64)
    big = np.int64(n + m + 1)
    js = np.arange(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        a_code = ord(a[i - 1])
        substitution_cost = (b_codes != a_code).astype(np.int64)
        # candidate[j-1] = min(previous[j] + 1, previous[j-1] + cost_j), j = 1..m
        candidate = np.minimum(previous[1:] + 1, previous[:-1] + substitution_cost)
        lo = max(1, i - band)
        hi = min(m, i + band)
        if lo > 1:
            candidate[: lo - 1] = big
        if hi < m:
            candidate[hi:] = big
        d = np.empty(m + 1, dtype=np.int64)
        d[0] = i
        d[1:] = candidate
        running = np.minimum.accumulate(d - js)
        current = js + running
        previous = current
    return int(previous[m])


def normalized_similarity(a: str, b: str, band: int | None = None) -> float:
    """Normalised similarity ``1 - distance / max(len(a), len(b))`` in [0, 1]."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    distance = levenshtein_distance(a, b, band=band)
    return max(0.0, 1.0 - distance / max(len(a), len(b)))


def levenshtein_distance_reference(a: str, b: str) -> int:
    """Plain-Python reference implementation (used by tests as ground truth)."""
    n, m = len(a), len(b)
    if n == 0:
        return m
    if m == 0:
        return n
    previous = list(range(m + 1))
    for i in range(1, n + 1):
        current = [i] + [0] * m
        for j in range(1, m + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            current[j] = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
        previous = current
    return previous[m]
