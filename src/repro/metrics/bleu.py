"""BLEU score (Papineni et al., 2002) for parser output vs ground truth.

The paper uses BLEU as its primary word-level accuracy proxy (and as the
regression target of the selector model), while acknowledging in Section 2.2
that it correlates with but does not fully determine human preference.  This
implementation follows the standard definition: clipped n-gram precision up to
``max_n`` with uniform weights, a brevity penalty, and optional add-one
smoothing for the higher orders (Lin & Och's smoothing-1), which keeps scores
informative on shorter segments such as single pages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.metrics.tokenize import clipped_ngram_matches, word_tokenize


@dataclass(frozen=True)
class BleuStatistics:
    """Sufficient statistics of a BLEU computation (summable across segments)."""

    matches: tuple[int, ...]
    totals: tuple[int, ...]
    candidate_length: int
    reference_length: int

    def __add__(self, other: "BleuStatistics") -> "BleuStatistics":
        if len(self.matches) != len(other.matches):
            raise ValueError("cannot add BLEU statistics of different orders")
        return BleuStatistics(
            matches=tuple(a + b for a, b in zip(self.matches, other.matches)),
            totals=tuple(a + b for a, b in zip(self.totals, other.totals)),
            candidate_length=self.candidate_length + other.candidate_length,
            reference_length=self.reference_length + other.reference_length,
        )

    def score(self, smooth: bool = True) -> float:
        """Compute BLEU from the accumulated statistics."""
        return _score_from_counts(
            self.matches, self.totals, self.candidate_length, self.reference_length, smooth
        )


def _score_from_counts(
    matches: Sequence[int],
    totals: Sequence[int],
    candidate_length: int,
    reference_length: int,
    smooth: bool,
) -> float:
    if candidate_length == 0 or reference_length == 0:
        return 0.0
    log_precision_sum = 0.0
    max_n = len(matches)
    for n in range(max_n):
        m, t = matches[n], totals[n]
        if t == 0:
            return 0.0
        if m == 0:
            if not smooth:
                return 0.0
            m_eff, t_eff = 1.0, float(t + 1)
        elif smooth and n > 0:
            m_eff, t_eff = float(m + 1), float(t + 1)
        else:
            m_eff, t_eff = float(m), float(t)
        log_precision_sum += math.log(m_eff / t_eff)
    geometric_mean = math.exp(log_precision_sum / max_n)
    if candidate_length >= reference_length:
        brevity_penalty = 1.0
    else:
        brevity_penalty = math.exp(1.0 - reference_length / candidate_length)
    return float(brevity_penalty * geometric_mean)


def bleu_statistics(candidate: str, reference: str, max_n: int = 4) -> BleuStatistics:
    """Per-segment BLEU sufficient statistics."""
    cand_tokens = word_tokenize(candidate)
    ref_tokens = word_tokenize(reference)
    matches: list[int] = []
    totals: list[int] = []
    for n in range(1, max_n + 1):
        m, t = clipped_ngram_matches(cand_tokens, ref_tokens, n)
        matches.append(m)
        totals.append(t)
    return BleuStatistics(
        matches=tuple(matches),
        totals=tuple(totals),
        candidate_length=len(cand_tokens),
        reference_length=len(ref_tokens),
    )


def bleu_score(candidate: str, reference: str, max_n: int = 4, smooth: bool = True) -> float:
    """BLEU of a candidate text against a single reference, in ``[0, 1]``."""
    return bleu_statistics(candidate, reference, max_n=max_n).score(smooth=smooth)


def corpus_bleu(
    candidates: Sequence[str], references: Sequence[str], max_n: int = 4, smooth: bool = True
) -> float:
    """Corpus-level BLEU: statistics pooled over segments before scoring."""
    if len(candidates) != len(references):
        raise ValueError("candidates and references must have equal length")
    if not candidates:
        return 0.0
    pooled: BleuStatistics | None = None
    for cand, ref in zip(candidates, references):
        stats = bleu_statistics(cand, ref, max_n=max_n)
        pooled = stats if pooled is None else pooled + stats
    assert pooled is not None
    return pooled.score(smooth=smooth)
