"""Text-quality metrics used to compare parser output against ground truth.

The paper evaluates parsers with document-level coverage, word-level BLEU and
ROUGE, character-level accuracy (CAR), and two preference-derived measures
(win rate and accepted tokens).  All of them are implemented here from
scratch; see the individual modules for definitions and caveats.
"""

from __future__ import annotations

from repro.metrics.tokenize import normalize_text, word_tokenize, ngrams
from repro.metrics.levenshtein import levenshtein_distance, normalized_similarity
from repro.metrics.bleu import bleu_score, corpus_bleu
from repro.metrics.rouge import rouge_l, rouge_n
from repro.metrics.car import character_accuracy_rate
from repro.metrics.coverage import page_coverage_rate
from repro.metrics.accepted_tokens import accepted_token_rate
from repro.metrics.winrate import normalized_win_rates
from repro.metrics.bundle import MetricBundle, evaluate_parse

__all__ = [
    "normalize_text",
    "word_tokenize",
    "ngrams",
    "levenshtein_distance",
    "normalized_similarity",
    "bleu_score",
    "corpus_bleu",
    "rouge_l",
    "rouge_n",
    "character_accuracy_rate",
    "page_coverage_rate",
    "accepted_token_rate",
    "normalized_win_rates",
    "MetricBundle",
    "evaluate_parse",
]
