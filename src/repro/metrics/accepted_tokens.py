"""Accepted tokens (AT): the paper's goodput-oriented quality measure.

A document's parsed tokens are "accepted" when the parse quality exceeds a
critical BLEU threshold — the idea being that text below the threshold would
be rejected (or be harmful) as LLM training data.  The accepted-token rate of
a parser over a corpus is the fraction of ground-truth tokens that belong to
documents whose parse clears the threshold.
"""

from __future__ import annotations

from typing import Sequence

#: Default acceptance threshold, chosen so that roughly the top ~three
#: quarters of born-digital parses are accepted (matching the ≈70–77 % AT
#: rates reported in Table 1 of the paper).
DEFAULT_BLEU_THRESHOLD = 0.35


def accepted_token_rate(
    bleu_scores: Sequence[float],
    token_counts: Sequence[int],
    threshold: float = DEFAULT_BLEU_THRESHOLD,
) -> float:
    """Fraction of tokens in documents whose BLEU exceeds ``threshold``.

    Parameters
    ----------
    bleu_scores:
        Per-document BLEU of the parse under evaluation.
    token_counts:
        Per-document ground-truth token counts (the tokens "at stake").
    threshold:
        Critical BLEU value a parse must exceed for its tokens to count.
    """
    if len(bleu_scores) != len(token_counts):
        raise ValueError("bleu_scores and token_counts must have equal length")
    total = float(sum(token_counts))
    if total <= 0:
        return 0.0
    accepted = sum(
        count for score, count in zip(bleu_scores, token_counts) if score >= threshold
    )
    return accepted / total


def accepted_tokens(
    bleu_scores: Sequence[float],
    token_counts: Sequence[int],
    threshold: float = DEFAULT_BLEU_THRESHOLD,
) -> int:
    """Absolute number of accepted tokens (the paper's goodput numerator)."""
    if len(bleu_scores) != len(token_counts):
        raise ValueError("bleu_scores and token_counts must have equal length")
    return int(
        sum(count for score, count in zip(bleu_scores, token_counts) if score >= threshold)
    )
