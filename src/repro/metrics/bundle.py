"""Bundled per-document quality evaluation.

:func:`evaluate_parse` computes every metric the paper's tables report for a
single (ground truth, parse) pair; the evaluation harness aggregates bundles
over a corpus and parser set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrics.bleu import bleu_score
from repro.metrics.car import character_accuracy_rate
from repro.metrics.coverage import page_coverage_rate
from repro.metrics.rouge import rouge_n
from repro.metrics.tokenize import word_tokenize


@dataclass(frozen=True)
class MetricBundle:
    """Quality metrics of one parse of one document.

    Attributes
    ----------
    coverage:
        Fraction of ground-truth pages covered by the parse.
    bleu:
        Document-level BLEU (4-gram, smoothed).
    rouge:
        ROUGE-1 F1 (the paper's "ROUGE" column).
    car:
        Character accuracy rate.
    n_ground_truth_tokens:
        Number of ground-truth word tokens (weight for accepted-token rates).
    """

    coverage: float
    bleu: float
    rouge: float
    car: float
    n_ground_truth_tokens: int

    def as_dict(self) -> dict[str, float]:
        """Dictionary form (used by the reporting layer)."""
        return {
            "coverage": self.coverage,
            "bleu": self.bleu,
            "rouge": self.rouge,
            "car": self.car,
            "n_ground_truth_tokens": float(self.n_ground_truth_tokens),
        }


def evaluate_parse(
    ground_truth_pages: Sequence[str],
    parsed_pages: Sequence[str],
    car_max_chars: int = 2000,
    car_band: int | None = None,
) -> MetricBundle:
    """Evaluate a parse given per-page ground truth and per-page parser output."""
    ground_truth_text = "\n".join(ground_truth_pages)
    parsed_text = "\n".join(parsed_pages)
    coverage = page_coverage_rate(ground_truth_pages, parsed_pages)
    bleu = bleu_score(parsed_text, ground_truth_text)
    rouge = rouge_n(parsed_text, ground_truth_text, n=1)["f1"]
    car = character_accuracy_rate(
        ground_truth_pages, parsed_pages, max_chars=car_max_chars, band=car_band
    )
    n_tokens = len(word_tokenize(ground_truth_text))
    return MetricBundle(
        coverage=coverage,
        bleu=bleu,
        rouge=rouge,
        car=car,
        n_ground_truth_tokens=n_tokens,
    )
