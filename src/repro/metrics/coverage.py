"""Document coverage: the fraction of pages for which a parser returned text.

The paper's most severe failure mode is a dropped page; coverage captures it
at the document level.  A page counts as covered when the parser produced at
least ``min_fraction`` of the ground-truth page's character mass.
"""

from __future__ import annotations

from typing import Sequence


def page_coverage_rate(
    ground_truth_pages: Sequence[str],
    parsed_pages: Sequence[str],
    min_fraction: float = 0.2,
) -> float:
    """Fraction of ground-truth pages covered by the parse, in ``[0, 1]``."""
    if not ground_truth_pages:
        return 1.0
    covered = 0
    for i, gt_page in enumerate(ground_truth_pages):
        parsed = parsed_pages[i] if i < len(parsed_pages) else ""
        required = max(1, int(min_fraction * len(gt_page.strip())))
        if len(parsed.strip()) >= required:
            covered += 1
    return covered / len(ground_truth_pages)


def dropped_pages(
    ground_truth_pages: Sequence[str],
    parsed_pages: Sequence[str],
    min_fraction: float = 0.2,
) -> list[int]:
    """Indices of pages considered dropped by the parse."""
    missing: list[int] = []
    for i, gt_page in enumerate(ground_truth_pages):
        parsed = parsed_pages[i] if i < len(parsed_pages) else ""
        required = max(1, int(min_fraction * len(gt_page.strip())))
        if len(parsed.strip()) < required:
            missing.append(i)
    return missing
