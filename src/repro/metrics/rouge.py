"""ROUGE metrics (Lin, 2004): n-gram recall/F1 and longest-common-subsequence.

The paper reports a single "ROUGE" column; we follow the common convention of
reporting the ROUGE-1 F1 score there (the harness exposes ROUGE-2 and ROUGE-L
as well).  ROUGE-L uses a memory-light LCS dynamic program vectorised with
numpy over one dimension.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.tokenize import ngrams, word_tokenize


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def rouge_n(candidate: str, reference: str, n: int = 1) -> dict[str, float]:
    """ROUGE-N precision/recall/F1 between candidate and reference texts."""
    cand_tokens = word_tokenize(candidate)
    ref_tokens = word_tokenize(reference)
    cand_grams = ngrams(cand_tokens, n)
    ref_grams = ngrams(ref_tokens, n)
    if not cand_grams or not ref_grams:
        return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
    overlap = sum(min(count, ref_grams[gram]) for gram, count in cand_grams.items())
    precision = overlap / sum(cand_grams.values())
    recall = overlap / sum(ref_grams.values())
    return {"precision": precision, "recall": recall, "f1": _f1(precision, recall)}


def _lcs_length(a: list[str], b: list[str]) -> int:
    """Length of the longest common subsequence of two token lists."""
    if not a or not b:
        return 0
    # Keep the vectorised dimension (b) as the shorter sequence.
    if len(b) > len(a):
        a, b = b, a
    b_arr = np.asarray(b, dtype=object)
    previous = np.zeros(len(b) + 1, dtype=np.int64)
    for token in a:
        match = (b_arr == token)
        diagonal = previous[:-1] + match.astype(np.int64)
        current = np.empty_like(previous)
        current[0] = 0
        # current[j] = max(diagonal[j-1], previous[j], current[j-1]); the last
        # term is a running maximum, resolved with maximum.accumulate.
        current[1:] = np.maximum(diagonal, previous[1:])
        current = np.maximum.accumulate(current)
        previous = current
    return int(previous[-1])


def rouge_l(candidate: str, reference: str, max_tokens: int | None = 4000) -> dict[str, float]:
    """ROUGE-L precision/recall/F1 (LCS-based).

    Parameters
    ----------
    candidate, reference:
        Texts to compare.
    max_tokens:
        Optional truncation applied to both token sequences to bound the DP
        cost on very long documents; ``None`` disables truncation.
    """
    cand_tokens = word_tokenize(candidate)
    ref_tokens = word_tokenize(reference)
    if max_tokens is not None:
        cand_tokens = cand_tokens[:max_tokens]
        ref_tokens = ref_tokens[:max_tokens]
    if not cand_tokens or not ref_tokens:
        return {"precision": 0.0, "recall": 0.0, "f1": 0.0}
    lcs = _lcs_length(cand_tokens, ref_tokens)
    precision = lcs / len(cand_tokens)
    recall = lcs / len(ref_tokens)
    return {"precision": precision, "recall": recall, "f1": _f1(precision, recall)}
