"""Character accuracy rate (CAR).

CAR measures the fraction of ground-truth characters reproduced by the parser:
``1 − edit_distance / len(ground_truth)`` clipped to ``[0, 1]``.  Following
the paper's observation that edit distance on whole multi-page parses is
computationally prohibitive, CAR is computed page by page (aligning the
parser's page outputs with the ground-truth pages) with an optional per-page
character cap and a banded DP, then averaged weighted by page length.
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.levenshtein import levenshtein_distance
from repro.metrics.tokenize import character_tokens


def page_character_accuracy(
    ground_truth: str,
    parsed: str,
    max_chars: int = 2000,
    band: int | None = None,
) -> float:
    """CAR of one page, in ``[0, 1]``."""
    gt = character_tokens(ground_truth)[:max_chars]
    out = character_tokens(parsed)[:max_chars]
    if not gt:
        return 1.0 if not out else 0.0
    if not out:
        return 0.0
    distance = levenshtein_distance(gt, out, band=band)
    return max(0.0, 1.0 - distance / len(gt))


def character_accuracy_rate(
    ground_truth_pages: Sequence[str],
    parsed_pages: Sequence[str],
    max_chars: int = 2000,
    band: int | None = None,
) -> float:
    """Document-level CAR: length-weighted mean of per-page CARs.

    Missing parser pages (shorter output) count as zero-accuracy pages, which
    penalises the page-dropping failure mode in the same way the paper's
    coverage-aware evaluation does.
    """
    if not ground_truth_pages:
        return 1.0
    total_weight = 0.0
    weighted = 0.0
    for i, gt_page in enumerate(ground_truth_pages):
        parsed = parsed_pages[i] if i < len(parsed_pages) else ""
        weight = max(1, len(gt_page))
        accuracy = page_character_accuracy(gt_page, parsed, max_chars=max_chars, band=band)
        weighted += weight * accuracy
        total_weight += weight
    return weighted / total_weight if total_weight else 1.0
