"""Win-rate bookkeeping for pairwise preference tournaments.

The preference study presents users with two parser outputs for the same page
and records the preferred one (or indifference).  Since each parser appears in
a different number of pairings, the paper reports *normalised* win rates:
wins divided by the number of decided comparisons the parser took part in.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass
class PairwiseOutcome:
    """One recorded comparison between two parsers on one document page."""

    doc_id: str
    parser_a: str
    parser_b: str
    winner: str | None  # parser name, or None for "neither"

    def __post_init__(self) -> None:
        if self.winner is not None and self.winner not in (self.parser_a, self.parser_b):
            raise ValueError("winner must be one of the two compared parsers (or None)")


@dataclass
class WinRateTally:
    """Accumulates wins and appearances per parser."""

    wins: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    decided_appearances: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    appearances: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    indifferent: int = 0
    total: int = 0

    def add(self, outcome: PairwiseOutcome) -> None:
        """Record one comparison."""
        self.total += 1
        self.appearances[outcome.parser_a] += 1
        self.appearances[outcome.parser_b] += 1
        if outcome.winner is None:
            self.indifferent += 1
            return
        self.decided_appearances[outcome.parser_a] += 1
        self.decided_appearances[outcome.parser_b] += 1
        self.wins[outcome.winner] += 1

    def win_rate(self, parser: str) -> float:
        """Normalised win rate of one parser (wins / decided appearances)."""
        decided = self.decided_appearances.get(parser, 0)
        if decided == 0:
            return 0.0
        return self.wins.get(parser, 0) / decided

    def decisiveness(self) -> float:
        """Fraction of comparisons where the user expressed a preference."""
        if self.total == 0:
            return 0.0
        return 1.0 - self.indifferent / self.total


def normalized_win_rates(outcomes: Iterable[PairwiseOutcome]) -> dict[str, float]:
    """Normalised win rate per parser over a set of comparisons."""
    tally = WinRateTally()
    for outcome in outcomes:
        tally.add(outcome)
    parsers = set(tally.appearances.keys())
    return {p: tally.win_rate(p) for p in sorted(parsers)}


def consensus_rate(outcomes_by_triplet: Mapping[tuple[str, str, str], list[str | None]]) -> float:
    """Agreement rate among repeated judgements of the same (page, A, B) triplet.

    The paper reports that 82.2 % of triplets shown to multiple users received
    the same choice; this computes that statistic given the raw judgements.
    """
    repeated = {k: v for k, v in outcomes_by_triplet.items() if len(v) >= 2}
    if not repeated:
        return 1.0
    agreeing = 0
    for judgements in repeated.values():
        counts: dict[str | None, int] = defaultdict(int)
        for j in judgements:
            counts[j] += 1
        majority = max(counts.values())
        if majority == len(judgements):
            agreeing += 1
    return agreeing / len(repeated)
