"""Tokenisation and normalisation shared by the word-level metrics."""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, Sequence

_WORD_RE = re.compile(r"[^\s]+")
_WHITESPACE_RE = re.compile(r"\s+")


def normalize_text(text: str, lowercase: bool = True, collapse_whitespace: bool = True) -> str:
    """Normalise text before metric computation.

    Parser outputs differ in incidental formatting (line breaks, casing of
    headings, runs of spaces); normalisation keeps the metrics focused on
    content rather than layout.
    """
    out = text
    if collapse_whitespace:
        out = _WHITESPACE_RE.sub(" ", out).strip()
    if lowercase:
        out = out.lower()
    return out


def word_tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split text into word tokens (whitespace-delimited, optional lowercase)."""
    if not text:
        return []
    norm = normalize_text(text, lowercase=lowercase)
    return _WORD_RE.findall(norm)


def ngrams(tokens: Sequence[str], n: int) -> Counter:
    """Multiset of n-grams of a token sequence."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return Counter()
    return Counter(tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1))


def clipped_ngram_matches(candidate: Sequence[str], reference: Sequence[str], n: int) -> tuple[int, int]:
    """Clipped n-gram matches and total candidate n-grams (BLEU's core count)."""
    cand = ngrams(candidate, n)
    ref = ngrams(reference, n)
    matches = sum(min(count, ref[gram]) for gram, count in cand.items())
    total = max(0, len(candidate) - n + 1)
    return matches, total


def character_tokens(text: str, lowercase: bool = False) -> str:
    """Normalise text for character-level metrics (collapse whitespace runs)."""
    return normalize_text(text, lowercase=lowercase, collapse_whitespace=True)


def unique_tokens(texts: Iterable[str]) -> list[str]:
    """Sorted vocabulary of all word tokens appearing in ``texts``."""
    vocab: set[str] = set()
    for text in texts:
        vocab.update(word_tokenize(text))
    return sorted(vocab)
