"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that the package can be installed in editable mode on minimal offline
environments that lack the ``wheel`` package (legacy ``setup.py develop``
path via ``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
