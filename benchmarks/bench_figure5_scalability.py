"""Figure 5: throughput scalability of all parsers and AdaParse, 1–128 nodes.

Paper reference: PyMuPDF reaches ≈315 PDF/s before the shared filesystem
limits further scaling; pypdf plateaus around 100 nodes; Marker stops scaling
after ~10 nodes (≈0.1 PDF/s); Nougat reaches ≈8 PDF/s on 128 nodes; the
AdaParse variants land between extraction and ViT parsing with ≈17× Nougat's
single-node throughput.  Absolute numbers differ on the simulator; the shape
assertions below encode the qualitative claims.
"""

from __future__ import annotations

from repro.evaluation.figures import figure5_scalability, throughput_ratio_summary
from repro.evaluation.reporting import print_table

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_figure5_scalability(benchmark, registry, measured_store):
    series = benchmark.pedantic(
        lambda: figure5_scalability(registry, node_counts=NODE_COUNTS, docs_per_node=100),
        rounds=1,
        iterations=1,
    )
    print_table(series.to_table(), precision=2)
    print("single-node throughput relative to Nougat:", throughput_ratio_summary(series))
    measured_store.record_table("FIGURE5", series.to_table(), precision=2)
    measured_store.record_mapping(
        "FIGURE5",
        throughput_ratio_summary(series),
        title="Single-node throughput relative to Nougat",
        append=True,
    )

    # Extraction is fastest everywhere; ViT parsers are slowest.
    assert series.throughput("pymupdf", 1) > series.throughput("pypdf", 1)
    assert series.throughput("pypdf", 1) > series.throughput("nougat", 1)
    assert series.throughput("marker", 128) < series.throughput("nougat", 128)

    # Nougat scales roughly linearly; Marker saturates early; PyMuPDF is
    # eventually limited by the shared filesystem.
    assert series.throughput("nougat", 128) / series.throughput("nougat", 1) > 40
    assert series.throughput("marker", 128) / series.throughput("marker", 1) < 16
    assert series.throughput("pymupdf", 128) / series.throughput("pymupdf", 16) < 4

    # AdaParse sits between extraction and ViT parsing, well above Nougat.
    ratios = throughput_ratio_summary(series)
    assert ratios["adaparse_ft"] > 5
    assert ratios["adaparse_ft"] >= ratios["adaparse_llm"]
    assert series.throughput("adaparse_ft", 128) < series.throughput("pymupdf", 128)
