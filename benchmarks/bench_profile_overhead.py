"""Micro-benchmark: the cost of phase attribution and the stack sampler.

Two measurements, both reported as higher-is-better ratios against the
same parse-dominated pipeline run with *all* profiling off:

* **phases_relative_throughput** — phase attribution enabled
  (``PhaseTimer`` on the hot path, per-phase histogram observations) vs
  ``profiling.set_phases_enabled(False)``.  The PR promise is **< 5%
  overhead**, asserted here.
* **sampler_relative_throughput** — phase attribution *plus* a live
  :class:`~repro.obs.profiling.StackSampler` at the default 10ms
  interval vs everything off.  Budget: **< 15%** (the sampler walks
  every thread's stack on each tick, so it is priced separately and is
  opt-in at runtime).

Standalone (the CI regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_profile_overhead.py --json BENCH_profile.json

``benchmarks/check_regression.py`` compares the ``metrics`` block
against the committed baseline in
``benchmarks/baselines/BENCH_profile.json``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from time import perf_counter

from repro.documents.corpus import CorpusConfig, build_corpus
from repro.obs import profiling
from repro.pipeline import ParsePipeline, request_for_documents

N_DOCUMENTS = 600
BATCH_SIZE = 50
ROUNDS = 5
MAX_PHASES_OVERHEAD = 0.05  # the PR promise: phase timers < 5%
MAX_SAMPLER_OVERHEAD = 0.15  # opt-in sampler budget: < 15%


def _time_pipeline(pipeline: ParsePipeline, documents, mode: str) -> float:
    """One timed run.  mode: 'off' | 'phases' | 'sampler'."""
    profiling.set_phases_enabled(mode != "off")
    request = request_for_documents(
        "pymupdf", documents, batch_size=BATCH_SIZE, cache="off"
    )
    sampler = profiling.StackSampler().start() if mode == "sampler" else None
    try:
        started = perf_counter()
        pipeline.run(request)
        return perf_counter() - started
    finally:
        if sampler is not None:
            sampler.stop()


def run_overhead_sweep(
    n_documents: int = N_DOCUMENTS, registry=None
) -> dict[str, float]:
    """Off/phases/sampler passes; best-of-N per mode (and asserts)."""
    corpus = build_corpus(
        CorpusConfig(n_documents=n_documents, seed=61, min_pages=4, max_pages=10)
    )
    documents = list(corpus)
    pipeline = ParsePipeline(registry)
    times: dict[str, list[float]] = {"off": [], "phases": [], "sampler": []}
    try:
        # One warm-up pass, then interleave the modes each round and keep
        # the per-mode minimum, so machine-load drift hits every mode
        # alike instead of masquerading as profiling overhead.
        _time_pipeline(pipeline, documents, "phases")
        for _ in range(ROUNDS):
            for mode in times:
                times[mode].append(_time_pipeline(pipeline, documents, mode))
    finally:
        profiling.set_phases_enabled(True)

    off_s = min(times["off"])
    phases_s = min(times["phases"])
    sampler_s = min(times["sampler"])

    phases_overhead = phases_s / off_s - 1.0
    sampler_overhead = sampler_s / off_s - 1.0
    assert phases_overhead < MAX_PHASES_OVERHEAD, (
        f"phase attribution adds {phases_overhead:.1%} to the pipeline "
        f"(phases {phases_s:.3f}s vs off {off_s:.3f}s); "
        f"the budget is {MAX_PHASES_OVERHEAD:.0%}"
    )
    assert sampler_overhead < MAX_SAMPLER_OVERHEAD, (
        f"the stack sampler adds {sampler_overhead:.1%} to the pipeline "
        f"(sampler {sampler_s:.3f}s vs off {off_s:.3f}s); "
        f"the budget is {MAX_SAMPLER_OVERHEAD:.0%}"
    )
    return {
        "off_s": off_s,
        "phases_s": phases_s,
        "sampler_s": sampler_s,
        "phases_overhead": phases_overhead,
        "sampler_overhead": sampler_overhead,
        "phases_relative_throughput": off_s / phases_s,
        "sampler_relative_throughput": off_s / sampler_s,
    }


def row_to_metrics(row: dict[str, float]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    Same-machine ratios against the profiling-off run (≈ 1.0 when the
    instrumentation is cheap), higher-is-better by construction.
    """
    return {
        "phases_relative_throughput": float(row["phases_relative_throughput"]),
        "sampler_relative_throughput": float(row["sampler_relative_throughput"]),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=N_DOCUMENTS)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write {'benchmark', 'metrics'} JSON for check_regression.py",
    )
    args = parser.parse_args()
    row = run_overhead_sweep(n_documents=args.documents)
    print(
        f"pipeline: off {row['off_s']:.3f}s, "
        f"phases {row['phases_s']:.3f}s ({row['phases_overhead']:+.1%}), "
        f"sampler {row['sampler_s']:.3f}s ({row['sampler_overhead']:+.1%})"
    )
    if args.json:
        payload = {"benchmark": "profile_overhead", "metrics": row_to_metrics(row)}
        Path(args.json).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
