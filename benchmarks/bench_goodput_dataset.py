"""Goodput of assembled datasets: accepted tokens per resource unit (extension).

The introduction of the paper argues that the right metric for a parsing
campaign is goodput — accepted textual tokens generated per resource unit —
rather than raw documents per second.  This benchmark assembles an LLM-training
dataset (filter → dedup → shard accounting) from the test corpus with three
strategies and compares their goodput:

* PyMuPDF on every document (cheap, some documents unusable),
* Nougat on every document (expensive, high quality),
* AdaParse routing (cheap parse everywhere, ViT re-parse on an α-budgeted
  subset).
"""

from __future__ import annotations

from repro.datasets.assembly import DatasetBuildConfig, DatasetBuilder
from repro.datasets.tokens import goodput_table
from repro.evaluation.reporting import print_table


def test_goodput_of_assembled_datasets(benchmark, experiment_context, measured_store):
    context = experiment_context
    corpus = context.splits["test"]
    config = DatasetBuildConfig(min_tokens=20, quality_threshold=0.35)

    def build_all():
        builders = {
            "pymupdf": DatasetBuilder(context.registry.get("pymupdf"), config),
            "nougat": DatasetBuilder(context.registry.get("nougat"), config),
            "adaparse_llm": DatasetBuilder(context.engine_llm, config),
        }
        return {name: builder.build(corpus) for name, builder in builders.items()}

    reports = benchmark.pedantic(build_all, rounds=1, iterations=1)
    accounts = {name: report.token_account for name, report in reports.items()}
    table = goodput_table(accounts)
    print_table(table, precision=1)
    measured_store.record_table("GOODPUT", table)

    adaparse = accounts["adaparse_llm"]
    pymupdf = accounts["pymupdf"]
    nougat = accounts["nougat"]

    # AdaParse accepts at least as many tokens as extraction alone...
    assert adaparse.n_accepted_tokens >= pymupdf.n_accepted_tokens
    # ...while spending far less GPU time than parsing everything with the ViT.
    assert adaparse.gpu_seconds < 0.5 * nougat.gpu_seconds
    # Goodput per node-hour: AdaParse beats the all-ViT strategy.
    assert adaparse.goodput_per_node_hour() > nougat.goodput_per_node_hour()
    # Every strategy accepts a meaningful share of its tokens.
    assert all(account.acceptance_rate > 0.3 for account in accounts.values())
