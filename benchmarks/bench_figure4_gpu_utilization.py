"""Figure 4: per-GPU utilisation of the ViT-parser workload (Nsys stand-in).

Paper reference: profiling shows the GPU-resident parser keeping all four
A100s busy once the model is persisted across tasks (the warm-start
modification of Parsl), with utilisation collapsing when weights are reloaded
per task.
"""

from __future__ import annotations

from repro.evaluation.figures import figure4_gpu_utilization
from repro.evaluation.reporting import print_table
from repro.hpc.campaign import CampaignConfig


def test_figure4_gpu_utilization(benchmark, registry, measured_store):
    profile = benchmark.pedantic(
        lambda: figure4_gpu_utilization(registry, parser_name="nougat", n_documents=150),
        rounds=1,
        iterations=1,
    )
    print_table(profile.to_table(), precision=3)
    means = profile.profile.per_gpu_means()
    assert len(means) == 4
    assert all(v > 0.5 for v in means.values())

    cold = figure4_gpu_utilization(
        registry,
        parser_name="nougat",
        n_documents=150,
        campaign_config=CampaignConfig(n_nodes=1, warm_start=False),
    )
    print(
        f"warm-start mean GPU util = {profile.profile.mean_utilization():.3f}, "
        f"cold-start = {cold.profile.mean_utilization():.3f}, "
        f"model loads: {profile.campaign.model_loads} vs {cold.campaign.model_loads}"
    )
    measured_store.record_table("FIGURE4", profile.to_table(), precision=3)
    measured_store.record_mapping(
        "FIGURE4",
        {
            "warm-start mean GPU utilisation": round(profile.profile.mean_utilization(), 3),
            "cold-start mean GPU utilisation": round(cold.profile.mean_utilization(), 3),
            "warm-start model loads": profile.campaign.model_loads,
            "cold-start model loads": cold.campaign.model_loads,
        },
        append=True,
    )
    assert profile.campaign.model_loads < cold.campaign.model_loads
    assert profile.campaign.throughput_docs_per_s > cold.campaign.throughput_docs_per_s
