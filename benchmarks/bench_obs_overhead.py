"""Micro-benchmark: the cost of ``repro.obs`` on the instrumented hot path.

Two measurements, both reported as higher-is-better ratios:

* **pipeline_relative_throughput** — the same parse-dominated pipeline
  run (per-batch spans, backend latency histograms, in-flight gauges on
  every batch) timed with observability enabled vs fully disabled
  (``metrics.set_enabled(False)`` + ``tracing.set_enabled(False)``).
  ``disabled_time / enabled_time`` — 1.0 means free, 0.9 means 10%
  overhead.  The tentpole promise is **< 10% overhead on real parse
  work**, asserted here.  (A warm-cache pass is deliberately *not* the
  assertion target: at ~µs/document its denominator is so small that
  the ratio measures timer noise, not instrumentation cost.)
* **instrument_relative_throughput** — a tight counter+histogram loop,
  enabled vs disabled, measuring the primitive cost the registry's
  ``enabled`` fast path is designed to bound.  Informational (a raw
  metric update is orders of magnitude cheaper than a parse); gated
  loosely so a pathological slowdown (e.g. lock on the disabled path)
  still trips CI.

Standalone (the CI regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --json BENCH_obs.json

``benchmarks/check_regression.py`` compares the ``metrics`` block
against the committed baseline in ``benchmarks/baselines/BENCH_obs.json``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from time import perf_counter

from repro.documents.corpus import CorpusConfig, build_corpus
from repro.obs import metrics, tracing
from repro.pipeline import ParsePipeline, request_for_documents

N_DOCUMENTS = 600
BATCH_SIZE = 50
ROUNDS = 5
MAX_PIPELINE_OVERHEAD = 0.10  # the tentpole promise: < 10%
INSTRUMENT_LOOP = 50_000


def _set_obs(enabled: bool) -> None:
    metrics.set_enabled(enabled)
    tracing.set_enabled(enabled)


def _time_pipeline(pipeline: ParsePipeline, documents, obs_enabled: bool) -> float:
    _set_obs(obs_enabled)
    request = request_for_documents(
        "pymupdf", documents, batch_size=BATCH_SIZE, cache="off"
    )
    if obs_enabled:
        with tracing.activate(tracing.TraceContext.new()):
            started = perf_counter()
            pipeline.run(request)
            return perf_counter() - started
    started = perf_counter()
    pipeline.run(request)
    return perf_counter() - started


def _time_instruments(obs_enabled: bool) -> float:
    registry = metrics.MetricsRegistry(enabled=obs_enabled)
    counter = registry.counter("bench_ops_total", labelnames=("kind",))
    histogram = registry.histogram("bench_lat_seconds")
    started = perf_counter()
    for i in range(INSTRUMENT_LOOP):
        counter.inc(kind="a")
        histogram.observe(0.001 * (i & 7))
    return perf_counter() - started


def run_overhead_sweep(
    n_documents: int = N_DOCUMENTS, registry=None
) -> dict[str, float]:
    """Enabled/disabled passes; best-of-N per mode (and asserts)."""
    corpus = build_corpus(
        CorpusConfig(n_documents=n_documents, seed=53, min_pages=4, max_pages=10)
    )
    documents = list(corpus)
    pipeline = ParsePipeline(registry)
    try:
        # One warm-up pass so both modes measure the same steady state
        # (parser registries built, pools spun up).  The timed rounds
        # *interleave* the two modes and keep the per-mode minimum:
        # machine-load drift then hits both modes alike instead of
        # masquerading as instrumentation overhead.
        _time_pipeline(pipeline, documents, obs_enabled=True)

        enabled_times: list[float] = []
        disabled_times: list[float] = []
        for _ in range(ROUNDS):
            enabled_times.append(_time_pipeline(pipeline, documents, True))
            disabled_times.append(_time_pipeline(pipeline, documents, False))
        enabled_s = min(enabled_times)
        disabled_s = min(disabled_times)
        instr_enabled_s = min(_time_instruments(True) for _ in range(ROUNDS))
        instr_disabled_s = min(_time_instruments(False) for _ in range(ROUNDS))
    finally:
        _set_obs(True)

    overhead = enabled_s / disabled_s - 1.0
    assert overhead < MAX_PIPELINE_OVERHEAD, (
        f"observability adds {overhead:.1%} to the warm pipeline path "
        f"(enabled {enabled_s:.3f}s vs disabled {disabled_s:.3f}s); "
        f"the budget is {MAX_PIPELINE_OVERHEAD:.0%}"
    )
    return {
        "enabled_s": enabled_s,
        "disabled_s": disabled_s,
        "overhead": overhead,
        "pipeline_relative_throughput": disabled_s / enabled_s,
        "instrument_relative_throughput": instr_disabled_s / instr_enabled_s,
        "instrument_enabled_ops_per_s": 2 * INSTRUMENT_LOOP / instr_enabled_s,
    }


def row_to_metrics(row: dict[str, float]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    Both are same-machine enabled-vs-disabled ratios (≈ 1.0 when the
    instrumentation is cheap), higher-is-better by construction.
    """
    return {
        "pipeline_relative_throughput": float(row["pipeline_relative_throughput"]),
        "instrument_relative_throughput": float(row["instrument_relative_throughput"]),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=N_DOCUMENTS)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write {'benchmark', 'metrics'} JSON for check_regression.py",
    )
    args = parser.parse_args()
    row = run_overhead_sweep(n_documents=args.documents)
    print(
        f"pipeline: enabled {row['enabled_s']:.3f}s, "
        f"disabled {row['disabled_s']:.3f}s "
        f"(overhead {row['overhead']:+.1%}); "
        f"instruments {row['instrument_enabled_ops_per_s'] / 1e6:.2f}M ops/s "
        f"(relative {row['instrument_relative_throughput']:.2f})"
    )
    if args.json:
        payload = {"benchmark": "obs_overhead", "metrics": row_to_metrics(row)}
        Path(args.json).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
