"""Section 7.1: alignment of accuracy metrics with (simulated) user preferences.

Paper reference: users express a preference 91.3 % of the time, repeated
triplets agree 82.2 % of the time, Nougat wins the tournament (57.1 % raw win
frequency; pypdf only 2.1 %), and BLEU correlates with the choices
(ρ ≈ 0.47, p ≪ 0.05) without fully explaining them.
"""

from __future__ import annotations

from repro.evaluation.alignment import preference_alignment_statistics
from repro.preferences.study import StudyConfig


def test_preference_alignment(benchmark, experiment_context, registry, measured_store):
    corpus = experiment_context.splits["test"]
    stats = benchmark.pedantic(
        lambda: preference_alignment_statistics(
            corpus, registry, StudyConfig(n_pages=120, comparisons_per_page=4, seed=11)
        ),
        rounds=1,
        iterations=1,
    )
    print("preference-alignment statistics:", stats.as_dict())
    measured_store.record_mapping(
        "ALIGNMENT", stats.as_dict(), title="Simulated preference-study statistics"
    )

    # Decisiveness and consensus are high (paper: 91.3 % and 82.2 %).
    assert stats.decisiveness > 0.7
    assert stats.consensus > 0.7
    # BLEU correlates with preference but is far from fully predictive (ρ ≈ 0.47).
    assert 0.15 < stats.bleu_win_rate_correlation < 0.9
    assert stats.correlation_p_value < 0.05
    # pypdf is clearly the least preferred parser; a recognition parser leads.
    win_rates = stats.win_rates
    assert min(win_rates, key=win_rates.get) in ("pypdf", "grobid")
    assert max(win_rates, key=win_rates.get) in ("nougat", "marker", "tesseract", "pymupdf")
