"""CI perf-regression gate: compare benchmark metrics against a baseline.

Both files are the ``--json`` payloads of the benchmark scripts
(``{"benchmark": ..., "metrics": {name: value}}``).  Every metric in the
**baseline** must be present in the current run and must not have
degraded by more than the tolerance; all gate metrics are
higher-is-better ratios (speedups, hit rates) chosen to be portable
across runner hardware.

Usage::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --json BENCH_backend.json
    python benchmarks/check_regression.py \
        --baseline benchmarks/baselines/BENCH_backend.json \
        --current BENCH_backend.json --tolerance 0.30

Exit status 0 when every metric clears ``baseline * (1 - tolerance)``,
1 otherwise (the failing metrics are listed).  Baselines are committed
in ``benchmarks/baselines/``; a baseline file may pin its own
``tolerance``, and re-baselining is just re-running the benchmark with
``--json`` and copying the ``metrics`` block (see README “Benchmarks in
CI”).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.30


def load_metrics(path: Path) -> tuple[str, dict[str, float]]:
    payload = json.loads(path.read_text(encoding="utf-8"))
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise SystemExit(f"error: {path} has no 'metrics' block")
    return str(payload.get("benchmark", path.stem)), {
        str(k): float(v) for k, v in metrics.items()
    }


def check_regression(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float,
) -> list[str]:
    """Return the failure messages (empty when the gate passes)."""
    failures: list[str] = []
    for name, base_value in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from the current run")
            continue
        floor = base_value * (1.0 - tolerance)
        value = current[name]
        status = "ok" if value >= floor else "REGRESSION"
        print(
            f"  {name}: current={value:.3f} baseline={base_value:.3f} "
            f"floor={floor:.3f} [{status}]"
        )
        if value < floor:
            failures.append(
                f"{name}: {value:.3f} is below {floor:.3f} "
                f"(baseline {base_value:.3f} - {tolerance:.0%})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=f"allowed fractional degradation (default: the baseline file's "
        f"'tolerance', else {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args()
    baseline_payload = json.loads(args.baseline.read_text(encoding="utf-8"))
    tolerance = args.tolerance
    if tolerance is None:
        tolerance = float(baseline_payload.get("tolerance", DEFAULT_TOLERANCE))
    if not 0.0 <= tolerance < 1.0:
        raise SystemExit(f"error: tolerance must lie in [0, 1), got {tolerance}")
    name, baseline = load_metrics(args.baseline)
    _, current = load_metrics(args.current)
    print(f"{name}: gate at {tolerance:.0%} tolerance")
    failures = check_regression(baseline, current, tolerance)
    if failures:
        print(f"FAIL: {len(failures)} metric(s) regressed beyond {tolerance:.0%}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"PASS: all {len(baseline)} metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
