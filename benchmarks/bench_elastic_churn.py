"""Benchmark: elastic churn — membership churn and ledger resume overhead.

Two timed comparisons over the same off-GIL sleep workload the cluster
benchmarks use, both expressed as hardware-portable ratios of the same
machine's undisturbed 2-worker run:

* **churn efficiency** — a campaign during which one worker is killed
  abruptly (socket severed, as SIGKILL leaves it) while a replacement
  joins through the membership listener, versus the undisturbed run.
  Measures the cost of death detection, requeue, and mid-run admission.
* **resume speedup** — a campaign resumed from a ledger seeded with half
  the corpus, versus a cold run with an empty ledger.  Replayed shards
  skip the workers entirely, so the resumed run should approach 2x.

Every run's output must be byte-identical to the undisturbed baseline;
the benchmark asserts this, plus the expected membership/replay counters.

Run standalone (the CI smoke + regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_elastic_churn.py
    PYTHONPATH=src python benchmarks/bench_elastic_churn.py --json BENCH_elastic.json

The ``--json`` payload carries the ratio metrics under ``metrics``;
``benchmarks/check_regression.py`` compares them against the committed
baseline in ``benchmarks/baselines/BENCH_elastic.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import threading
import time
from pathlib import Path
from time import perf_counter

from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.base import Parser, ParserCost
from repro.pipeline import ParsePipeline, request_for_documents

N_DOCUMENTS = int(os.environ.get("REPRO_BENCH_ELASTIC_DOCS", 40))
SLEEP_SECONDS = float(os.environ.get("REPRO_BENCH_ELASTIC_SLEEP", 0.05))
BATCH_SIZE = 4
#: The churn run pays for death detection + requeue but keeps 2 live
#: workers throughout (the replacement joins before the kill), so it
#: should stay within a modest factor of the undisturbed run.
CHURN_EFFICIENCY_FLOOR = 0.35
#: Half the shards replay from the ledger, so the resumed run should
#: comfortably beat the cold run.
RESUME_SPEEDUP_FLOOR = 1.2


class SleepyElasticParser(Parser):
    """Off-GIL I/O stand-in, registered on worker pipelines by name."""

    name = "sleepy-elastic"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def __init__(self, sleep_seconds: float = SLEEP_SECONDS) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:page-{i}" for i in range(document.n_pages)]


def _pipeline(sleep_seconds: float) -> ParsePipeline:
    pipeline = ParsePipeline()
    pipeline.engines[SleepyElasticParser.name] = SleepyElasticParser(sleep_seconds)
    return pipeline


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _run_remote(documents, workers, sleep_seconds, **options):
    report = _pipeline(sleep_seconds).run(
        request_for_documents(
            SleepyElasticParser.name,
            documents,
            batch_size=BATCH_SIZE,
            backend="remote",
            backend_options={
                "workers": ",".join(w.address for w in workers),
                **options,
            },
        )
    )
    return report


def _spawn_workers(count, sleep_seconds, prefix):
    from repro.cluster.worker import WorkerDaemon

    return [
        WorkerDaemon(name=f"{prefix}-{i}", pipeline=_pipeline(sleep_seconds)).start()
        for i in range(count)
    ]


def _row(case, workers, elapsed, report):
    extra = report.execution.extra
    return {
        "case": case,
        "workers": workers,
        "seconds": elapsed,
        "docs/s": len(report.results) / elapsed if elapsed > 0 else float("inf"),
        "shards": report.execution.batches_dispatched,
        "replayed": extra.get("cluster_shards_replayed", 0),
        "reassigned": extra.get("cluster_shards_reassigned", 0),
        "workers lost": extra.get("cluster_workers_lost", 0),
    }


def run_elastic_churn(
    n_documents: int = N_DOCUMENTS,
    sleep_seconds: float = SLEEP_SECONDS,
    work_dir: Path | None = None,
) -> list[dict[str, object]]:
    """Measure static vs churn vs cold vs resumed runs; one row per case."""
    import tempfile

    if work_dir is None:
        work_dir = Path(tempfile.mkdtemp(prefix="bench-elastic-"))
    documents = list(
        build_corpus(
            CorpusConfig(n_documents=n_documents, seed=101, min_pages=1, max_pages=2)
        )
    )
    rows: list[dict[str, object]] = []

    # Case 1: undisturbed 2-worker baseline.
    workers = _spawn_workers(2, sleep_seconds, "static")
    try:
        started = perf_counter()
        static_report = _run_remote(documents, workers, sleep_seconds)
        static_seconds = perf_counter() - started
    finally:
        for worker in workers:
            worker.stop()
    baseline_text = [r.text for r in static_report.results]
    rows.append(_row("static-2", 2, static_seconds, static_report))

    # Case 2: one worker killed mid-run while a replacement joins.
    workers = _spawn_workers(2, sleep_seconds, "churn")
    replacement = _spawn_workers(1, sleep_seconds, "replacement")[0]
    listen_port = _free_port()
    outcome: dict = {}

    def run():
        started = perf_counter()
        outcome["report"] = _run_remote(
            documents, workers, sleep_seconds, listen=listen_port
        )
        outcome["seconds"] = perf_counter() - started

    thread = threading.Thread(target=run)
    try:
        thread.start()
        victim = workers[1]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if victim.counters["docs_received"]:
                break
            time.sleep(0.002)
        else:
            raise AssertionError("the victim worker never received a shard")
        replacement.join(f"127.0.0.1:{listen_port}", retries=40, retry_delay=0.25)
        victim.kill()
        thread.join(timeout=120)
        assert not thread.is_alive(), "churn run hung after kill + join"
    finally:
        for worker in workers:
            worker.stop()
        replacement.stop()
    churn_report, churn_seconds = outcome["report"], outcome["seconds"]
    assert [r.text for r in churn_report.results] == baseline_text, (
        "churn run diverged from the undisturbed baseline"
    )
    extra = churn_report.execution.extra
    assert extra["cluster_workers_lost"] == 1, extra
    assert extra["cluster_workers_seen"] == 3, extra
    rows.append(_row("churn (kill+join)", 3, churn_seconds, churn_report))

    # Case 3: cold run against an empty ledger.
    workers = _spawn_workers(2, sleep_seconds, "cold")
    try:
        started = perf_counter()
        cold_report = _run_remote(
            documents, workers, sleep_seconds, ledger_dir=str(work_dir / "cold")
        )
        cold_seconds = perf_counter() - started
    finally:
        for worker in workers:
            worker.stop()
    assert [r.text for r in cold_report.results] == baseline_text
    rows.append(_row("ledger-cold", 2, cold_seconds, cold_report))

    # Case 4: resume from a ledger seeded with the first half of the
    # corpus (batching is deterministic, so the prefix's shards are
    # exactly the full run's first half — the crashed-coordinator case).
    resume_dir = str(work_dir / "resume")
    half = (n_documents // (2 * BATCH_SIZE)) * BATCH_SIZE
    workers = _spawn_workers(2, sleep_seconds, "seed")
    try:
        _run_remote(documents[:half], workers, sleep_seconds, ledger_dir=resume_dir)
    finally:
        for worker in workers:
            worker.stop()
    workers = _spawn_workers(2, sleep_seconds, "resumed")
    try:
        started = perf_counter()
        resumed_report = _run_remote(
            documents, workers, sleep_seconds, ledger_dir=resume_dir
        )
        resumed_seconds = perf_counter() - started
    finally:
        for worker in workers:
            worker.stop()
    assert [r.text for r in resumed_report.results] == baseline_text, (
        "resumed run diverged from the undisturbed baseline"
    )
    replayed = resumed_report.execution.extra["cluster_shards_replayed"]
    assert replayed == half // BATCH_SIZE, resumed_report.execution.extra
    rows.append(_row("ledger-resumed", 2, resumed_seconds, resumed_report))

    metrics = rows_to_metrics(rows)
    assert metrics["churn_efficiency"] >= CHURN_EFFICIENCY_FLOOR, (
        f"churn efficiency {metrics['churn_efficiency']:.2f} below the "
        f"{CHURN_EFFICIENCY_FLOOR} floor"
    )
    assert metrics["resume_speedup"] >= RESUME_SPEEDUP_FLOOR, (
        f"resume speedup {metrics['resume_speedup']:.2f}x below the "
        f"{RESUME_SPEEDUP_FLOOR}x floor"
    )
    return rows


def rows_to_metrics(rows: list[dict[str, object]]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    Ratios only, higher is better: churn efficiency is the undisturbed
    run's wall clock over the kill+join run's (death detection, requeue,
    and admission overhead pull it below 1.0); resume speedup is the
    cold ledger run over the half-replayed resume.
    """
    by_case = {str(row["case"]): row for row in rows}
    return {
        "churn_efficiency": (
            float(by_case["static-2"]["seconds"])
            / float(by_case["churn (kill+join)"]["seconds"])
        ),
        "resume_speedup": (
            float(by_case["ledger-cold"]["seconds"])
            / float(by_case["ledger-resumed"]["seconds"])
        ),
    }


def _rows_to_table(rows: list[dict[str, object]], n_documents: int = N_DOCUMENTS):
    from repro.utils.tables import Table

    table = Table(
        title=f"Elastic churn ({n_documents} documents, batch={BATCH_SIZE})",
        columns=list(rows[0].keys()),
    )
    for row in rows:
        table.add_row(row)
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=N_DOCUMENTS)
    parser.add_argument("--sleep", type=float, default=SLEEP_SECONDS)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write the regression-gate metrics payload here",
    )
    args = parser.parse_args()
    rows = run_elastic_churn(args.documents, args.sleep)
    metrics = rows_to_metrics(rows)
    print(_rows_to_table(rows, args.documents).to_text(precision=2))
    print(
        f"churn efficiency {metrics['churn_efficiency']:.2f} "
        f"(floor {CHURN_EFFICIENCY_FLOOR}), resume speedup "
        f"{metrics['resume_speedup']:.2f}x (floor {RESUME_SPEEDUP_FLOOR}x): OK"
    )
    if args.json:
        payload = {
            "benchmark": "elastic_churn",
            "config": {
                "n_documents": args.documents,
                "sleep_seconds": args.sleep,
                "batch_size": BATCH_SIZE,
            },
            "metrics": metrics,
            "rows": rows,
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote metrics to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
