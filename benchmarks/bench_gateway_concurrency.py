"""Benchmark: gateway concurrency — sustained requests/sec through the wire.

Runs the same many-client workload twice: ``direct`` submits straight to
an in-process :class:`~repro.serve.ParseService` from N threads, and
``gateway`` routes every submission through a
:class:`~repro.gateway.GatewayServer` over localhost TCP with one
:class:`~repro.gateway.GatewayClient` per worker (handshake, framed
submit, live event stream, result fetch).  Both modes share a
read-write cache over one corpus spec, so the run doubles as an
exactly-once check: across *all* clients and requests each document is
parsed once, everyone else is served by a hit or a coalesced wait.

The gated metric is the hardware-portable ratio
``gateway_relative_throughput`` (gateway requests/s over the same
machine's direct requests/s) — it tracks the per-request wire overhead
(framing, event fan-out, result marshalling), not runner speed.
``gateway_exactly_once`` pins the cross-client dedup invariant (1.0 or
the run asserts).  The run also hard-asserts **zero rejections** at
fitting load and an immediate ``rejected`` (never a hang) once capacity
or a client's rate limit is exhausted.

Run standalone (the CI smoke + regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_gateway_concurrency.py
    PYTHONPATH=src python benchmarks/bench_gateway_concurrency.py --json BENCH_gateway.json
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path
from time import perf_counter

from repro.cache import ParseCache
from repro.gateway import ClientQuota, GatewayClient, GatewayRejected, GatewayServer
from repro.parsers.base import Parser, ParserCost
from repro.parsers.registry import ParserRegistry
from repro.pipeline import ParsePipeline, ParseRequest
from repro.serve import ParseService, ServiceConfig

N_CLIENTS = int(os.environ.get("REPRO_BENCH_GATEWAY_CLIENTS", 8))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_GATEWAY_REQUESTS", 3))
N_DOCUMENTS = int(os.environ.get("REPRO_BENCH_GATEWAY_DOCS", 24))
SLEEP_SECONDS = float(os.environ.get("REPRO_BENCH_GATEWAY_SLEEP", 0.005))
BATCH_SIZE = 6
MAX_ACTIVE = 8


class SleepyGatewayParser(Parser):
    """Off-GIL I/O stand-in: parse time dominates framing overhead."""

    name = "sleepy-gateway"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def __init__(self, sleep_seconds: float = SLEEP_SECONDS) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:page-{i}" for i in range(document.n_pages)]


def _service(sleep_seconds: float) -> ParseService:
    registry = ParserRegistry()
    registry.register(SleepyGatewayParser(sleep_seconds))
    return ParseService(
        pipeline=ParsePipeline(registry=registry, cache=ParseCache()),
        config=ServiceConfig(max_active=MAX_ACTIVE, backend_options={"n_jobs": 4}),
    )


def _request(n_documents: int) -> ParseRequest:
    return ParseRequest(
        parser=SleepyGatewayParser.name,
        n_documents=n_documents,
        seed=41,
        batch_size=BATCH_SIZE,
        cache="readwrite",
    )


def _run_threads(n_clients: int, worker) -> list[list[dict]]:
    """Run ``worker(i)`` on N threads; returns per-client cache counters."""
    counters: list[list[dict]] = [[] for _ in range(n_clients)]
    errors: list[BaseException] = []

    def run(i: int) -> None:
        try:
            counters[i] = worker(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return counters


def _measure_direct(
    n_clients: int, requests_per_client: int, n_documents: int, sleep_seconds: float
) -> tuple[float, list[dict]]:
    with _service(sleep_seconds) as service:

        def worker(i: int) -> list[dict]:
            out = []
            for _ in range(requests_per_client):
                ticket = service.submit(_request(n_documents), client=f"client-{i}")
                out.append(ticket.result(timeout=120).cache.to_json_dict())
            return out

        started = perf_counter()
        counters = _run_threads(n_clients, worker)
        elapsed = perf_counter() - started
    return elapsed, [c for per_client in counters for c in per_client]


def _measure_gateway(
    n_clients: int, requests_per_client: int, n_documents: int, sleep_seconds: float
) -> tuple[float, list[dict], dict]:
    with _service(sleep_seconds) as service:
        with GatewayServer(service, port=0, max_queue_depth=4 * n_clients) as server:

            def worker(i: int) -> list[dict]:
                out = []
                with GatewayClient(
                    "127.0.0.1", server.port, client=f"client-{i}"
                ) as client:
                    for _ in range(requests_per_client):
                        ticket = client.submit(_request(n_documents))
                        for _event in ticket.events(timeout=120):
                            pass  # consume the live stream, like a real client
                        out.append(client.result(ticket, timeout=120)["cache"])
                return out

            started = perf_counter()
            counters = _run_threads(n_clients, worker)
            elapsed = perf_counter() - started
            stats = server.stats()
    return elapsed, [c for per_client in counters for c in per_client], stats


def _assert_backpressure_rejects(sleep_seconds: float) -> None:
    """Saturation and rate limits must answer ``rejected`` immediately."""
    with _service(sleep_seconds) as service:
        with GatewayServer(service, port=0, max_queue_depth=0) as server:
            server.auth.default_quota = ClientQuota(
                max_active=100, rate_per_second=0.001, burst=1
            )
            with GatewayClient("127.0.0.1", server.port, client="probe") as client:
                ticket = client.submit(_request(8))
                started = perf_counter()
                try:
                    client.submit(_request(8))
                except GatewayRejected as exc:
                    assert exc.reason in ("rate_limited", "saturated"), exc.reason
                else:
                    raise AssertionError("second submission was not rejected")
                assert perf_counter() - started < 5.0, "rejection was not immediate"
                client.result(ticket, timeout=120)


def run_gateway_concurrency(
    n_clients: int = N_CLIENTS,
    requests_per_client: int = REQUESTS_PER_CLIENT,
    n_documents: int = N_DOCUMENTS,
    sleep_seconds: float = SLEEP_SECONDS,
) -> list[dict[str, object]]:
    """Measure direct vs through-the-gateway submission; one row per mode."""
    n_requests = n_clients * requests_per_client
    rows: list[dict[str, object]] = []

    direct_elapsed, direct_counters = _measure_direct(
        n_clients, requests_per_client, n_documents, sleep_seconds
    )
    gateway_elapsed, gateway_counters, stats = _measure_gateway(
        n_clients, requests_per_client, n_documents, sleep_seconds
    )

    # Exactly-once across every client and request, in both modes.
    for label, counters in (("direct", direct_counters), ("gateway", gateway_counters)):
        misses = sum(c["misses"] for c in counters)
        assert misses == n_documents, (
            f"{label}: expected exactly-once parsing ({n_documents} misses "
            f"across the fleet), saw {misses}"
        )
    # Fitting load must sail through admission untouched.
    assert stats["rejected"] == 0, f"rejected at fitting load: {stats}"
    assert stats["submitted"] == n_requests, stats

    for label, elapsed, counters in (
        ("direct", direct_elapsed, direct_counters),
        ("gateway", gateway_elapsed, gateway_counters),
    ):
        rows.append(
            {
                "case": label,
                "clients": n_clients,
                "requests": n_requests,
                "req/s": n_requests / elapsed if elapsed > 0 else float("inf"),
                "misses": sum(c["misses"] for c in counters),
                "hits+coalesced": sum(
                    c["hits"] + c["coalesced"] for c in counters
                ),
            }
        )
    rows[1]["bytes on wire"] = stats["bytes_in"] + stats["bytes_out"]
    rows[1]["backlog high-water"] = stats["event_backlog_high_water"]

    _assert_backpressure_rejects(sleep_seconds)
    return rows


def rows_to_metrics(rows: list[dict[str, object]]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    ``gateway_relative_throughput`` is the gateway's requests/s over the
    same machine's direct in-process requests/s — the wire tax, not the
    runner speed.  ``gateway_exactly_once`` is 1.0 by construction (the
    run asserts it); gating it keeps the dedup invariant in the baseline
    contract.  Higher is better for both.
    """
    by_case = {str(row["case"]): row for row in rows}
    return {
        "gateway_relative_throughput": (
            float(by_case["gateway"]["req/s"]) / float(by_case["direct"]["req/s"])
        ),
        "gateway_exactly_once": 1.0,
    }


def _rows_to_table(rows: list[dict[str, object]]):
    from repro.utils.tables import Table

    columns: list[str] = []
    for row in rows:
        columns.extend(k for k in row.keys() if k not in columns)
    table = Table(
        title=f"Gateway concurrency ({rows[0]['clients']} clients x "
        f"{REQUESTS_PER_CLIENT} requests, {N_DOCUMENTS} docs, shared cache)",
        columns=columns,
    )
    for row in rows:
        table.add_row(row)
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    parser.add_argument("--requests-per-client", type=int, default=REQUESTS_PER_CLIENT)
    parser.add_argument("--documents", type=int, default=N_DOCUMENTS)
    parser.add_argument("--sleep", type=float, default=SLEEP_SECONDS)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write the regression-gate metrics payload here",
    )
    args = parser.parse_args()
    rows = run_gateway_concurrency(
        args.clients, args.requests_per_client, args.documents, args.sleep
    )
    print(_rows_to_table(rows).to_text(precision=2))
    print("exactly-once dedup, zero rejections at fitting load, immediate "
          "rejection at saturation: OK")
    if args.json:
        payload = {
            "benchmark": "gateway_concurrency",
            "config": {
                "n_clients": args.clients,
                "requests_per_client": args.requests_per_client,
                "n_documents": args.documents,
                "sleep_seconds": args.sleep,
                "batch_size": BATCH_SIZE,
            },
            "metrics": rows_to_metrics(rows),
            "rows": rows,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
