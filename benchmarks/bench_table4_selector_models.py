"""Table 4: comparison of prediction models for parser selection.

Paper reference (Table 4, %): text-driven LLM regression (SciBERT 51.6 BLEU,
+DPO 52.7) beats metadata/title models (44.7–47.9) and metadata-only SVCs
(43.6–47.7); all sit between random selection (44.0) and the BLEU-maximal
oracle (56.8).  The reproduction trains every model family from scratch and
checks the same ordering.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import print_table
from repro.evaluation.tables import table4_selector_models


def test_table4_selector_models(benchmark, experiment_context, harness_config, measured_store):
    table = benchmark.pedantic(
        lambda: table4_selector_models(experiment_context, harness_config),
        rounds=1,
        iterations=1,
    )
    print_table(table)
    measured_store.record_table("TABLE4", table)
    rows = {row["Features (Model)"]: row for row in table.rows}
    oracle = rows["BLEU-maximal selection"]["BLEU"]
    random_sel = rows["Random selection"]["BLEU"]
    worst = rows["BLEU-minimal selection"]["BLEU"]
    scibert = rows["Text (SciBERT)"]["BLEU"]
    scibert_dpo = rows["Text (SciBERT + DPO)"]["BLEU"]
    text_models = [rows["Text (SciBERT + DPO)"], rows["Text (SciBERT)"], rows["Text (BERT)"]]
    metadata_models = [
        rows["Format + Producer (SVC)"], rows["Format (SVC)"], rows["Year + Producer (SVC)"],
        rows["Publisher + (Sub-)category (SVC)"], rows["(Sub-)category (SVC)"],
    ]
    # Reference selectors bracket everything.
    assert worst <= random_sel <= oracle
    assert all(worst <= r["BLEU"] <= oracle + 1e-9 for r in table.rows)
    # Text-driven models beat random selection and at least match the metadata SVCs.
    assert min(m["BLEU"] for m in text_models) >= random_sel - 1.0
    assert np.mean([m["BLEU"] for m in text_models]) >= np.mean([m["BLEU"] for m in metadata_models]) - 1.0
    # DPO does not hurt (the paper reports a further boost).
    assert scibert_dpo >= scibert - 1.0
