"""Micro-benchmark: warm-cache throughput of the parsing pipeline.

Runs the same corpus through :class:`repro.pipeline.ParsePipeline` three
times against a persistent :class:`repro.cache.ParseCache`:

* **uncached** — the baseline with the cache policy off,
* **cold** — ``readwrite`` against an empty cache (pays the stores),
* **warm** — ``readwrite`` again (every document served from the cache).

Asserts the tentpole acceptance criteria: the warm pass is ≥ 5× faster
than the cold pass, every document is a cache hit, and the warm results
are byte-identical to the uncached run.

Run under pytest (records a measured table for ``fill-experiments``)::

    pytest benchmarks/bench_cache_hit_throughput.py --benchmark-only

or standalone (the CI regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_cache_hit_throughput.py --json BENCH_cache.json

The ``--json`` payload carries the machine-portable ``warm_speedup_vs_cold``
ratio and the warm hit rate under ``metrics``;
``benchmarks/check_regression.py`` compares them against the committed
baseline in ``benchmarks/baselines/BENCH_cache.json``.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path
from time import perf_counter

from repro.cache import ParseCache
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.pipeline import ParsePipeline, request_for_documents
from repro.utils.tables import Table

N_DOCUMENTS = 200
BATCH_SIZE = 25
MIN_WARM_SPEEDUP = 5.0


def run_cache_hit_sweep(
    cache_dir: str | Path,
    n_documents: int = N_DOCUMENTS,
    batch_size: int = BATCH_SIZE,
    registry=None,
) -> dict[str, object]:
    """Uncached → cold → warm sweep; returns the measured row (and asserts)."""
    corpus = build_corpus(
        CorpusConfig(n_documents=n_documents, seed=91, min_pages=2, max_pages=5)
    )
    documents = list(corpus)
    pipeline = ParsePipeline(registry, cache=ParseCache(cache_dir))

    def run(policy: str):
        request = request_for_documents(
            "pymupdf", documents, batch_size=batch_size, cache=policy
        )
        started = perf_counter()
        report = pipeline.run(request)
        return report, perf_counter() - started

    uncached, uncached_s = run("off")
    cold, cold_s = run("readwrite")
    warm, warm_s = run("readwrite")

    # Acceptance criteria of the caching tentpole.
    assert warm.cache.hits == len(documents)
    assert warm.cache.misses == 0
    for a, b in zip(warm.results, uncached.results):
        assert a.page_texts == b.page_texts
        assert a.usage == b.usage
        assert (a.doc_id, a.parser_name, a.succeeded, a.error) == (
            b.doc_id,
            b.parser_name,
            b.succeeded,
            b.error,
        )
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm pass only {speedup:.1f}x faster than cold "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )
    return {
        "uncached docs/s": n_documents / uncached_s,
        "cold (readwrite) docs/s": n_documents / cold_s,
        "warm (readwrite) docs/s": n_documents / warm_s,
        "warm speedup vs cold": speedup,
        "cache hits": warm.cache.hits,
        "time saved s": warm.cache.time_saved_seconds,
        "warm hit rate": warm.cache.hit_rate,
    }


def row_to_metrics(row: dict[str, object]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    ``warm_speedup_vs_cold`` is a same-machine ratio (hardware-portable);
    ``warm_hit_rate`` is exact (1.0 unless the cache is broken).  All
    metrics are higher-is-better.
    """
    return {
        "warm_speedup_vs_cold": float(row["warm speedup vs cold"]),
        "warm_hit_rate": float(row["warm hit rate"]),
    }


def _row_to_table(row: dict[str, object], n_documents: int, batch_size: int) -> Table:
    table = Table(
        title=f"Cache hit throughput ({n_documents} documents, batch={batch_size})",
        columns=list(row),
    )
    table.add_row(row)
    return table


def test_cache_hit_throughput(benchmark, registry, measured_store, tmp_path):
    row = benchmark.pedantic(
        run_cache_hit_sweep,
        args=(tmp_path / "parse-cache",),
        kwargs={"registry": registry},
        rounds=1,
        iterations=1,
    )
    table = _row_to_table(row, N_DOCUMENTS, BATCH_SIZE)
    print()
    print(table.to_text(precision=1))
    measured_store.record_table("CACHE_HIT_THROUGHPUT", table, precision=1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=N_DOCUMENTS)
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write the regression-gate metrics payload here",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        row = run_cache_hit_sweep(
            cache_dir, n_documents=args.documents, batch_size=args.batch_size
        )
    print(_row_to_table(row, args.documents, args.batch_size).to_text(precision=1))
    print(f"warm >= {MIN_WARM_SPEEDUP}x cold: OK")
    if args.json:
        payload = {
            "benchmark": "cache_hit_throughput",
            "config": {"n_documents": args.documents, "batch_size": args.batch_size},
            "metrics": row_to_metrics(row),
            "row": row,
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote metrics to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
