"""Micro-benchmark: warm-cache throughput of the parsing pipeline.

Runs the same corpus through :class:`repro.pipeline.ParsePipeline` three
times against a persistent :class:`repro.cache.ParseCache`:

* **uncached** — the baseline with the cache policy off,
* **cold** — ``readwrite`` against an empty cache (pays the stores),
* **warm** — ``readwrite`` again (every document served from the cache).

Asserts the tentpole acceptance criteria: the warm pass is ≥ 5× faster
than the cold pass, every document is a cache hit, and the warm results
are byte-identical to the uncached run.
"""

from __future__ import annotations

from time import perf_counter

from repro.cache import ParseCache
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.pipeline import ParsePipeline, request_for_documents
from repro.utils.tables import Table

N_DOCUMENTS = 200
BATCH_SIZE = 25
MIN_WARM_SPEEDUP = 5.0


def test_cache_hit_throughput(benchmark, registry, measured_store, tmp_path):
    corpus = build_corpus(
        CorpusConfig(n_documents=N_DOCUMENTS, seed=91, min_pages=2, max_pages=5)
    )
    documents = list(corpus)
    pipeline = ParsePipeline(registry, cache=ParseCache(tmp_path / "parse-cache"))

    def run(policy: str):
        request = request_for_documents(
            "pymupdf", documents, batch_size=BATCH_SIZE, cache=policy
        )
        started = perf_counter()
        report = pipeline.run(request)
        return report, perf_counter() - started

    def sweep() -> dict[str, object]:
        uncached, uncached_s = run("off")
        cold, cold_s = run("readwrite")
        warm, warm_s = run("readwrite")

        # Acceptance criteria of the caching tentpole.
        assert warm.cache.hits == len(documents)
        assert warm.cache.misses == 0
        for a, b in zip(warm.results, uncached.results):
            assert a.page_texts == b.page_texts
            assert a.usage == b.usage
            assert (a.doc_id, a.parser_name, a.succeeded, a.error) == (
                b.doc_id,
                b.parser_name,
                b.succeeded,
                b.error,
            )
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm pass only {speedup:.1f}x faster than cold "
            f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
        )
        return {
            "uncached docs/s": N_DOCUMENTS / uncached_s,
            "cold (readwrite) docs/s": N_DOCUMENTS / cold_s,
            "warm (readwrite) docs/s": N_DOCUMENTS / warm_s,
            "warm speedup vs cold": speedup,
            "cache hits": warm.cache.hits,
            "time saved s": warm.cache.time_saved_seconds,
        }

    row = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        title=f"Cache hit throughput ({N_DOCUMENTS} documents, batch={BATCH_SIZE})",
        columns=list(row),
    )
    table.add_row(row)
    print()
    print(table.to_text(precision=1))
    measured_store.record_table("CACHE_HIT_THROUGHPUT", table, precision=1)
