"""Benchmark: execution-backend scaling — serial vs thread/async/process.

Runs one corpus through the same ``ParsePipeline`` on four backends and
compares wall-clock throughput.  The workload is an I/O-flavoured parser
(a per-document ``time.sleep``, standing in for disk/network-bound PDF
reads, which releases the GIL) so the parallel in-process backends have
real headroom: the suite asserts **thread ≥ 1.5× serial** and **async ≥
1.5× serial** at ``n_jobs=4``.  The process backend is measured
alongside (no floor asserted — fork/pickle overhead dominates at smoke
scale).

Run under pytest (records a measured table for ``fill-experiments``)::

    pytest benchmarks/bench_backend_scaling.py --benchmark-only

or as a standalone script (the CI smoke + regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --documents 24
    PYTHONPATH=src python benchmarks/bench_backend_scaling.py --json BENCH_backend.json

The ``--json`` payload carries machine-portable **ratio** metrics
(speedups vs serial) under ``metrics``; ``benchmarks/check_regression.py``
compares them against the committed baseline in
``benchmarks/baselines/BENCH_backend.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from time import perf_counter

from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.base import Parser, ParserCost
from repro.pipeline import ParsePipeline, request_for_documents

N_DOCUMENTS = int(os.environ.get("REPRO_BENCH_BACKEND_DOCS", 48))
SLEEP_SECONDS = float(os.environ.get("REPRO_BENCH_BACKEND_SLEEP", 0.02))
BATCH_SIZE = 4
N_JOBS = 4
THREAD_SPEEDUP_FLOOR = 1.5
ASYNC_SPEEDUP_FLOOR = 1.5


class SleepyParser(Parser):
    """I/O-flavoured parser double: each document blocks off-GIL briefly.

    Module-level (and stateless beyond configuration) so the process
    backend can pickle it to worker processes.
    """

    name = "sleepy"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def __init__(self, sleep_seconds: float = SLEEP_SECONDS) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:page-{i}" for i in range(document.n_pages)]


def run_backend_scaling(
    n_documents: int = N_DOCUMENTS, sleep_seconds: float = SLEEP_SECONDS
) -> list[dict[str, object]]:
    """Measure every backend over one corpus; returns one row per backend."""
    corpus = build_corpus(
        CorpusConfig(n_documents=n_documents, seed=91, min_pages=1, max_pages=2)
    )
    documents = list(corpus)
    parser = SleepyParser(sleep_seconds)
    pipeline = ParsePipeline()
    cases = [
        ("serial", "serial", {}),
        ("thread", "thread", {"n_jobs": N_JOBS}),
        ("async", "async", {"n_jobs": N_JOBS}),
        ("process", "process", {"n_jobs": N_JOBS}),
    ]
    rows: list[dict[str, object]] = []
    baseline_text: list[str] | None = None
    serial_seconds = 0.0
    for label, backend, options in cases:
        started = perf_counter()
        report = pipeline.run(
            request_for_documents(
                parser, documents, batch_size=BATCH_SIZE,
                backend=backend, backend_options=options,
            )
        )
        elapsed = perf_counter() - started
        texts = [r.text for r in report.results]
        if baseline_text is None:
            baseline_text = texts
            serial_seconds = elapsed
        else:
            assert texts == baseline_text, f"{label} output diverged from serial"
        rows.append(
            {
                "backend": label,
                "workers": report.execution.workers,
                "docs/s": n_documents / elapsed if elapsed > 0 else float("inf"),
                "speedup vs serial": serial_seconds / elapsed if elapsed > 0 else float("inf"),
                "batches": report.execution.batches_dispatched,
                "in-flight high water": report.execution.in_flight_high_water,
            }
        )
    for label, floor in (("thread", THREAD_SPEEDUP_FLOOR), ("async", ASYNC_SPEEDUP_FLOOR)):
        row = next(r for r in rows if r["backend"] == label)
        assert float(row["speedup vs serial"]) >= floor, (
            f"{label} backend speedup {row['speedup vs serial']:.2f}x below the "
            f"{floor}x floor at n_jobs={N_JOBS}"
        )
    return rows


def rows_to_metrics(rows: list[dict[str, object]]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    Only **ratios** (speedups vs the same machine's serial run) are
    exported: absolute docs/s varies with runner hardware, speedup on an
    off-GIL sleep workload does not.  All metrics are higher-is-better.
    """
    by_backend = {str(row["backend"]): row for row in rows}
    return {
        "thread_speedup_vs_serial": float(by_backend["thread"]["speedup vs serial"]),
        "async_speedup_vs_serial": float(by_backend["async"]["speedup vs serial"]),
    }


def _rows_to_table(rows: list[dict[str, object]], n_documents: int = N_DOCUMENTS):
    from repro.utils.tables import Table

    table = Table(
        title=f"Backend scaling ({n_documents} documents, n_jobs={N_JOBS})",
        columns=list(rows[0].keys()),
    )
    for row in rows:
        table.add_row(row)
    return table


def test_backend_scaling(benchmark, measured_store):
    rows = benchmark.pedantic(run_backend_scaling, rounds=1, iterations=1)
    table = _rows_to_table(rows)
    print()
    print(table.to_text(precision=2))
    measured_store.record_table("BACKEND_SCALING", table, precision=2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=N_DOCUMENTS)
    parser.add_argument("--sleep", type=float, default=SLEEP_SECONDS)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write the regression-gate metrics payload here",
    )
    args = parser.parse_args()
    rows = run_backend_scaling(args.documents, args.sleep)
    print(_rows_to_table(rows, args.documents).to_text(precision=2))
    print(
        f"thread >= {THREAD_SPEEDUP_FLOOR}x and async >= {ASYNC_SPEEDUP_FLOOR}x "
        f"serial at n_jobs={N_JOBS}: OK"
    )
    if args.json:
        payload = {
            "benchmark": "backend_scaling",
            "config": {
                "n_documents": args.documents,
                "sleep_seconds": args.sleep,
                "n_jobs": N_JOBS,
                "batch_size": BATCH_SIZE,
            },
            "metrics": rows_to_metrics(rows),
            "rows": rows,
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote metrics to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
