"""Benchmark: cluster scaling — serial vs 2- and 4-worker local clusters.

Runs one corpus through the same ``ParsePipeline`` inline (serial) and on
the ``remote`` backend against local :class:`repro.cluster.WorkerDaemon`
fleets of 2 and 4 workers.  The workload is the same I/O-flavoured
off-GIL sleep parser the backend-scaling benchmark uses, so worker
parallelism has real headroom and the measured ratios are
hardware-portable (wall-clock speedups of the same machine's serial run,
not absolute docs/s).  Placement is ``balanced`` so the measurement
reflects worker capacity rather than rendezvous luck.

The suite asserts **2 workers ≥ 1.4× serial** and **4 workers ≥ 2.0×
serial**, and that every cluster run's output is byte-identical to the
serial baseline.

Run standalone (the CI smoke + regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py --documents 48
    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py --json BENCH_cluster.json

The ``--json`` payload carries the ratio metrics under ``metrics``;
``benchmarks/check_regression.py`` compares them against the committed
baseline in ``benchmarks/baselines/BENCH_cluster.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from time import perf_counter

from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.base import Parser, ParserCost
from repro.pipeline import ParsePipeline, request_for_documents

N_DOCUMENTS = int(os.environ.get("REPRO_BENCH_CLUSTER_DOCS", 48))
SLEEP_SECONDS = float(os.environ.get("REPRO_BENCH_CLUSTER_SLEEP", 0.02))
BATCH_SIZE = 4
CLUSTER2_SPEEDUP_FLOOR = 1.4
CLUSTER4_SPEEDUP_FLOOR = 2.0


class SleepyClusterParser(Parser):
    """Off-GIL I/O stand-in, registered on worker pipelines by name."""

    name = "sleepy-cluster"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def __init__(self, sleep_seconds: float = SLEEP_SECONDS) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:page-{i}" for i in range(document.n_pages)]


def _pipeline(sleep_seconds: float) -> ParsePipeline:
    pipeline = ParsePipeline()
    pipeline.engines[SleepyClusterParser.name] = SleepyClusterParser(sleep_seconds)
    return pipeline


def run_cluster_scaling(
    n_documents: int = N_DOCUMENTS, sleep_seconds: float = SLEEP_SECONDS
) -> list[dict[str, object]]:
    """Measure serial vs 2- and 4-worker clusters; one row per case."""
    from repro.cluster.worker import WorkerDaemon

    corpus = build_corpus(
        CorpusConfig(n_documents=n_documents, seed=97, min_pages=1, max_pages=2)
    )
    documents = list(corpus)
    rows: list[dict[str, object]] = []
    baseline_text: list[str] | None = None
    serial_seconds = 0.0
    for label, n_workers in (("serial", 0), ("cluster-2", 2), ("cluster-4", 4)):
        workers: list[WorkerDaemon] = []
        options: dict[str, object] = {}
        backend = "serial"
        if n_workers:
            workers = [
                WorkerDaemon(
                    name=f"bench-worker-{i}", pipeline=_pipeline(sleep_seconds)
                ).start()
                for i in range(n_workers)
            ]
            backend = "remote"
            options = {
                "workers": ",".join(worker.address for worker in workers),
                "placement": "balanced",
            }
        try:
            started = perf_counter()
            report = _pipeline(sleep_seconds).run(
                request_for_documents(
                    SleepyClusterParser.name,
                    documents,
                    batch_size=BATCH_SIZE,
                    backend=backend,
                    backend_options=options,
                )
            )
            elapsed = perf_counter() - started
        finally:
            for worker in workers:
                worker.stop()
        texts = [r.text for r in report.results]
        if baseline_text is None:
            baseline_text = texts
            serial_seconds = elapsed
        else:
            assert texts == baseline_text, f"{label} output diverged from serial"
        extra = report.execution.extra
        rows.append(
            {
                "case": label,
                "workers": n_workers or 1,
                "docs/s": n_documents / elapsed if elapsed > 0 else float("inf"),
                "speedup vs serial": (
                    serial_seconds / elapsed if elapsed > 0 else float("inf")
                ),
                "shards": report.execution.batches_dispatched,
                "reassigned": extra.get("cluster_shards_reassigned", 0),
                "payloads sent": extra.get("cluster_doc_payloads_sent", 0),
                "bytes on wire": extra.get("cluster_bytes_sent", 0)
                + extra.get("cluster_bytes_received", 0),
            }
        )
    for label, floor in (
        ("cluster-2", CLUSTER2_SPEEDUP_FLOOR),
        ("cluster-4", CLUSTER4_SPEEDUP_FLOOR),
    ):
        row = next(r for r in rows if r["case"] == label)
        assert float(row["speedup vs serial"]) >= floor, (
            f"{label} speedup {row['speedup vs serial']:.2f}x below the "
            f"{floor}x floor"
        )
    return rows


def rows_to_metrics(rows: list[dict[str, object]]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    Ratios only: cluster speedup over the same machine's serial run on an
    off-GIL sleep workload tracks scheduling/wire efficiency, not runner
    hardware.  Higher is better for both.
    """
    by_case = {str(row["case"]): row for row in rows}
    return {
        "cluster2_speedup_vs_serial": float(by_case["cluster-2"]["speedup vs serial"]),
        "cluster4_speedup_vs_serial": float(by_case["cluster-4"]["speedup vs serial"]),
    }


def _rows_to_table(rows: list[dict[str, object]], n_documents: int = N_DOCUMENTS):
    from repro.utils.tables import Table

    table = Table(
        title=f"Cluster scaling ({n_documents} documents, batch={BATCH_SIZE}, "
        f"balanced placement)",
        columns=list(rows[0].keys()),
    )
    for row in rows:
        table.add_row(row)
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=N_DOCUMENTS)
    parser.add_argument("--sleep", type=float, default=SLEEP_SECONDS)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write the regression-gate metrics payload here",
    )
    args = parser.parse_args()
    rows = run_cluster_scaling(args.documents, args.sleep)
    print(_rows_to_table(rows, args.documents).to_text(precision=2))
    print(
        f"cluster-2 >= {CLUSTER2_SPEEDUP_FLOOR}x and cluster-4 >= "
        f"{CLUSTER4_SPEEDUP_FLOOR}x serial: OK"
    )
    if args.json:
        payload = {
            "benchmark": "cluster_scaling",
            "config": {
                "n_documents": args.documents,
                "sleep_seconds": args.sleep,
                "batch_size": BATCH_SIZE,
            },
            "metrics": rows_to_metrics(rows),
            "rows": rows,
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote metrics to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
