"""Table 2: accuracy on simulated scanned documents.

Paper reference (Table 2, %): image-layer degradation applied to 15 % of
documents; AdaParse stays best on BLEU/ROUGE/CAR/AT (52.0/67.5/67.0/77.0)
while Tesseract degrades the most.
"""

from __future__ import annotations

from repro.evaluation.reporting import print_table
from repro.evaluation.tables import table2_scanned


def test_table2_scanned(benchmark, experiment_context, harness_config, measured_store):
    table = benchmark.pedantic(
        lambda: table2_scanned(experiment_context, harness_config=harness_config),
        rounds=1,
        iterations=1,
    )
    print_table(table)
    measured_store.record_table("TABLE2", table)
    bleu = {row["Parser"]: row["BLEU"] for row in table.rows}
    assert set(bleu) == {"marker", "nougat", "tesseract", "adaparse_llm"}
    assert bleu["adaparse_llm"] >= max(v for k, v in bleu.items() if k != "adaparse_llm") - 2.0
