"""Ablation: campaign resilience under injected faults (extension).

The paper requires a resilient infrastructure (Section 2.4: corrupted PDFs,
worker crashes, stragglers) but does not report a dedicated experiment.  This
ablation injects those faults into a simulated campaign and measures how the
executor's retry/quarantine policy preserves completion and throughput.
"""

from __future__ import annotations

from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.hpc.faults import FaultModel, RetryPolicy
from repro.utils.tables import Table

SCENARIOS: dict[str, FaultModel | None] = {
    "fault-free": None,
    "transient 10%": FaultModel(transient_failure_rate=0.10, seed=21),
    "transient 10% + stragglers 10%": FaultModel(
        transient_failure_rate=0.10, straggler_rate=0.10, straggler_multiplier=4.0, seed=21
    ),
    "corrupted 5% + transient 10%": FaultModel(
        corrupted_document_rate=0.05, transient_failure_rate=0.10, seed=21
    ),
}


def test_ablation_fault_tolerance(benchmark, registry, measured_store):
    parser = registry.get("pymupdf")

    def run() -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        for label, model in SCENARIOS.items():
            config = CampaignConfig(
                n_nodes=4, fault_model=model, retry=RetryPolicy(max_attempts=4)
            )
            result = ParsingCampaign(config).run_parser(parser, n_documents=1200)
            rows.append(
                {
                    "scenario": label,
                    "docs_per_s": round(result.throughput_docs_per_s, 2),
                    "completion_rate": round(result.completion_rate, 4),
                    "retries": result.attempts_retried,
                    "quarantined": result.documents_failed,
                    "wasted_compute_s": round(result.wasted_compute_seconds, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        title="Ablation: campaign resilience under injected faults (pymupdf, 4 nodes)",
        columns=list(rows[0]),
    )
    for row in rows:
        table.add_row(row)
    print()
    print(table.to_text(precision=2))
    measured_store.record_table("ABLATION_FAULTS", table, precision=2)

    by_scenario = {row["scenario"]: row for row in rows}
    clean = by_scenario["fault-free"]
    transient = by_scenario["transient 10%"]
    corrupted = by_scenario["corrupted 5% + transient 10%"]

    # The fault-free campaign completes everything with no retries.
    assert clean["completion_rate"] == 1.0
    assert clean["retries"] == 0 and clean["quarantined"] == 0
    # Transient failures are retried to full completion at reduced throughput.
    assert transient["completion_rate"] == 1.0
    assert transient["retries"] > 0
    assert transient["docs_per_s"] < clean["docs_per_s"]
    # Corrupted documents are quarantined, not retried forever; healthy
    # documents still complete.
    assert corrupted["quarantined"] > 0
    assert 0.9 < corrupted["completion_rate"] < 1.0
