"""Table 3: accuracy on documents with OCR-degraded text layers.

Paper reference (Table 3, %): 15 % of embedded text layers replaced with the
output of common tools; extraction parsers drop sharply and AdaParse retains a
small edge over PyMuPDF (BLEU 42.4 vs 42.0) by re-routing enough of the
affected documents.
"""

from __future__ import annotations

from repro.evaluation.reporting import print_table
from repro.evaluation.tables import table3_degraded_text


def test_table3_degraded_text(benchmark, experiment_context, harness_config, measured_store):
    table = benchmark.pedantic(
        lambda: table3_degraded_text(experiment_context, harness_config=harness_config),
        rounds=1,
        iterations=1,
    )
    print_table(table)
    measured_store.record_table("TABLE3", table)
    bleu = {row["Parser"]: row["BLEU"] for row in table.rows}
    assert set(bleu) == {"pymupdf", "pypdf", "adaparse_llm"}
    assert bleu["adaparse_llm"] >= bleu["pymupdf"] - 1.0
    assert bleu["pypdf"] <= bleu["pymupdf"]
