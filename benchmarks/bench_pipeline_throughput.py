"""Micro-benchmark: documents/second through the unified parsing pipeline.

Measures the facade's overhead and its thread-pool scaling:

* legacy ``Parser.parse_many`` (the pre-pipeline baseline),
* ``ParsePipeline`` with ``n_jobs=1`` (same work, request/report framing),
* ``ParsePipeline`` with ``n_jobs=4`` (batches fanned out over threads).

Both a cheap CPU parser (PyMuPDF) and an AdaParse engine double are
measured; the engine path exercises per-batch α routing under the pool.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import AdaParseConfig
from repro.core.engine import AdaParseEngine
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.pipeline import ParsePipeline, request_for_documents
from repro.utils.tables import Table

N_DOCUMENTS = 200
BATCH_SIZE = 25


class _ScriptedEngine(AdaParseEngine):
    """Training-free engine double: deterministic improvement scores."""

    name = "scripted"

    def improvement_scores(self, documents, extracted_texts) -> np.ndarray:
        return np.linspace(0.1, 1.0, len(documents))


def _throughput(elapsed_seconds: float, n_documents: int) -> float:
    return n_documents / elapsed_seconds if elapsed_seconds > 0 else float("inf")


def test_pipeline_throughput(benchmark, registry, measured_store):
    corpus = build_corpus(
        CorpusConfig(n_documents=N_DOCUMENTS, seed=77, min_pages=2, max_pages=5)
    )
    documents = list(corpus)
    engine = _ScriptedEngine(registry, AdaParseConfig(alpha=0.05, batch_size=BATCH_SIZE))
    pipeline = ParsePipeline(registry, engines={engine.name: engine})

    import time

    def measure(fn) -> float:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started

    def sweep() -> list[dict[str, object]]:
        rows: list[dict[str, object]] = []
        for parser_name, parser in (("pymupdf", registry.get("pymupdf")), (engine.name, engine)):
            legacy = measure(lambda p=parser: p.parse_many(documents))
            serial = measure(
                lambda n=parser_name: pipeline.run(
                    request_for_documents(n, documents, batch_size=BATCH_SIZE, n_jobs=1)
                )
            )
            threaded = measure(
                lambda n=parser_name: pipeline.run(
                    request_for_documents(n, documents, batch_size=BATCH_SIZE, n_jobs=4)
                )
            )
            rows.append(
                {
                    "parser": parser_name,
                    "legacy parse_many docs/s": _throughput(legacy, N_DOCUMENTS),
                    "pipeline n_jobs=1 docs/s": _throughput(serial, N_DOCUMENTS),
                    "pipeline n_jobs=4 docs/s": _throughput(threaded, N_DOCUMENTS),
                    "n_jobs=4 speedup": serial / threaded if threaded > 0 else float("inf"),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(
        title=f"Pipeline throughput ({N_DOCUMENTS} documents, batch={BATCH_SIZE})",
        columns=[
            "parser",
            "legacy parse_many docs/s",
            "pipeline n_jobs=1 docs/s",
            "pipeline n_jobs=4 docs/s",
            "n_jobs=4 speedup",
        ],
    )
    for row in rows:
        table.add_row(row)
    print()
    print(table.to_text(precision=1))
    measured_store.record_table("PIPELINE_THROUGHPUT", table, precision=1)
