"""Figure 3: per-parser BLEU by document difficulty + single-node throughputs.

Paper reference: on 23 398 PDFs, every parser's BLEU falls with estimated
parsing difficulty (the across-parser mean); extraction parsers dominate the
easy region while recognition parsers hold up better on the hard tail.  The
legend reports single-node throughputs spanning roughly two orders of
magnitude between PyMuPDF and the ViT parsers.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.figures import figure3_parser_performance
from repro.evaluation.reporting import print_table


def test_figure3_parser_performance(
    benchmark, experiment_context, registry, harness_config, measured_store
):
    corpus = experiment_context.splits["test"]
    series = benchmark.pedantic(
        lambda: figure3_parser_performance(
            corpus, registry, harness_config=harness_config, throughput_documents=200
        ),
        rounds=1,
        iterations=1,
    )
    print_table(series.to_table())
    print_table(series.legend_table(), precision=3)
    measured_store.record_table("FIGURE3", series.to_table())
    measured_store.record_table("FIGURE3", series.legend_table(), precision=3, append=True)

    # BLEU decays with difficulty rank for the across-parser mean.
    matrix = np.stack([series.bleu_by_parser[p] for p in series.parser_names])
    mean_by_rank = matrix.mean(axis=0)
    first_quartile = mean_by_rank[: len(mean_by_rank) // 4].mean()
    last_quartile = mean_by_rank[-len(mean_by_rank) // 4 :].mean()
    assert first_quartile > last_quartile

    # Throughput legend: extraction ≫ OCR ≫ ViT (PyMuPDF ≈ 135× Nougat in the paper).
    legend = series.throughput_legend
    assert legend["pymupdf"] / legend["nougat"] > 50
    assert legend["pymupdf"] / legend["pypdf"] > 5
    assert legend["marker"] < legend["nougat"]
