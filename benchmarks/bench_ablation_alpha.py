"""Ablation: the accuracy/throughput trade-off as a function of α.

The paper fixes α = 5 % for its headline results; this ablation sweeps the
budget and verifies the trade-off the formulation in Section 4 predicts:
quality (BLEU) rises monotonically (weakly) with α while simulated throughput
falls, with diminishing quality returns past a small α.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FT_VARIANT_CONFIG
from repro.core.engine import AdaParseFT
from repro.evaluation.harness import EvaluationHarness, HarnessConfig
from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.utils.tables import Table

ALPHAS = (0.0, 0.05, 0.15, 0.5)


def test_ablation_alpha(benchmark, experiment_context, registry, measured_store):
    context = experiment_context
    test_split = context.splits["test"]
    harness = EvaluationHarness(HarnessConfig(car_max_chars=1200))
    campaign = ParsingCampaign(CampaignConfig(n_nodes=1))

    def sweep() -> list[dict[str, float]]:
        rows: list[dict[str, float]] = []
        for alpha in ALPHAS:
            engine = AdaParseFT(
                registry=context.registry,
                selector=context.engine_ft.selector,
                config=FT_VARIANT_CONFIG.with_alpha(alpha),
                validator=context.engine_ft.validator,
                improvement_classifier=context.engine_ft.improvement_classifier,
            )
            report = harness.evaluate(test_split, [engine], compute_win_rate=False)
            aggregate = report.aggregates[engine.name]
            routing = report.routing_summary(engine.name)
            throughput = campaign.run_adaparse(
                context.registry, FT_VARIANT_CONFIG.with_alpha(alpha), 300
            ).throughput_docs_per_s
            rows.append(
                {
                    "alpha": alpha,
                    "bleu": aggregate.bleu * 100,
                    "coverage": aggregate.coverage * 100,
                    "routed_fraction": routing.fraction_routed(),
                    "docs_per_s_1node": throughput,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = Table(title="Ablation: α sweep", columns=["alpha", "bleu", "coverage", "routed_fraction", "docs_per_s_1node"])
    for row in rows:
        table.add_row(row)
    print()
    print(table.to_text(precision=3))
    measured_store.record_table("ABLATION_ALPHA", table, precision=3)

    bleu = [r["bleu"] for r in rows]
    throughput = [r["docs_per_s_1node"] for r in rows]
    # Quality is (weakly) monotone in α; throughput strictly falls.
    assert bleu[1] >= bleu[0] - 0.5
    assert bleu[-1] >= bleu[0] - 0.5
    assert throughput[0] > throughput[-1]
    # The budget is always respected.
    assert all(r["routed_fraction"] <= r["alpha"] + 1e-9 for r in rows)
