"""Table 1: accuracy on born-digital documents (all parsers + AdaParse).

Paper reference (Table 1, %): Marker 96.7/47.5, Nougat 93.0/48.1,
PyMuPDF 91.3/51.9, pypdf 92.0/43.6, GROBID 81.0/26.5, Tesseract 91.3/48.8,
AdaParse 91.5/52.1 (coverage/BLEU), with AdaParse best on BLEU, ROUGE and AT.
The reproduction checks the same orderings on the synthetic substrate.
"""

from __future__ import annotations

from repro.evaluation.reporting import print_table
from repro.evaluation.tables import table1_born_digital


def test_table1_born_digital(benchmark, experiment_context, harness_config, measured_store):
    table = benchmark.pedantic(
        lambda: table1_born_digital(experiment_context, harness_config),
        rounds=1,
        iterations=1,
    )
    print_table(table)
    measured_store.record_table("TABLE1", table)
    bleu = {row["Parser"]: row["BLEU"] for row in table.rows}
    coverage = {row["Parser"]: row["Coverage"] for row in table.rows}
    # Headline claims of the paper's Table 1.
    assert bleu["adaparse_llm"] >= max(v for k, v in bleu.items() if k != "adaparse_llm") - 2.0
    assert bleu["pymupdf"] > bleu["pypdf"] > bleu["grobid"]
    assert min(coverage, key=coverage.get) == "grobid"
    assert max(coverage, key=coverage.get) in ("marker", "tesseract")
