"""Ablations of the executor design choices (Section 5.2 / 6.1).

* **Warm-started model workers** — persisting ViT weights on each GPU across
  task boundaries vs reloading them per task (the paper's Parsl modification).
* **Page batch size B_p** — the number of pages processed per GPU invocation;
  the paper settles on B_p = 10 as the throughput/memory sweet spot.
* **Archive aggregation** — staging many small documents per shared-filesystem
  read vs reading documents individually.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.hpc.workload import WorkloadModel
from repro.parsers.base import ParserCost
from repro.parsers.vit import NougatSim
from repro.utils.tables import Table


def test_ablation_warm_start(benchmark, registry, measured_store):
    def run() -> dict[str, float]:
        out = {}
        for warm in (True, False):
            campaign = ParsingCampaign(CampaignConfig(n_nodes=1, warm_start=warm))
            result = campaign.run_parser(registry.get("nougat"), n_documents=200)
            out["warm" if warm else "cold"] = result.throughput_docs_per_s
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("nougat single-node throughput (docs/s):", result)
    measured_store.record_mapping(
        "ABLATION_WARMSTART",
        {k: round(v, 3) for k, v in result.items()},
        title="Nougat single-node throughput (docs/s), warm vs cold model start",
    )
    assert result["warm"] > 1.5 * result["cold"]


def test_ablation_page_batch_size(benchmark, measured_store):
    """Larger GPU page batches amortise per-invocation overhead up to memory limits."""

    def run() -> list[dict[str, float]]:
        rows = []
        for pages_per_batch in (1, 5, 10, 20):
            parser = NougatSim()
            # Per-invocation overhead of 0.6 s is amortised over the batch;
            # GPU memory grows with the batch and caps the feasible size.
            per_page = 0.45 + 0.6 / pages_per_batch
            gpu_memory = 3000 + 650 * pages_per_batch
            parser.cost = ParserCost(
                cpu_seconds_per_page=parser.cost.cpu_seconds_per_page,
                gpu_seconds_per_page=per_page,
                gpu_memory_mb=gpu_memory,
                model_load_seconds=parser.cost.model_load_seconds,
                per_document_overhead_seconds=parser.cost.per_document_overhead_seconds,
            )
            campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
            result = campaign.run_parser(parser, n_documents=120)
            rows.append(
                {
                    "pages_per_batch": pages_per_batch,
                    "docs_per_s": result.throughput_docs_per_s,
                    "gpu_memory_mb": gpu_memory,
                    "fits_40gb_a100": float(gpu_memory < 40_000),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(title="Ablation: ViT page batch size", columns=list(rows[0]))
    for row in rows:
        table.add_row(row)
    print()
    print(table.to_text(precision=2))
    measured_store.record_table("ABLATION_BATCHSIZE", table, precision=2)
    throughputs = [r["docs_per_s"] for r in rows]
    # Batching pages helps; all tested sizes stay within A100 memory.
    assert throughputs[2] > throughputs[0]
    assert all(r["fits_40gb_a100"] for r in rows)


def test_ablation_archive_aggregation(benchmark, registry, measured_store):
    """Aggregating documents into archives reduces shared-FS pressure."""

    def run() -> dict[int, float]:
        out = {}
        for docs_per_archive in (1, 16, 64):
            campaign = ParsingCampaign(
                CampaignConfig(n_nodes=16, docs_per_archive=docs_per_archive)
            )
            result = campaign.run_parser(
                registry.get("pymupdf"), n_documents=3200, workload=WorkloadModel(seed=9)
            )
            out[docs_per_archive] = result.throughput_docs_per_s
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("pymupdf 16-node throughput by docs/archive:", {k: round(v, 1) for k, v in result.items()})
    measured_store.record_mapping(
        "ABLATION_ARCHIVE",
        {f"{k} documents per archive": round(v, 1) for k, v in result.items()},
        title="PyMuPDF 16-node throughput (docs/s) by archive aggregation",
    )
    assert result[64] > result[1]
