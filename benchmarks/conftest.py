"""Shared fixtures for the benchmark harness.

The quality-table benchmarks (Tables 1–4) share one expensive
:class:`repro.evaluation.tables.ExperimentContext` (corpus generation,
preference study, selector training); building it once per session keeps the
full suite tractable.  Scale knobs can be overridden through environment
variables so a larger, closer-to-paper run is a one-liner:

``REPRO_BENCH_DOCS=1000 pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.evaluation.harness import HarnessConfig
from repro.evaluation.measured import MeasuredStore
from repro.evaluation.tables import ExperimentScale, build_experiment_context
from repro.parsers.registry import default_registry

#: Where benchmarks record their measured tables/series; ``adaparse-repro
#: fill-experiments`` splices these fragments into EXPERIMENTS.md.
MEASURED_DIR = Path(__file__).resolve().parent.parent / "results" / "measured"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


BENCH_SCALE = ExperimentScale(
    n_documents=_env_int("REPRO_BENCH_DOCS", 240),
    study_pages=_env_int("REPRO_BENCH_STUDY_PAGES", 60),
    pretrain_sentences=_env_int("REPRO_BENCH_PRETRAIN_SENTENCES", 400),
    finetune_epochs=_env_int("REPRO_BENCH_FINETUNE_EPOCHS", 4),
    seed=_env_int("REPRO_BENCH_SEED", 2025),
)

BENCH_HARNESS = HarnessConfig(car_max_chars=1600)


@pytest.fixture(scope="session")
def experiment_context():
    """Corpus, splits, preference study, and both trained engines."""
    return build_experiment_context(BENCH_SCALE)


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def harness_config() -> HarnessConfig:
    return BENCH_HARNESS


@pytest.fixture(scope="session")
def measured_store() -> MeasuredStore:
    """Durable store of measured results (consumed by ``fill-experiments``)."""
    return MeasuredStore(MEASURED_DIR)
