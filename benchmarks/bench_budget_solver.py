"""Appendix C: the α-constrained budget solver and its per-batch optimality gap.

Paper reference: AdaParse solves the budgeted assignment per batch (k = 256)
by sorting documents by expected accuracy improvement; the optimality gap
versus the global solution is negligible at that batch size.  This benchmark
measures the solver's own speed (it must be cheap relative to parsing) and the
gap as a function of batch size.
"""

from __future__ import annotations

import numpy as np

from repro.core.budget import alpha_for_budget, optimality_gap, select_within_budget


def _improvements(n: int = 20_000, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    # Most documents see no improvement; a small tail benefits a lot.
    scores = rng.normal(loc=-0.02, scale=0.03, size=n)
    tail = rng.random(n) < 0.08
    scores[tail] = rng.uniform(0.1, 0.6, size=int(tail.sum()))
    return scores


def test_budget_solver_throughput(benchmark):
    improvements = _improvements()
    plan = benchmark(lambda: select_within_budget(improvements, alpha=0.05, batch_size=256))
    assert plan.expensive_fraction <= 0.05 + 1e-9
    assert plan.n_expensive > 0


def test_budget_solver_optimality_gap(benchmark, measured_store):
    improvements = _improvements()

    def gaps() -> dict[int, float]:
        return {
            batch_size: optimality_gap(improvements, alpha=0.05, batch_size=batch_size)
            for batch_size in (16, 64, 256, 1024)
        }

    result = benchmark.pedantic(gaps, rounds=1, iterations=1)
    print("per-batch vs global optimality gap by batch size:", result)
    measured_store.record_mapping(
        "BUDGET",
        {f"optimality gap at batch size {k}": round(v, 5) for k, v in result.items()},
        title="Per-batch vs global optimality gap (α = 5 %, 20 000 documents)",
    )
    # The paper's operating point (256) leaves only a small gap, and the gap
    # shrinks as batches grow (tiny batches can round ⌊αk⌋ down to zero).
    assert result[256] < 0.10
    assert result[1024] < result[256] < result[16] + 1e-9

    # The closed-form α bound matches the paper's 5 % operating point when the
    # budget is 1.5× the all-default cost and Nougat is ~135× more expensive.
    alpha = alpha_for_budget(
        total_budget_seconds=1.5 * 20_000 * 0.25,
        n_documents=20_000,
        default_cost_seconds=0.25,
        expensive_cost_seconds=0.25 * 135,
    )
    print(f"alpha implied by a 1.5x budget: {alpha:.4f}")
    assert 0.003 < alpha < 0.2
