"""Micro-benchmark: web-corpus ingestion throughput of the document sources.

Materialises a synthetic crawl dump (per-domain directories of HTML and
Markdown pages, with a fraction of pages mirrored across domains) and runs
it through :class:`repro.pipeline.ParsePipeline` via
:class:`repro.documents.sources.CrawlDumpSource`:

* **extract** — source streaming alone (HTML/Markdown extraction, dedup);
* **cold** — full pipeline pass with ``cache=readwrite`` on an empty cache;
* **warm** — the same request again (every surviving page a cache hit).

Asserts the ingestion acceptance criteria: planted cross-domain mirrors are
fully deduplicated, the warm pass serves every document from the cache, and
no document routes to a PDF-only parser.

Run under pytest (records a measured table for ``fill-experiments``)::

    pytest benchmarks/bench_ingest_throughput.py --benchmark-only

or standalone (the CI regression-gate invocation)::

    PYTHONPATH=src python benchmarks/bench_ingest_throughput.py --json BENCH_ingest.json

The ``--json`` payload carries machine-portable ratios under ``metrics``;
``benchmarks/check_regression.py`` compares them against the committed
baseline in ``benchmarks/baselines/BENCH_ingest.json``.
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path
from time import perf_counter

from repro.cache import ParseCache
from repro.documents.sources import CrawlDumpSource
from repro.pipeline import ParsePipeline, ParseRequest
from repro.utils.tables import Table

N_DOMAINS = 6
PAGES_PER_DOMAIN = 25
MIRROR_EVERY = 5  # every 5th page of a domain mirrors domain 0's page
BATCH_SIZE = 25

_HTML_PAGE = """<html>
<head><title>{title}</title><style>p {{ margin: 0; }}</style></head>
<body>
<h1>{title}</h1>
<p>Paragraph one of page {index} discusses adaptive parser selection over
web-scale scientific corpora, with enough prose to exercise extraction.</p>
<h2>Methods</h2>
<p>Paragraph two describes the evaluation protocol of run {index} in a few
more sentences so each page carries a realistic amount of text.</p>
<ul><li>first finding of page {index}</li><li>second finding</li></ul>
</body>
</html>
"""

_MD_PAGE = """# {title}

Opening paragraph of Markdown page {index}, mirroring the HTML prose volume.

## Results

- observation one of page {index}
- observation two

Closing paragraph with a sentence of filler so token counts stay realistic.
"""


def build_crawl_dump(root: Path, n_domains: int, pages_per_domain: int) -> int:
    """Write the synthetic dump; returns the number of planted mirror pages."""
    mirrors = 0
    for d in range(n_domains):
        domain = root / f"site-{d}.example"
        domain.mkdir(parents=True, exist_ok=True)
        for p in range(pages_per_domain):
            mirrored = d > 0 and p % MIRROR_EVERY == 0
            # Mirrored pages reuse domain 0's content verbatim (the same
            # page crawled under several domains); the rest are unique.
            origin_d, origin_p = (0, p) if mirrored else (d, p)
            mirrors += mirrored
            title = f"Domain {origin_d} Page {origin_p}"
            index = origin_d * pages_per_domain + origin_p
            if p % 3 == 2:
                page = _MD_PAGE.format(title=title, index=index)
                (domain / f"page-{p}.md").write_text(page, encoding="utf-8")
            else:
                page = _HTML_PAGE.format(title=title, index=index)
                (domain / f"page-{p}.html").write_text(page, encoding="utf-8")
    return mirrors


def run_ingest_sweep(
    work_dir: str | Path,
    n_domains: int = N_DOMAINS,
    pages_per_domain: int = PAGES_PER_DOMAIN,
    batch_size: int = BATCH_SIZE,
    registry=None,
) -> dict[str, object]:
    """Extract → cold → warm sweep over a synthetic crawl dump (and asserts)."""
    work_dir = Path(work_dir)
    dump = work_dir / "crawl"
    mirrors = build_crawl_dump(dump, n_domains, pages_per_domain)
    n_files = n_domains * pages_per_domain
    source = CrawlDumpSource(dump)

    started = perf_counter()
    documents = list(source.iter_documents())
    extract_s = perf_counter() - started
    n_unique = len(documents)
    # Every planted cross-domain mirror must be dropped, nothing else.
    assert n_unique == n_files - mirrors, (
        f"dedup kept {n_unique} of {n_files} pages; expected "
        f"{n_files - mirrors} ({mirrors} mirrors planted)"
    )

    pipeline = ParsePipeline(registry, cache=ParseCache(work_dir / "parse-cache"))

    def run(policy: str):
        request = ParseRequest(
            parser="pymupdf", source=source, batch_size=batch_size, cache=policy
        )
        started = perf_counter()
        report = pipeline.run(request)
        return report, perf_counter() - started

    cold, cold_s = run("readwrite")
    warm, warm_s = run("readwrite")

    assert cold.n_documents == n_unique
    assert all(result.succeeded for result in cold.results)
    assert warm.cache.hits == n_unique and warm.cache.misses == 0
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "files on disk": n_files,
        "unique documents": n_unique,
        "mirrors dropped": n_files - n_unique,
        "extract docs/s": n_unique / extract_s,
        "cold (readwrite) docs/s": n_unique / cold_s,
        "warm (readwrite) docs/s": n_unique / warm_s,
        "warm speedup vs cold": speedup,
        "warm hit rate": warm.cache.hit_rate,
        "dedup rate": (n_files - n_unique) / mirrors if mirrors else 1.0,
    }


def row_to_metrics(row: dict[str, object]) -> dict[str, float]:
    """The machine-portable metrics the CI regression gate compares.

    ``warm_speedup_vs_cold`` is a same-machine ratio; ``warm_hit_rate`` and
    ``crawl_dedup_rate`` are exact correctness ratios (1.0 unless the cache
    or the mirror dedup is broken).  All metrics are higher-is-better.
    """
    return {
        "warm_speedup_vs_cold": float(row["warm speedup vs cold"]),
        "warm_hit_rate": float(row["warm hit rate"]),
        "crawl_dedup_rate": float(row["dedup rate"]),
    }


def _row_to_table(row: dict[str, object], n_domains: int, pages: int) -> Table:
    table = Table(
        title=f"Ingest throughput ({n_domains} domains x {pages} pages)",
        columns=list(row),
    )
    table.add_row(row)
    return table


def test_ingest_throughput(benchmark, registry, measured_store, tmp_path):
    row = benchmark.pedantic(
        run_ingest_sweep,
        args=(tmp_path,),
        kwargs={"registry": registry},
        rounds=1,
        iterations=1,
    )
    table = _row_to_table(row, N_DOMAINS, PAGES_PER_DOMAIN)
    print()
    print(table.to_text(precision=1))
    measured_store.record_table("INGEST_THROUGHPUT", table, precision=1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domains", type=int, default=N_DOMAINS)
    parser.add_argument("--pages", type=int, default=PAGES_PER_DOMAIN)
    parser.add_argument("--batch-size", type=int, default=BATCH_SIZE)
    parser.add_argument(
        "--json",
        type=str,
        default="",
        metavar="PATH",
        help="write the regression-gate metrics payload here",
    )
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as work_dir:
        row = run_ingest_sweep(
            work_dir,
            n_domains=args.domains,
            pages_per_domain=args.pages,
            batch_size=args.batch_size,
        )
    print(_row_to_table(row, args.domains, args.pages).to_text(precision=1))
    if args.json:
        payload = {
            "benchmark": "ingest_throughput",
            "config": {
                "n_domains": args.domains,
                "pages_per_domain": args.pages,
                "batch_size": args.batch_size,
            },
            "metrics": row_to_metrics(row),
            "row": row,
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        print(f"wrote metrics to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
