"""Churn properties: joins and leaves disrupt the minimal shard set.

The rendezvous-hashing property under test (satellite of the elastic PR):
adding or removing one worker re-places only the shards that prefer the
changed worker — about ``1/n`` of them — and a shard that already
completed (or is in flight) never moves at all.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.protocol import rank_workers
from repro.cluster.worker import WorkerDaemon
from repro.parsers.base import Parser, ParserCost
from repro.parsers.registry import default_registry
from repro.pipeline import ParsePipeline
from repro.utils.hashing import stable_hash_hex


class TortoiseParser(Parser):
    """Deterministic, slow-enough-to-queue parser double."""

    name = "tortoise"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.001)

    def __init__(self, sleep_seconds: float = 0.05) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:p{i}" for i in range(document.n_pages)]


def tortoise_pipeline(registry, sleep_seconds: float = 0.05) -> ParsePipeline:
    pipeline = ParsePipeline(registry)
    pipeline.engines["tortoise"] = TortoiseParser(sleep_seconds)
    return pipeline


@pytest.fixture(scope="module")
def registry():
    return default_registry()


# ---------------------------------------------------------------------- #
# Pure rendezvous properties (no sockets)
# ---------------------------------------------------------------------- #
N_KEYS = 400


def placement_keys(n: int = N_KEYS) -> list[str]:
    return [stable_hash_hex("churn-key", i) for i in range(n)]


def top_choice(key: str, workers: list[str]) -> str:
    return rank_workers(key, workers)[0]


class TestRendezvousChurnProperties:
    def test_join_moves_at_most_the_expected_fraction(self):
        workers = [f"w{i}" for i in range(4)]
        before = {key: top_choice(key, workers) for key in placement_keys()}
        grown = workers + ["w4"]
        after = {key: top_choice(key, grown) for key in placement_keys()}
        moved = [key for key in before if before[key] != after[key]]
        # Expected fraction is 1/5; allow generous sampling slack but stay
        # far under the 100% a modulo scheme would shuffle.
        assert len(moved) / N_KEYS <= 2.0 * (1 / len(grown))
        assert len(moved) > 0  # the newcomer does take a share

    def test_every_moved_shard_moves_to_the_newcomer(self):
        workers = [f"w{i}" for i in range(4)]
        grown = workers + ["w4"]
        for key in placement_keys():
            old = top_choice(key, workers)
            new = top_choice(key, grown)
            if new != old:
                assert new == "w4"

    def test_leave_moves_only_the_departed_workers_shards(self):
        workers = [f"w{i}" for i in range(4)]
        shrunk = [w for w in workers if w != "w2"]
        for key in placement_keys():
            old = top_choice(key, workers)
            new = top_choice(key, shrunk)
            if old != "w2":
                # Shards on the survivors never move.
                assert new == old

    def test_join_then_leave_is_identity(self):
        workers = [f"w{i}" for i in range(4)]
        for key in placement_keys(100):
            assert top_choice(key, workers) == top_choice(key, list(workers))


# ---------------------------------------------------------------------- #
# Live-coordinator churn (sockets, queued shards, completions)
# ---------------------------------------------------------------------- #
class TestCoordinatorChurn:
    def test_mid_run_join_rebalances_only_queued_shards(self, registry):
        """A join re-places ≤ the queued set and never a completed shard."""
        from repro.cluster.backend import worker_spec_for

        first = WorkerDaemon(
            name="churn-0", pipeline=tortoise_pipeline(registry)
        ).start()
        second = WorkerDaemon(
            name="churn-1", pipeline=tortoise_pipeline(registry)
        ).start()
        from repro.documents.corpus import CorpusConfig, build_corpus

        documents = list(
            build_corpus(CorpusConfig(n_documents=24, seed=3, min_pages=1, max_pages=1))
        )
        pipeline = tortoise_pipeline(registry)
        spec = worker_spec_for(pipeline.engines["tortoise"].parse_with_telemetry)
        coordinator = ClusterCoordinator([first.address], window=1).connect()
        try:
            futures = [
                coordinator.submit(spec, documents[i : i + 2])
                for i in range(0, len(documents), 2)
            ]
            # Wait until at least one shard completed on the first worker,
            # so the no-completed-shard-moves property has a witness.
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if coordinator.counters["shards_completed"] >= 1:
                    break
                time.sleep(0.005)
            completed_before = coordinator.counters["shards_completed"]
            queued_before = sum(w["queued"] for w in coordinator.workers())
            coordinator.add_worker(second.address)
            rebalanced = coordinator.counters["shards_rebalanced"]
            # Only queued shards may move; completed and in-flight never do.
            assert rebalanced <= queued_before
            outputs = [future.result(timeout=60) for future in futures]
            assert all(len(results) == 2 for results, _ in outputs)
            # Exactly-once: every submitted shard completed exactly once
            # (replays of completed work would show up as duplicates).
            assert (
                coordinator.counters["shards_completed"]
                == coordinator.counters["shards_submitted"]
            )
            assert coordinator.counters["shards_completed"] >= completed_before
            assert coordinator.counters["workers_seen"] == 2
        finally:
            coordinator.close()
            first.stop()
            second.stop()

    def test_graceful_leave_requeues_and_completes_everything(self, registry):
        from repro.cluster.backend import worker_spec_for
        from repro.documents.corpus import CorpusConfig, build_corpus

        workers = [
            WorkerDaemon(
                name=f"leave-{i}", pipeline=tortoise_pipeline(registry)
            ).start()
            for i in range(2)
        ]
        documents = list(
            build_corpus(CorpusConfig(n_documents=16, seed=5, min_pages=1, max_pages=1))
        )
        pipeline = tortoise_pipeline(registry)
        spec = worker_spec_for(pipeline.engines["tortoise"].parse_with_telemetry)
        coordinator = ClusterCoordinator(
            [w.address for w in workers], window=1
        ).connect()
        try:
            futures = [
                coordinator.submit(spec, documents[i : i + 2])
                for i in range(0, len(documents), 2)
            ]
            coordinator.remove_worker("leave-1")
            outputs = [future.result(timeout=60) for future in futures]
            assert all(len(results) == 2 for results, _ in outputs)
            assert (
                coordinator.counters["shards_completed"]
                == coordinator.counters["shards_submitted"]
            )
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if coordinator.counters["workers_left"] == 1:
                    break
                time.sleep(0.01)
            assert coordinator.counters["workers_left"] == 1
            assert coordinator.counters["workers_lost"] == 0
        finally:
            coordinator.close()
            for worker in workers:
                worker.stop()

    def test_remove_unknown_worker_raises(self, registry):
        from repro.cluster.coordinator import ClusterError

        fixed = WorkerDaemon(pipeline=ParsePipeline(registry)).start()
        coordinator = ClusterCoordinator([fixed.address]).connect()
        try:
            with pytest.raises(ClusterError, match="no alive worker"):
                coordinator.remove_worker("nobody")
        finally:
            coordinator.close()
            fixed.stop()
