"""Autoscaler loop tests: fake launcher, injected clock, no real processes."""

from __future__ import annotations

import pytest

from repro.elastic.autoscaler import Autoscaler, signals_from_coordinator
from repro.elastic.policy import AutoscalerPolicy, ScalingSignals


class FakeLauncher:
    """Records spawn/drain/close calls; optionally fails on demand."""

    def __init__(self, fail_spawn: bool = False) -> None:
        self.fail_spawn = fail_spawn
        self.spawned: list[str] = []
        self.drained: list[str] = []
        self.closed = False

    def spawn(self) -> str:
        if self.fail_spawn:
            raise OSError("spawn refused")
        worker_id = f"fake-{len(self.spawned)}"
        self.spawned.append(worker_id)
        return worker_id

    def drain(self, worker_id: str) -> None:
        self.drained.append(worker_id)

    def close(self) -> None:
        self.closed = True


def autoscaler(launcher=None, signal_holder=None, **policy_kwargs):
    defaults = dict(
        min_workers=1,
        max_workers=4,
        scale_up_backlog=2.0,
        backlog_sustain_seconds=2.0,
        idle_sustain_seconds=5.0,
        cooldown_seconds=0.0,
    )
    defaults.update(policy_kwargs)
    holder = signal_holder if signal_holder is not None else {}
    holder.setdefault(
        "signals", ScalingSignals(queue_depth=0, in_flight=0, workers_alive=1)
    )
    return Autoscaler(
        AutoscalerPolicy(**defaults),
        lambda: holder["signals"],
        launcher if launcher is not None else FakeLauncher(),
    )


def backlogged(alive=1):
    return ScalingSignals(queue_depth=10 * alive, in_flight=0, workers_alive=alive)


def idle(alive=2):
    return ScalingSignals(queue_depth=0, in_flight=0, workers_alive=alive)


class TestTick:
    def test_sustained_backlog_spawns_a_worker(self):
        launcher = FakeLauncher()
        holder = {"signals": backlogged()}
        scaler = autoscaler(launcher, holder)
        assert scaler.tick(now=0.0) == "hold"
        assert scaler.tick(now=2.5) == "up"
        assert launcher.spawned == ["fake-0"]
        assert scaler.managed == ["fake-0"]
        assert scaler.counters["scale_up"] == 1
        assert scaler.stats()["managed_workers"] == 1

    def test_sustained_idle_drains_most_recent_managed_worker(self):
        launcher = FakeLauncher()
        holder = {"signals": backlogged()}
        scaler = autoscaler(launcher, holder)
        scaler.tick(now=0.0)
        scaler.tick(now=2.5)  # up → fake-0
        scaler.tick(now=3.0)
        scaler.tick(now=5.5)  # up → fake-1
        holder["signals"] = idle(alive=3)
        assert scaler.tick(now=6.0) == "hold"
        assert scaler.tick(now=11.5) == "down"
        # LIFO: the newest spawn goes first.
        assert launcher.drained == ["fake-1"]
        assert scaler.managed == ["fake-0"]
        assert scaler.counters["scale_down"] == 1

    def test_down_with_nothing_managed_becomes_hold(self):
        # Fixed-list and --join workers are somebody else's capacity: the
        # autoscaler only ever drains workers it launched.
        launcher = FakeLauncher()
        holder = {"signals": idle(alive=3)}
        scaler = autoscaler(launcher, holder)
        scaler.tick(now=0.0)
        assert scaler.tick(now=6.0) == "hold"
        assert launcher.drained == []

    def test_spawn_failure_counts_and_does_not_raise(self):
        launcher = FakeLauncher(fail_spawn=True)
        holder = {"signals": backlogged()}
        scaler = autoscaler(launcher, holder)
        scaler.tick(now=0.0)
        assert scaler.tick(now=2.5) == "up"  # decided up; the act failed
        assert scaler.managed == []
        assert scaler.counters["scale_errors"] == 1

    def test_events_record_direction_and_telemetry(self):
        launcher = FakeLauncher()
        holder = {"signals": backlogged()}
        scaler = autoscaler(launcher, holder)
        scaler.tick(now=0.0)
        scaler.tick(now=2.5)
        (event,) = scaler.stats()["events"]
        assert event["direction"] == "up"
        assert event["worker_id"] == "fake-0"
        assert event["queue_depth"] == 10

    def test_stop_closes_the_launcher(self):
        launcher = FakeLauncher()
        scaler = autoscaler(launcher)
        scaler.start()
        scaler.stop()
        assert launcher.closed

    def test_stop_can_keep_managed_workers(self):
        launcher = FakeLauncher()
        scaler = autoscaler(launcher)
        scaler.start()
        scaler.stop(drain_managed=False)
        assert not launcher.closed

    def test_double_start_refused(self):
        scaler = autoscaler()
        scaler.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                scaler.start()
        finally:
            scaler.stop()


class FakeCoordinator:
    """Duck-typed coordinator surface `signals_from_coordinator` samples."""

    def __init__(self, workers, last_batch_seconds=0.0):
        self._workers = workers
        self.last_batch_seconds = last_batch_seconds

    def workers(self):
        return self._workers


class TestSignalsFromCoordinator:
    def test_sums_over_alive_non_draining_workers(self):
        coordinator = FakeCoordinator(
            [
                {"alive": True, "draining": False, "queued": 3, "in_flight": 1},
                {"alive": True, "draining": True, "queued": 9, "in_flight": 2},
                {"alive": False, "draining": False, "queued": 7, "in_flight": 7},
                {"alive": True, "draining": False, "queued": 2, "in_flight": 0},
            ],
            last_batch_seconds=1.25,
        )
        sampled = signals_from_coordinator(coordinator)
        assert sampled.workers_alive == 2
        assert sampled.queue_depth == 5
        assert sampled.in_flight == 1
        assert sampled.batch_latency_seconds == 1.25
