"""Membership tests: the registry, and live join/leave on a real coordinator."""

from __future__ import annotations

import socket
import time

import pytest

from repro.cluster import protocol
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.protocol import MessageChannel
from repro.cluster.worker import WorkerDaemon
from repro.elastic.membership import MembershipListener, MembershipRegistry
from repro.parsers.registry import default_registry
from repro.pipeline import ParsePipeline


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestMembershipRegistry:
    def test_join_then_leave_lifecycle(self):
        members = MembershipRegistry()
        record = members.record_join(
            "w0", "127.0.0.1:9101", source="join", tags={"gpu": True}
        )
        assert record.state == "alive"
        members.mark_draining("w0")
        assert members.get("w0").state == "draining"
        members.record_leave("w0")
        assert members.get("w0").state == "left"
        assert members.get("w0").ended_at is not None
        assert members.counters == {"joined": 1, "left": 1, "died": 0}

    def test_death_recorded_once(self):
        members = MembershipRegistry()
        members.record_join("w0", "a:1")
        members.record_death("w0")
        members.record_death("w0")  # second detection path: no double count
        members.record_leave("w0")  # a dead worker cannot also leave
        assert members.counters == {"joined": 1, "left": 0, "died": 1}
        assert members.get("w0").state == "dead"

    def test_snapshot_and_states(self):
        members = MembershipRegistry()
        members.record_join("w0", "a:1", source="fixed")
        members.record_join("w1", "a:2", source="autoscaler", tags={"slots": 2})
        members.record_death("w1")
        snapshot = {record["worker_id"]: record for record in members.snapshot()}
        assert snapshot["w1"]["source"] == "autoscaler"
        assert snapshot["w1"]["tags"] == {"slots": 2}
        assert members.states() == {"alive": 1, "draining": 0, "left": 0, "dead": 1}

    def test_tags_of_unknown_worker_is_empty(self):
        assert MembershipRegistry().tags_of("nobody") == {}


def _announce(address: str, message: dict) -> dict:
    host, _, port = address.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=5.0)
    channel = MessageChannel(sock)
    try:
        channel.send(message)
        reply = channel.recv()
    finally:
        channel.close()
    assert reply is not None
    return reply


def _wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {message}")


class TestMembershipListener:
    def test_worker_joins_a_running_coordinator(self, registry):
        fixed = WorkerDaemon(name="fixed-0", pipeline=ParsePipeline(registry)).start()
        joiner = WorkerDaemon(name="joiner-0", pipeline=ParsePipeline(registry),
                              tags={"gpu": "true"}).start()
        coordinator = ClusterCoordinator([fixed.address]).connect()
        listener = MembershipListener(coordinator).start()
        try:
            worker_id = joiner.join(listener.address, retries=3)
            assert worker_id == "joiner-0"
            workers = {w["worker_id"]: w for w in coordinator.workers()}
            assert workers["joiner-0"]["alive"]
            assert workers["joiner-0"]["source"] == "join"
            assert workers["joiner-0"]["tags"]["gpu"] is True
            assert coordinator.membership.get("joiner-0").source == "join"
            assert coordinator.counters["workers_seen"] == 2
        finally:
            listener.stop()
            coordinator.close()
            fixed.stop()
            joiner.stop()

    def test_leave_drains_gracefully_not_as_a_death(self, registry):
        workers = [
            WorkerDaemon(name=f"m-{i}", pipeline=ParsePipeline(registry)).start()
            for i in range(2)
        ]
        coordinator = ClusterCoordinator([w.address for w in workers]).connect()
        listener = MembershipListener(coordinator).start()
        try:
            assert workers[1].leave(listener.address)
            _wait_for(
                lambda: coordinator.counters["workers_left"] == 1,
                message="graceful leave to be recorded",
            )
            assert coordinator.counters["workers_lost"] == 0
            assert coordinator.membership.get("m-1").state == "left"
            assert coordinator.stats()["workers_alive"] == 1
        finally:
            listener.stop()
            coordinator.close()
            for worker in workers:
                worker.stop()

    def test_join_with_wrong_protocol_version_refused(self, registry):
        fixed = WorkerDaemon(pipeline=ParsePipeline(registry)).start()
        coordinator = ClusterCoordinator([fixed.address]).connect()
        listener = MembershipListener(coordinator).start()
        try:
            reply = _announce(
                listener.address,
                {"type": protocol.JOIN, "protocol": 999, "address": "127.0.0.1:1"},
            )
            assert reply["type"] == protocol.JOIN_ACK
            assert reply["accepted"] is False
            assert "version mismatch" in reply["message"]
        finally:
            listener.stop()
            coordinator.close()
            fixed.stop()

    def test_join_with_unreachable_worker_refused(self, registry):
        fixed = WorkerDaemon(pipeline=ParsePipeline(registry)).start()
        coordinator = ClusterCoordinator(
            [fixed.address], connect_timeout=1.0
        ).connect()
        listener = MembershipListener(coordinator).start()
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        try:
            reply = _announce(
                listener.address,
                {
                    "type": protocol.JOIN,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "address": f"127.0.0.1:{free_port}",
                },
            )
            assert reply["accepted"] is False
            assert coordinator.counters["workers_seen"] == 1
        finally:
            listener.stop()
            coordinator.close()
            fixed.stop()

    def test_leave_of_unknown_worker_refused(self, registry):
        fixed = WorkerDaemon(pipeline=ParsePipeline(registry)).start()
        coordinator = ClusterCoordinator([fixed.address]).connect()
        listener = MembershipListener(coordinator).start()
        try:
            reply = _announce(
                listener.address, {"type": protocol.LEAVE, "worker_id": "nobody"}
            )
            assert reply["type"] == protocol.LEAVE_ACK
            assert reply["accepted"] is False
        finally:
            listener.stop()
            coordinator.close()
            fixed.stop()

    def test_status_reports_counters_workers_membership(self, registry):
        fixed = WorkerDaemon(name="st-0", pipeline=ParsePipeline(registry)).start()
        coordinator = ClusterCoordinator([fixed.address]).connect()
        listener = MembershipListener(coordinator).start()
        try:
            reply = _announce(listener.address, {"type": protocol.STATUS})
            assert reply["type"] == protocol.STATUS_RESULT
            assert reply["counters"]["workers_seen"] == 1
            assert reply["workers"][0]["worker_id"] == "st-0"
            assert reply["membership"][0]["state"] == "alive"
            assert reply["membership_counters"]["joined"] == 1
        finally:
            listener.stop()
            coordinator.close()
            fixed.stop()

    def test_unknown_message_type_answered_with_error(self, registry):
        fixed = WorkerDaemon(pipeline=ParsePipeline(registry)).start()
        coordinator = ClusterCoordinator([fixed.address]).connect()
        listener = MembershipListener(coordinator).start()
        try:
            reply = _announce(listener.address, {"type": "nonsense"})
            assert reply["type"] == protocol.ERROR
        finally:
            listener.stop()
            coordinator.close()
            fixed.stop()

    def test_join_before_listener_exists_retries_then_errors(self, registry):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        joiner = WorkerDaemon(pipeline=ParsePipeline(registry)).start()
        try:
            from repro.cluster.protocol import ProtocolError

            with pytest.raises(ProtocolError, match="could not announce"):
                joiner.join(
                    f"127.0.0.1:{free_port}", retries=2, retry_delay=0.05
                )
        finally:
            joiner.stop()

    def test_join_requires_started_worker(self, registry):
        daemon = WorkerDaemon(pipeline=ParsePipeline(registry))
        with pytest.raises(RuntimeError, match="start the worker"):
            daemon.join("127.0.0.1:1")
