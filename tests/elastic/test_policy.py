"""Unit tests of the pure elastic decision functions (no sockets, no clocks)."""

from __future__ import annotations

import pytest

from repro.elastic.policy import (
    HEAVYWEIGHT_PARSERS,
    AutoscalerPolicy,
    ScalingSignals,
    coerce_tag,
    coerce_tags,
    constraints_for_parser,
    satisfies,
    tags_from_capabilities,
)


class TestTags:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("true", True),
            ("YES", True),
            ("off", False),
            ("8", 8),
            (" large ", "large"),
            (True, True),
            (3, 3),
        ],
    )
    def test_coerce_tag(self, raw, expected):
        assert coerce_tag(raw) == expected

    def test_coerce_tags_none(self):
        assert coerce_tags(None) == {}

    def test_tags_from_capabilities_folds_in_implicit(self):
        tags = tags_from_capabilities(
            {"cache": True, "slots": 4, "tags": {"gpu": "true"}}
        )
        assert tags == {"gpu": True, "cache": True, "slots": 4}

    def test_explicit_tags_win_over_implicit(self):
        tags = tags_from_capabilities({"cache": True, "tags": {"cache": "false"}})
        assert tags["cache"] is False


class TestSatisfies:
    def test_empty_constraints_always_satisfied(self):
        assert satisfies({}, None)
        assert satisfies({}, {})

    def test_boolean_constraint_is_truthiness(self):
        assert satisfies({"gpu": True}, {"gpu": True})
        assert not satisfies({"gpu": False}, {"gpu": True})
        assert not satisfies({}, {"gpu": True})
        assert satisfies({}, {"gpu": False})

    def test_numeric_constraint_is_minimum(self):
        assert satisfies({"slots": 8}, {"slots": 4})
        assert satisfies({"slots": 4}, {"slots": 4})
        assert not satisfies({"slots": 2}, {"slots": 4})
        assert not satisfies({}, {"slots": 1})

    def test_string_constraint_is_equality(self):
        assert satisfies({"cpu_class": "large"}, {"cpu_class": "large"})
        assert not satisfies({"cpu_class": "small"}, {"cpu_class": "large"})

    def test_wire_strings_normalise_before_comparison(self):
        # Tags arrive as CLI/wire strings; "true" and True must match.
        assert satisfies({"gpu": "true"}, {"gpu": True})
        assert satisfies({"slots": "8"}, {"slots": 4})


class TestConstraintsForParser:
    def test_heavyweight_parsers_want_gpu(self):
        for name in HEAVYWEIGHT_PARSERS:
            assert constraints_for_parser(name) == {"gpu": True}

    def test_lightweight_parsers_run_anywhere(self):
        assert constraints_for_parser("pymupdf") == {}
        assert constraints_for_parser("pypdf") == {}


def signals(queue=0, in_flight=0, alive=1):
    return ScalingSignals(
        queue_depth=queue, in_flight=in_flight, workers_alive=alive
    )


def policy(**kwargs):
    defaults = dict(
        min_workers=1,
        max_workers=4,
        scale_up_backlog=2.0,
        backlog_sustain_seconds=2.0,
        idle_sustain_seconds=10.0,
        cooldown_seconds=5.0,
    )
    defaults.update(kwargs)
    return AutoscalerPolicy(**defaults)


class TestAutoscalerPolicy:
    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="min_workers"):
            policy(min_workers=-1)
        with pytest.raises(ValueError, match="max_workers"):
            policy(min_workers=3, max_workers=2)

    def test_below_floor_scales_up_immediately(self):
        # No sustain window, no cooldown: capacity below the floor is an
        # emergency, not a trend.
        assert policy().decide(signals(alive=0), now=0.0) == "up"

    def test_backlog_must_sustain_before_scale_up(self):
        p = policy()
        assert p.decide(signals(queue=10, alive=1), now=0.0) == "hold"
        assert p.decide(signals(queue=10, alive=1), now=1.0) == "hold"
        assert p.decide(signals(queue=10, alive=1), now=2.5) == "up"

    def test_backlog_window_resets_when_backlog_clears(self):
        p = policy()
        assert p.decide(signals(queue=10, alive=1), now=0.0) == "hold"
        assert p.decide(signals(queue=0, in_flight=1, alive=1), now=1.0) == "hold"
        # Backlog returns: the sustain window starts over.
        assert p.decide(signals(queue=10, alive=1), now=1.5) == "hold"
        assert p.decide(signals(queue=10, alive=1), now=3.0) == "hold"
        assert p.decide(signals(queue=10, alive=1), now=4.0) == "up"

    def test_backlog_is_per_worker(self):
        p = policy(scale_up_backlog=2.0)
        # 6 queued over 4 alive = 1.5/worker: below threshold.
        assert p.decide(signals(queue=6, alive=4), now=0.0) == "hold"
        assert p.decide(signals(queue=6, alive=4), now=10.0) == "hold"

    def test_max_workers_caps_scale_up(self):
        p = policy(max_workers=2)
        assert p.decide(signals(queue=50, alive=2), now=0.0) == "hold"
        assert p.decide(signals(queue=50, alive=2), now=60.0) == "hold"

    def test_cooldown_spaces_scale_ups(self):
        p = policy()
        assert p.decide(signals(queue=10, alive=1), now=0.0) == "hold"
        assert p.decide(signals(queue=10, alive=1), now=2.5) == "up"
        # Still backlogged, sustain satisfied again — but inside cooldown.
        assert p.decide(signals(queue=10, alive=2), now=5.0) == "hold"
        assert p.decide(signals(queue=10, alive=2), now=7.0) == "hold"
        assert p.decide(signals(queue=10, alive=2), now=10.0) == "up"

    def test_idle_must_sustain_before_scale_down(self):
        p = policy(idle_sustain_seconds=10.0, cooldown_seconds=0.0)
        assert p.decide(signals(alive=2), now=0.0) == "hold"
        assert p.decide(signals(alive=2), now=5.0) == "hold"
        assert p.decide(signals(alive=2), now=10.0) == "down"

    def test_idle_window_resets_on_work(self):
        p = policy(idle_sustain_seconds=10.0, cooldown_seconds=0.0)
        assert p.decide(signals(alive=2), now=0.0) == "hold"
        assert p.decide(signals(in_flight=1, alive=2), now=5.0) == "hold"
        assert p.decide(signals(alive=2), now=6.0) == "hold"
        assert p.decide(signals(alive=2), now=15.0) == "hold"
        assert p.decide(signals(alive=2), now=16.5) == "down"

    def test_never_scales_below_floor(self):
        p = policy(min_workers=1, idle_sustain_seconds=1.0, cooldown_seconds=0.0)
        assert p.decide(signals(alive=1), now=0.0) == "hold"
        assert p.decide(signals(alive=1), now=100.0) == "hold"

    def test_to_json_dict_roundtrips_knobs(self):
        p = policy(min_workers=2, max_workers=8)
        payload = p.to_json_dict()
        assert payload["min_workers"] == 2
        assert payload["max_workers"] == 8
        assert AutoscalerPolicy(**payload).to_json_dict() == payload
