"""Unit tests of the shard ledger: durability, replay, corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.cluster.protocol import decision_to_dict, shard_placement_key
from repro.core.engine import RoutingDecision
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.elastic.ledger import ShardLedger, ledger_key
from repro.parsers.registry import default_registry


@pytest.fixture(scope="module")
def shard_output():
    """One real shard's wire-shaped output (results + decisions)."""
    registry = default_registry()
    parser = registry.get("pymupdf")
    corpus = build_corpus(CorpusConfig(n_documents=3, seed=7, min_pages=1, max_pages=2))
    documents = list(corpus)
    results = [r.to_json_dict() for r in parser.parse_many(documents)]
    decisions = [
        decision_to_dict(
            RoutingDecision(
                doc_id=d.doc_id, chosen_parser="pymupdf", stage="fixed"
            )
        )
        for d in documents
    ]
    from repro.cache.keys import document_content_hash

    placement_key = shard_placement_key(
        [document_content_hash(d) for d in documents]
    )
    return placement_key, parser.config_fingerprint(), results, decisions


class TestLedgerKey:
    def test_combines_placement_and_fingerprint(self):
        assert ledger_key("abc", "f1") == "abc:f1"

    def test_distinct_configs_distinct_keys(self):
        assert ledger_key("abc", "f1") != ledger_key("abc", "f2")


class TestRecordAndReplay:
    def test_roundtrip_rehydrates_results_and_decisions(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        ledger = ShardLedger(tmp_path)
        assert ledger.completed_output(placement_key, fingerprint) is None
        ledger.record(placement_key, fingerprint, results, decisions, worker_id="w0")
        replay = ledger.completed_output(placement_key, fingerprint)
        assert replay is not None
        replayed_results, replayed_decisions = replay
        assert [r.to_json_dict() for r in replayed_results] == results
        assert [decision_to_dict(d) for d in replayed_decisions] == decisions

    def test_persists_across_instances(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        ShardLedger(tmp_path).record(placement_key, fingerprint, results, decisions)
        reopened = ShardLedger(tmp_path)
        assert reopened.loaded_entries == 1
        assert len(reopened) == 1
        assert ledger_key(placement_key, fingerprint) in reopened
        assert reopened.completed_output(placement_key, fingerprint) is not None

    def test_different_fingerprint_misses(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        ledger = ShardLedger(tmp_path)
        ledger.record(placement_key, fingerprint, results, decisions)
        # A changed parser config must re-run, never replay stale output.
        assert ledger.completed_output(placement_key, "other-config") is None
        assert ledger.completed_output("other-batch", fingerprint) is None

    def test_empty_directory_is_empty_ledger(self, tmp_path):
        ledger = ShardLedger(tmp_path / "never-created")
        assert len(ledger) == 0
        assert ledger.loaded_entries == 0
        assert ledger.keys() == []


class TestCorruptionTolerance:
    def test_torn_final_line_is_skipped_not_fatal(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        ledger = ShardLedger(tmp_path)
        ledger.record(placement_key, fingerprint, results, decisions)
        # A kill mid-append leaves a torn line at the tail.
        with ledger.path.open("ab") as handle:
            handle.write(b'{"key": "half-written...')
        reopened = ShardLedger(tmp_path)
        assert len(reopened) == 1
        assert reopened.completed_output(placement_key, fingerprint) is not None

    def test_garbage_and_schema_less_lines_are_skipped(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        path = tmp_path / "ledger.jsonl"
        path.write_bytes(
            b"not json at all\n"
            + json.dumps({"key": "k", "no_results": True}).encode() + b"\n"
        )
        ledger = ShardLedger(tmp_path)
        assert len(ledger) == 0
        # The file stays appendable after skipping bad lines.
        ledger.record(placement_key, fingerprint, results, decisions)
        assert len(ShardLedger(tmp_path)) == 1


class TestCompaction:
    def test_compact_drops_superseded_duplicates(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        ledger = ShardLedger(tmp_path)
        ledger.record(placement_key, fingerprint, results, decisions, worker_id="w0")
        ledger.record(placement_key, fingerprint, results, decisions, worker_id="w1")
        assert len(ledger.path.read_bytes().splitlines()) == 2
        written = ledger.compact()
        assert written == 1
        lines = ledger.path.read_bytes().splitlines()
        assert len(lines) == 1
        # Last writer won.
        assert json.loads(lines[0])["worker_id"] == "w1"
        assert ShardLedger(tmp_path).completed_output(
            placement_key, fingerprint
        ) is not None

    def test_compact_leaves_no_temporaries(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        ledger = ShardLedger(tmp_path)
        ledger.record(placement_key, fingerprint, results, decisions)
        ledger.compact()
        strays = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert strays == []

    def test_stats_shape(self, tmp_path, shard_output):
        placement_key, fingerprint, results, decisions = shard_output
        ledger = ShardLedger(tmp_path)
        ledger.record(placement_key, fingerprint, results, decisions)
        stats = ledger.stats()
        assert stats["entries"] == 1
        assert stats["loaded_entries"] == 0  # recorded this session, not loaded
        assert stats["path"].endswith("ledger.jsonl")
