"""Acceptance tests of the elastic cluster (ISSUE PR 8).

The three survival scenarios, all compared byte-for-byte against an
uninterrupted serial run:

* one worker SIGKILLed mid-campaign (socket severed abruptly);
* a replacement worker joining mid-campaign through the membership
  listener;
* the coordinator killed and the campaign resumed from the shard ledger.

Plus the import-hygiene contract: ``import repro`` must not import
``repro.elastic`` (or ``repro.cluster``) on the serial path.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cluster.worker import WorkerDaemon
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.base import Parser, ParserCost
from repro.parsers.registry import default_registry
from repro.pipeline import ParsePipeline, request_for_documents


class TortoiseParser(Parser):
    """Deterministic, slow-enough-to-interrupt parser double."""

    name = "tortoise"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.001)

    def __init__(self, sleep_seconds: float = 0.03) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:p{i}" for i in range(document.n_pages)]


def tortoise_pipeline(registry, sleep_seconds: float = 0.03) -> ParsePipeline:
    pipeline = ParsePipeline(registry)
    pipeline.engines["tortoise"] = TortoiseParser(sleep_seconds)
    return pipeline


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def corpus_30():
    return build_corpus(CorpusConfig(n_documents=30, seed=11, min_pages=1, max_pages=2))


def free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def result_dicts(report):
    return [r.to_json_dict() for r in report.results]


class TestImportHygiene:
    def test_import_repro_does_not_import_elastic(self):
        code = (
            "import sys, repro, repro.pipeline\n"
            "from repro.pipeline import ParseRequest\n"
            "ParseRequest()\n"
            "from repro.pipeline.backends import backend_names\n"
            "assert 'remote' in backend_names()\n"
            "bad = [m for m in sys.modules\n"
            "       if m.startswith(('repro.elastic', 'repro.cluster'))]\n"
            "assert not bad, f'elastic imported on the serial path: {bad}'\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=_subprocess_env())

    def test_elastic_lazy_exports_resolve(self):
        import repro.elastic as elastic

        for name in elastic.__all__:
            assert getattr(elastic, name) is not None
        with pytest.raises(AttributeError):
            elastic.NoSuchThing


def _subprocess_env():
    import os
    from pathlib import Path

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


class TestKillAndJoinMidRun:
    def test_campaign_survives_kill_and_mid_run_join_byte_identical(
        self, registry, corpus_30
    ):
        """Kill one worker mid-run while a replacement joins mid-run.

        The campaign must finish with byte-identical output to a serial
        run: exactly-once results, input order preserved, and the
        membership history showing 2 fixed admissions + 1 join + 1 death.
        """
        documents = list(corpus_30)
        serial = tortoise_pipeline(registry).run(
            request_for_documents("tortoise", documents, batch_size=3)
        )
        workers = [
            WorkerDaemon(
                name=f"e2e-{i}", pipeline=tortoise_pipeline(registry)
            ).start()
            for i in range(2)
        ]
        replacement = WorkerDaemon(
            name="e2e-replacement", pipeline=tortoise_pipeline(registry)
        ).start()
        listen_port = free_port()
        pipeline = tortoise_pipeline(registry)
        request = request_for_documents(
            "tortoise",
            documents,
            batch_size=3,
            backend="remote",
            backend_options={
                "workers": ",".join(w.address for w in workers),
                "listen": listen_port,
            },
        )
        outcome: dict = {}

        def run():
            outcome["report"] = pipeline.run(request)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            victim = workers[1]
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if victim.counters["docs_received"] or victim.counters[
                    "shards_completed"
                ]:
                    break
                time.sleep(0.005)
            else:
                pytest.fail("the victim worker never received a shard")
            # The replacement joins mid-run, then the victim dies abruptly.
            replacement.join(f"127.0.0.1:{listen_port}", retries=40, retry_delay=0.25)
            victim.kill()
            thread.join(timeout=120)
            assert not thread.is_alive(), "run hung after kill + join"
        finally:
            for worker in workers:
                worker.stop()
            replacement.stop()
        report = outcome["report"]
        assert result_dicts(report) == result_dicts(serial)
        extra = report.execution.extra
        assert extra["cluster_workers_seen"] == 3
        assert extra["cluster_workers_lost"] == 1
        assert extra["cluster_shards_completed"] == report.execution.batches_dispatched
        assert extra["cluster_duplicate_results_ignored"] >= 0


class TestLedgerResume:
    def test_resumed_campaign_is_byte_identical_and_skips_completed(
        self, registry, corpus_30, tmp_path
    ):
        """Coordinator killed mid-campaign, re-run resumes from the ledger.

        The kill is emulated deterministically: a first campaign over the
        corpus prefix records its shards to the ledger and "dies" (the
        coordinator goes away with the run); the re-run over the full
        corpus must replay exactly those shards — the workers never see
        them — and produce byte-identical output to an uninterrupted
        serial run.
        """
        documents = list(corpus_30)
        ledger_dir = tmp_path / "campaign-ledger"
        serial = tortoise_pipeline(registry).run(
            request_for_documents("tortoise", documents, batch_size=5)
        )

        def run_remote(docs, workers):
            return tortoise_pipeline(registry).run(
                request_for_documents(
                    "tortoise",
                    docs,
                    batch_size=5,
                    backend="remote",
                    backend_options={
                        "workers": ",".join(w.address for w in workers),
                        "ledger_dir": str(ledger_dir),
                    },
                )
            )

        # Phase 1: the campaign completes 3 of 6 shards, then the
        # coordinator is gone (batching is deterministic, so the prefix's
        # shards are exactly the full run's first three).
        workers = [
            WorkerDaemon(
                name=f"resume-{i}", pipeline=tortoise_pipeline(registry)
            ).start()
            for i in range(2)
        ]
        try:
            run_remote(documents[:15], workers)
        finally:
            for worker in workers:
                worker.stop()
        from repro.elastic.ledger import ShardLedger

        assert len(ShardLedger(ledger_dir)) == 3

        # Phase 2: fresh workers (cold caches — replay must not need
        # them), same ledger, full corpus.
        workers = [
            WorkerDaemon(
                name=f"resume-{i}", pipeline=tortoise_pipeline(registry)
            ).start()
            for i in range(2)
        ]
        try:
            resumed = run_remote(documents, workers)
            docs_parsed = sum(w.counters["docs_parsed"] for w in workers)
        finally:
            for worker in workers:
                worker.stop()
        assert result_dicts(resumed) == result_dicts(serial)
        extra = resumed.execution.extra
        assert extra["cluster_shards_replayed"] == 3
        # The workers only parsed the un-checkpointed half of the corpus.
        assert docs_parsed == 15
        assert len(ShardLedger(ledger_dir)) == 6

    def test_fully_completed_campaign_replays_everything(
        self, registry, corpus_30, tmp_path
    ):
        documents = list(corpus_30)[:10]
        ledger_dir = tmp_path / "full-ledger"

        def run_remote(workers):
            return tortoise_pipeline(registry).run(
                request_for_documents(
                    "tortoise",
                    documents,
                    batch_size=5,
                    backend="remote",
                    backend_options={
                        "workers": ",".join(w.address for w in workers),
                        "ledger_dir": str(ledger_dir),
                    },
                )
            )

        workers = [
            WorkerDaemon(
                name="full-0", pipeline=tortoise_pipeline(registry)
            ).start()
        ]
        try:
            first = run_remote(workers)
            second = run_remote(workers)
            docs_parsed = workers[0].counters["docs_parsed"]
        finally:
            workers[0].stop()
        assert result_dicts(second) == result_dicts(first)
        assert second.execution.extra["cluster_shards_replayed"] == 2
        assert docs_parsed == len(documents)  # run 2 parsed nothing new
