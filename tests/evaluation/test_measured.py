"""Tests of the measured-result store and EXPERIMENTS.md placeholder filling."""

from __future__ import annotations

import pytest

from repro.evaluation.measured import (
    MeasuredStore,
    fill_experiments_file,
    fill_experiments_text,
)
from repro.utils.tables import Table


@pytest.fixture()
def store(tmp_path):
    return MeasuredStore(tmp_path / "measured")


class TestMeasuredStore:
    def test_record_and_load(self, store):
        store.record("table1", "| a | b |\n|---|---|\n| 1 | 2 |")
        assert store.load("TABLE1").startswith("| a | b |")

    def test_ids_are_normalised(self, store):
        store.record("figure-5", "content")
        assert store.available() == ["FIGURE_5"]
        assert store.load("Figure_5") == "content"

    def test_invalid_id_rejected(self, store):
        with pytest.raises(ValueError, match="invalid experiment id"):
            store.record("table 1!", "x")

    def test_record_overwrites_by_default(self, store):
        store.record("x", "first")
        store.record("x", "second")
        assert store.load("x") == "second"

    def test_record_append(self, store):
        store.record("x", "first")
        store.record("x", "second", append=True)
        assert store.load("x") == "first\n\nsecond"

    def test_load_missing_returns_none(self, store):
        assert store.load("nope") is None

    def test_clear(self, store):
        store.record("x", "content")
        store.clear("x")
        assert store.load("x") is None
        store.clear("x")  # idempotent

    def test_record_table(self, store):
        table = Table(title="T", columns=["a", "b"])
        table.add_row({"a": 1.234, "b": "x"})
        store.record_table("t", table, precision=2, note="a note")
        content = store.load("t")
        assert "1.23" in content
        assert "a note" in content

    def test_record_mapping(self, store):
        store.record_mapping("stats", {"consensus": 0.82, "decisiveness": 0.91}, title="Alignment")
        content = store.load("stats")
        assert "**Alignment**" in content
        assert "- consensus: 0.82" in content


DOC = """# Experiments

## Table 1

<!-- MEASURED:TABLE1 -->

## Figure 5

<!-- MEASURED:FIGURE5 -->
"""


class TestFillExperiments:
    def test_fills_placeholders(self, store):
        store.record("TABLE1", "measured table one")
        filled, result = fill_experiments_text(DOC, store)
        assert "measured table one" in filled
        assert "<!-- MEASURED:TABLE1:BEGIN -->" in filled
        assert result.filled == ["TABLE1"]
        assert result.missing == ["FIGURE5"]
        # The unfilled placeholder stays put for a later run.
        assert "<!-- MEASURED:FIGURE5 -->" in filled

    def test_refill_is_idempotent_and_replaces_content(self, store):
        store.record("TABLE1", "version one")
        once, _ = fill_experiments_text(DOC, store)
        store.record("TABLE1", "version two")
        twice, result = fill_experiments_text(once, store)
        assert "version two" in twice
        assert "version one" not in twice
        assert twice.count("MEASURED:TABLE1:BEGIN") == 1
        assert "TABLE1" in result.filled

    def test_fill_file_in_place(self, store, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        path.write_text(DOC, encoding="utf-8")
        store.record("TABLE1", "from the benchmark run")
        store.record("FIGURE5", "scalability series")
        result = fill_experiments_file(path, store)
        assert result.n_filled == 2
        text = path.read_text(encoding="utf-8")
        assert "from the benchmark run" in text
        assert "scalability series" in text

    def test_nothing_recorded_leaves_file_untouched(self, store, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        path.write_text(DOC, encoding="utf-8")
        result = fill_experiments_file(path, store)
        assert result.n_filled == 0
        assert path.read_text(encoding="utf-8") == DOC

    def test_multiline_content_preserved(self, store):
        store.record("TABLE1", "line one\nline two\n\nline four")
        filled, _ = fill_experiments_text(DOC, store)
        assert "line one\nline two\n\nline four" in filled
