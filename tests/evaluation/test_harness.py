"""Tests for the quality-evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.harness import EvaluationHarness, HarnessConfig
from repro.parsers.extraction import PyMuPDFSim, PyPDFSim
from repro.parsers.vit import NougatSim


@pytest.fixture(scope="module")
def report(tiny_corpus):
    harness = EvaluationHarness(HarnessConfig(car_max_chars=800, seed=7))
    parsers = [PyMuPDFSim(), PyPDFSim(), NougatSim()]
    return harness.evaluate(tiny_corpus, parsers)


class TestEvaluationReport:
    def test_bundles_cover_every_pair(self, report, tiny_corpus):
        assert len(report.bundles) == len(tiny_corpus) * 3
        bundle = report.bundle("pymupdf", tiny_corpus[0].doc_id)
        assert 0.0 <= bundle.bleu <= 1.0

    def test_metric_matrix_shape(self, report, tiny_corpus):
        matrix = report.metric_matrix("bleu")
        assert matrix.shape == (len(tiny_corpus), 3)
        assert np.all((matrix >= 0) & (matrix <= 1))

    def test_aggregates_present_for_all_parsers(self, report):
        assert set(report.aggregates) == {"pymupdf", "pypdf", "nougat"}
        for aggregate in report.aggregates.values():
            assert 0.0 <= aggregate.coverage <= 1.0
            assert 0.0 <= aggregate.accepted_tokens <= 1.0

    def test_win_rates_computed(self, report):
        assert set(report.win_rates) == {"pymupdf", "pypdf", "nougat"}
        assert all(0.0 <= v <= 1.0 for v in report.win_rates.values())
        # pypdf's whitespace/case damage makes it the least preferred of the three.
        assert report.win_rates["pypdf"] <= min(report.win_rates["pymupdf"], report.win_rates["nougat"])

    def test_table_rendering(self, report):
        table = report.to_table("Demo table")
        assert len(table.rows) == 3
        rendered = table.to_markdown()
        assert "pymupdf" in rendered and "BLEU" in rendered

    def test_token_counts_positive(self, report):
        assert (report.token_counts() > 0).all()

    def test_ordering_pymupdf_above_pypdf(self, report):
        assert report.aggregates["pymupdf"].bleu > report.aggregates["pypdf"].bleu
        assert report.aggregates["pymupdf"].car > report.aggregates["pypdf"].car


class TestHarnessOptions:
    def test_win_rate_can_be_skipped(self, tiny_corpus):
        harness = EvaluationHarness(HarnessConfig(car_max_chars=600))
        report = harness.evaluate(tiny_corpus, [PyMuPDFSim(), PyPDFSim()], compute_win_rate=False)
        assert report.win_rates == {}
        assert report.aggregates["pymupdf"].win_rate is None

    def test_accepted_token_threshold_effect(self, tiny_corpus):
        strict = EvaluationHarness(HarnessConfig(accepted_token_threshold=0.99, car_max_chars=600))
        lenient = EvaluationHarness(HarnessConfig(accepted_token_threshold=0.01, car_max_chars=600))
        parsers = [PyMuPDFSim()]
        strict_at = strict.evaluate(tiny_corpus, parsers, compute_win_rate=False).aggregates["pymupdf"].accepted_tokens
        lenient_at = lenient.evaluate(tiny_corpus, parsers, compute_win_rate=False).aggregates["pymupdf"].accepted_tokens
        assert lenient_at >= strict_at
