"""Tests for figure regeneration, alignment statistics, and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.documents.corpus import CorpusConfig, build_corpus
from repro.evaluation.alignment import preference_alignment_statistics
from repro.evaluation.figures import (
    figure3_parser_performance,
    figure4_gpu_utilization,
    figure5_scalability,
    ideal_single_node_legend,
    throughput_ratio_summary,
)
from repro.evaluation.harness import HarnessConfig
from repro.evaluation.reporting import ExperimentRecord, print_table
from repro.hpc.campaign import CampaignConfig
from repro.preferences.study import StudyConfig
from repro.utils.tables import Table


class TestFigure3:
    @pytest.fixture(scope="class")
    def series(self, tiny_corpus, registry):
        return figure3_parser_performance(
            tiny_corpus,
            registry,
            harness_config=HarnessConfig(car_max_chars=600),
            throughput_documents=60,
        )

    def test_series_structure(self, series, tiny_corpus, registry):
        assert set(series.bleu_by_parser) == set(registry.names)
        assert all(len(v) == len(tiny_corpus) for v in series.bleu_by_parser.values())

    def test_difficulty_ordering(self, series):
        # The paper's convention: higher rank = harder document, so the
        # across-parser mean BLEU must be non-increasing from rank 0 to the
        # final rank.
        matrix = np.stack([series.bleu_by_parser[p] for p in series.parser_names])
        mean_by_rank = matrix.mean(axis=0)
        assert mean_by_rank[0] >= mean_by_rank[-1]

    def test_throughput_legend(self, series):
        assert series.throughput_legend["pymupdf"] > series.throughput_legend["nougat"]

    def test_tables_render(self, series):
        assert len(series.to_table(n_bins=3).rows) == 3
        assert len(series.legend_table().rows) == len(series.parser_names)


class TestFigure4:
    def test_profile_structure(self, registry):
        profile = figure4_gpu_utilization(registry, parser_name="nougat", n_documents=25)
        assert profile.parser_name == "nougat"
        means = profile.profile.per_gpu_means()
        assert len(means) == 4
        assert profile.campaign.throughput_docs_per_s > 0
        assert len(profile.to_table().rows) == 4

    def test_warm_start_improves_utilisation(self, registry):
        warm = figure4_gpu_utilization(registry, n_documents=25, warm_start=True)
        cold = figure4_gpu_utilization(
            registry, n_documents=25, campaign_config=CampaignConfig(n_nodes=1, warm_start=False)
        )
        assert warm.campaign.total_time_s <= cold.campaign.total_time_s


class TestFigure5:
    @pytest.fixture(scope="class")
    def series(self, registry):
        return figure5_scalability(
            registry,
            node_counts=(1, 4),
            docs_per_node=40,
            include_adaparse=True,
            parser_names=("pymupdf", "nougat", "marker"),
        )

    def test_series_contents(self, series):
        assert set(series.results) == {"pymupdf", "nougat", "marker", "adaparse_ft", "adaparse_llm"}
        assert series.node_counts == [1, 4]

    def test_throughput_lookup_and_table(self, series):
        assert series.throughput("pymupdf", 4) > series.throughput("pymupdf", 1)
        table = series.to_table()
        assert len(table.rows) == 5

    def test_ratio_summary(self, series):
        ratios = throughput_ratio_summary(series, reference="nougat")
        assert ratios["nougat"] == pytest.approx(1.0)
        assert ratios["pymupdf"] > 10
        assert ratios["adaparse_ft"] > 2

    def test_unknown_reference(self, series):
        with pytest.raises(KeyError):
            throughput_ratio_summary(series, reference="acrobat")

    def test_ideal_legend(self, registry):
        legend = ideal_single_node_legend(registry)
        assert legend["pymupdf"] > legend["pypdf"] > legend["nougat"]


class TestAlignment:
    def test_statistics_ranges(self, registry):
        corpus = build_corpus(CorpusConfig(n_documents=6, seed=21, min_pages=3, max_pages=5))
        stats = preference_alignment_statistics(
            corpus, registry, StudyConfig(n_pages=15, comparisons_per_page=3, seed=3)
        )
        payload = stats.as_dict()
        assert 0.0 <= stats.decisiveness <= 1.0
        assert 0.0 <= stats.consensus <= 1.0
        assert -1.0 <= stats.bleu_win_rate_correlation <= 1.0
        assert stats.n_judgements > 0
        assert set(payload["win_rates"]) == set(registry.names)

    def test_correlation_positive_but_imperfect(self, registry):
        # The paper's headline: BLEU correlates with preference (ρ ≈ 0.47) but
        # is far from fully predictive.
        corpus = build_corpus(CorpusConfig(n_documents=8, seed=22, min_pages=3, max_pages=5))
        stats = preference_alignment_statistics(
            corpus, registry, StudyConfig(n_pages=40, comparisons_per_page=3, seed=5)
        )
        assert 0.05 < stats.bleu_win_rate_correlation < 0.95


class TestReporting:
    def test_record_round_trip(self, tmp_path):
        record = ExperimentRecord(title="Demo")
        table = Table(title="T", columns=["a"])
        table.add_row({"a": 1.0})
        record.add_table("table1", table, note="note text")
        record.add_text("figure5", "headline")
        record.add_json("stats", {"x": 1})
        markdown = record.to_markdown()
        assert "# Demo" in markdown and "## table1" in markdown and "note text" in markdown
        path = record.save(tmp_path / "sub" / "report.md")
        assert path.exists()
        assert "headline" in path.read_text()

    def test_print_table(self, capsys):
        table = Table(title="T", columns=["a"])
        table.add_row({"a": 2.0})
        print_table(table)
        assert "2.0" in capsys.readouterr().out
