"""End-to-end test of the table experiments at a very small scale.

This is the most expensive test in the suite: it builds the full experiment
context (corpus, preference study, both trained engines) and regenerates
Tables 1–3, checking the orderings the paper reports rather than absolute
values.
"""

from __future__ import annotations

import pytest

from repro.evaluation.harness import HarnessConfig
from repro.evaluation.tables import (
    ExperimentScale,
    build_experiment_context,
    table1_born_digital,
    table2_scanned,
    table3_degraded_text,
)

SCALE = ExperimentScale(
    n_documents=48, study_pages=16, pretrain_sentences=120, finetune_epochs=2, seed=31
)
HARNESS = HarnessConfig(car_max_chars=800, seed=5)


@pytest.fixture(scope="module")
def context():
    return build_experiment_context(SCALE)


def column(table, name):
    return {row["Parser"]: row[name] for row in table.rows}


class TestExperimentContext:
    def test_splits_sizes(self, context):
        total = sum(len(split) for split in context.splits.values())
        assert total == SCALE.n_documents
        assert len(context.splits["test"]) > 0

    def test_engines_trained(self, context):
        assert context.engine_ft.selector is not None
        assert context.engine_llm.selector is not None
        assert len(context.quality_dataset) == len(context.splits["train"])
        assert context.preference_dataset.n_total > 0


class TestTable1(object):
    @pytest.fixture(scope="class")
    def table(self, context):
        return table1_born_digital(context, HARNESS)

    def test_rows_and_columns(self, table):
        parsers = [row["Parser"] for row in table.rows]
        assert parsers[-1] == "adaparse_llm"
        assert len(parsers) == 7
        assert set(table.columns) == {"Parser", "Coverage", "BLEU", "ROUGE", "CAR", "WR", "AT"}

    def test_values_are_percentages(self, table):
        for row in table.rows:
            for key in ("Coverage", "BLEU", "ROUGE", "CAR", "AT"):
                assert 0.0 <= row[key] <= 100.0

    def test_adaparse_matches_or_beats_best_single_parser_bleu(self, table):
        bleu = column(table, "BLEU")
        adaparse = bleu.pop("adaparse_llm")
        assert adaparse >= max(bleu.values()) - 2.0

    def test_grobid_lowest_quality(self, table):
        bleu = column(table, "BLEU")
        assert min(bleu, key=bleu.get) == "grobid"
        coverage = column(table, "Coverage")
        assert min(coverage, key=coverage.get) == "grobid"

    def test_pypdf_lowest_car_among_extraction(self, table):
        car = column(table, "CAR")
        assert car["pypdf"] < car["pymupdf"]

    def test_budget_respected(self, context, table):
        report = context.cached_report("table1")
        assert report is not None
        summary = report.routing_summary("adaparse_llm")
        assert summary.decisions
        assert summary.fraction_routed() <= context.engine_llm.config.alpha + 1e-9


class TestTables2and3:
    def test_table2_adaparse_most_robust(self, context):
        table = table2_scanned(context, harness_config=HARNESS)
        bleu = column(table, "BLEU")
        assert set(bleu) == {"marker", "nougat", "tesseract", "adaparse_llm"}
        assert bleu["adaparse_llm"] >= max(v for k, v in bleu.items() if k != "adaparse_llm") - 2.0

    def test_table3_adaparse_at_least_matches_extraction(self, context):
        table = table3_degraded_text(context, harness_config=HARNESS)
        bleu = column(table, "BLEU")
        assert set(bleu) == {"pymupdf", "pypdf", "adaparse_llm"}
        assert bleu["adaparse_llm"] >= bleu["pymupdf"] - 1.0
        assert bleu["pypdf"] <= bleu["pymupdf"]
