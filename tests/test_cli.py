"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestArgumentParsing:
    def test_subcommands_registered(self):
        parser = build_parser()
        for command in (
            "corpus",
            "tables",
            "scaling",
            "alignment",
            "dataset",
            "pipeline",
            "serve",
            "submit",
            "fill-experiments",
        ):
            args = parser.parse_args([command])
            assert args.command == command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBackendOptionHandling:
    """`--backend-opt` value coercion and clear unknown-option failures."""

    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("true", True),
            ("True", True),
            ("false", False),
            ("4", 4),
            ("4.5", 4.5),
            ("fork", "fork"),
        ],
    )
    def test_value_coercion_covers_bools_ints_floats(self, raw, expected):
        from repro.cli import _coerce_opt_value

        value = _coerce_opt_value(raw)
        assert value == expected
        assert type(value) is type(expected)

    def test_unknown_option_name_exits_with_known_options(self, capsys):
        # Regression: an unknown option name used to escape as a ValueError
        # traceback out of ParseRequest; now the CLI exits with the message
        # (which names the known options) and no stack trace.
        from repro.cli import main

        with pytest.raises(SystemExit, match="n_jobs"):
            main(["pipeline", "--documents", "2", "--backend", "thread",
                  "--backend-opt", "bogus=1"])

    def test_unknown_backend_name_exits_with_known_backends(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="serial"):
            main(["pipeline", "--documents", "2", "--backend", "quantum"])

    def test_bad_option_value_exits_cleanly(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="positive"):
            main(["pipeline", "--documents", "2", "--backend", "thread",
                  "--backend-opt", "n_jobs=0"])

    def test_async_backend_with_bool_option(self, capsys):
        import json

        from repro.cli import main

        exit_code = main(
            [
                "pipeline", "--documents", "6", "--seed", "4",
                "--backend", "async",
                "--backend-opt", "n_jobs=2",
                "--backend-opt", "adaptive=false",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["execution"]["backend"] == "async"
        assert payload["request"]["backend_options"] == {"n_jobs": 2, "adaptive": False}
        assert payload["execution"]["extra"]["window_shrinks"] == 0


class TestCommands:
    def test_corpus_command_writes_archive(self, tmp_path, capsys):
        exit_code = main(["corpus", "--documents", "4", "--seed", "3", "--output", str(tmp_path)])
        assert exit_code == 0
        assert (tmp_path / "corpus.simpdfarch").exists()
        assert "built corpus" in capsys.readouterr().out

    def test_corpus_command_without_output(self, capsys):
        assert main(["corpus", "--documents", "3"]) == 0
        assert "n_documents" in capsys.readouterr().out

    def test_scaling_command(self, capsys):
        exit_code = main(["scaling", "--nodes", "1", "2", "--docs-per-node", "20"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "adaparse_ft" in out

    def test_alignment_command(self, capsys):
        exit_code = main(["alignment", "--documents", "4", "--pages", "6", "--seed", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "win_rates" in out
        assert "consensus" in out

    def test_dataset_command_writes_shards(self, tmp_path, capsys):
        exit_code = main(
            [
                "dataset",
                "--documents",
                "6",
                "--seed",
                "5",
                "--parser",
                "pymupdf",
                "--min-tokens",
                "10",
                "--output",
                str(tmp_path / "dataset"),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert '"retention_rate"' in out
        assert (tmp_path / "dataset" / "manifest.json").exists()

    def test_pipeline_command_prints_report(self, capsys):
        exit_code = main(
            [
                "pipeline", "--documents", "6", "--seed", "4",
                "--parser", "pymupdf",
                "--backend", "thread", "--backend-opt", "n_jobs=2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert '"throughput_docs_per_second"' in out
        assert '"n_documents": 6' in out
        assert '"backend": "thread"' in out

    def test_pipeline_command_writes_json(self, tmp_path, capsys):
        import json

        target = tmp_path / "report.json"
        exit_code = main(
            [
                "pipeline",
                "--documents",
                "5",
                "--seed",
                "9",
                "--parser",
                "pypdf",
                "--batch-size",
                "2",
                "--include-text",
                "--output",
                str(target),
            ]
        )
        assert exit_code == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["parser"] == "pypdf"
        assert len(payload["results"]) == 5
        assert all(entry["page_texts"] for entry in payload["results"])
        assert "wrote ParseReport" in capsys.readouterr().out

    def test_fill_experiments_command(self, tmp_path, capsys):
        from repro.evaluation.measured import MeasuredStore

        experiments = tmp_path / "EXPERIMENTS.md"
        experiments.write_text("# E\n\n<!-- MEASURED:TABLE1 -->\n", encoding="utf-8")
        store = MeasuredStore(tmp_path / "measured")
        store.record("TABLE1", "| measured |")
        exit_code = main(
            [
                "fill-experiments",
                "--experiments-file",
                str(experiments),
                "--measured-dir",
                str(tmp_path / "measured"),
            ]
        )
        assert exit_code == 0
        assert "filled 1" in capsys.readouterr().out
        assert "| measured |" in experiments.read_text(encoding="utf-8")

    def test_fill_experiments_without_measurements_fails(self, tmp_path, capsys):
        experiments = tmp_path / "EXPERIMENTS.md"
        experiments.write_text("<!-- MEASURED:TABLE1 -->\n", encoding="utf-8")
        exit_code = main(
            [
                "fill-experiments",
                "--experiments-file",
                str(experiments),
                "--measured-dir",
                str(tmp_path / "empty"),
            ]
        )
        assert exit_code == 1
        assert "no measured fragments" in capsys.readouterr().out
