"""Tests for the Figure 1 failure modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parsers import failure_modes

TEXT = (
    "The candidate compound CC(=O)OC1=CC=CC=C1C(=O)O was synthesized and the treatment "
    "of hyperthyroidism requires careful monitoring of the pH values"
)


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


class TestTextModes:
    def test_whitespace_injection(self, rng):
        out = failure_modes.whitespace_injection(TEXT, rng, severity=1.0)
        assert len(out.split()) > len(TEXT.split())

    def test_word_substitution(self, rng):
        out = failure_modes.word_substitution(TEXT, rng, severity=1.0)
        changed = sum(1 for a, b in zip(TEXT.split(), out.split()) if a != b)
        assert changed > 0

    def test_character_scrambling(self, rng):
        out = failure_modes.character_scrambling(TEXT, rng, severity=1.0)
        assert out != TEXT
        assert len(out.split()) == len(TEXT.split())

    def test_character_substitution(self, rng):
        out = failure_modes.character_substitution(TEXT, rng, severity=1.0)
        assert out != TEXT

    def test_smiles_corruption_targets_smiles(self, rng):
        out = failure_modes.smiles_corruption(TEXT, rng, severity=1.0)
        # The SMILES token changes, ordinary words survive.
        assert "hyperthyroidism" in out
        assert "CC(=O)OC1=CC=CC=C1C(=O)O" not in out

    def test_latex_conversion(self):
        out = failure_modes.latex_plaintext_conversion("\\frac{\\alpha}{\\beta} = 1")
        assert "\\" not in out
        assert "alpha" in out


class TestPageDrop:
    def test_drop_probability_one_keeps_at_least_one_page(self, rng):
        pages = ["page one content", "page two content", "page three content"]
        out = failure_modes.page_drop(pages, rng, drop_probability=1.0)
        assert len(out) == 3
        assert sum(1 for p in out if p) == 1

    def test_drop_probability_zero_is_identity(self, rng):
        pages = ["a", "b"]
        assert failure_modes.page_drop(pages, rng, drop_probability=0.0) == pages

    def test_alignment_preserved(self, rng):
        pages = [f"page {i}" for i in range(10)]
        out = failure_modes.page_drop(pages, rng, drop_probability=0.5)
        assert len(out) == len(pages)
        for original, kept in zip(pages, out):
            assert kept in ("", original)


class TestCatalog:
    def test_catalog_covers_six_text_modes(self):
        catalog = failure_modes.catalog()
        assert len(catalog) == 6
        labels = " ".join(m.label for m in catalog)
        for tag in ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)"]:
            assert tag in labels

    def test_catalog_modes_apply(self, rng):
        for mode in failure_modes.catalog():
            out = mode.apply(TEXT, rng)
            assert isinstance(out, str)
            assert out.strip()
