"""Tests for the parser abstraction and cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parsers.base import Parser, ParserCost, ResourceUsage, single_node_throughput


class FailingParser(Parser):
    name = "failing"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def _parse_pages(self, document, rng):
        raise RuntimeError("corrupted document stream")


class EchoParser(Parser):
    name = "echo"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def _parse_pages(self, document, rng):
        return list(document.text_layer.page_texts)


class TestResourceUsage:
    def test_addition_sums_time_and_maxes_memory(self):
        a = ResourceUsage(cpu_seconds=1.0, gpu_seconds=0.5, cpu_memory_mb=100, gpu_memory_mb=0)
        b = ResourceUsage(cpu_seconds=2.0, gpu_seconds=1.0, cpu_memory_mb=50, gpu_memory_mb=900)
        c = a + b
        assert c.cpu_seconds == 3.0
        assert c.gpu_seconds == 1.5
        assert c.cpu_memory_mb == 100
        assert c.gpu_memory_mb == 900
        assert c.total_compute_seconds == pytest.approx(4.5)


class TestParserCost:
    def test_expected_usage_scales_with_pages(self):
        cost = ParserCost(cpu_seconds_per_page=0.1, per_document_overhead_seconds=0.5)
        u10 = cost.expected_document_usage(10)
        u20 = cost.expected_document_usage(20)
        assert u10.cpu_seconds == pytest.approx(1.5)
        assert u20.cpu_seconds == pytest.approx(2.5)

    def test_uses_gpu_flag(self):
        assert ParserCost(gpu_seconds_per_page=0.1).uses_gpu
        assert not ParserCost(cpu_seconds_per_page=0.1).uses_gpu

    def test_sampled_usage_positive_and_varies(self):
        cost = ParserCost(cpu_seconds_per_page=0.1, variability=0.3)
        rng = np.random.default_rng(0)
        samples = [cost.sample_document_usage(10, rng).cpu_seconds for _ in range(20)]
        assert all(s > 0 for s in samples)
        assert len({round(s, 6) for s in samples}) > 1

    def test_difficulty_inflates_cost(self):
        cost = ParserCost(cpu_seconds_per_page=0.1, variability=0.0)
        rng = np.random.default_rng(0)
        easy = cost.sample_document_usage(10, rng, difficulty=0.0).cpu_seconds
        hard = cost.sample_document_usage(10, rng, difficulty=1.0).cpu_seconds
        assert hard > easy


class TestParserBehaviour:
    def test_parse_failure_is_captured(self, sample_document):
        result = FailingParser().parse(sample_document)
        assert not result.succeeded
        assert "corrupted" in (result.error or "")
        assert result.n_pages == sample_document.n_pages
        assert result.text == "\n" * (sample_document.n_pages - 1)

    def test_parse_result_fields(self, sample_document):
        result = EchoParser().parse(sample_document)
        assert result.succeeded
        assert result.parser_name == "echo"
        assert result.doc_id == sample_document.doc_id
        assert result.n_characters > 0
        assert result.usage.cpu_seconds > 0

    def test_parse_many_matches_parse(self, sample_document):
        parser = EchoParser()
        single = parser.parse(sample_document)
        batch = parser.parse_many([sample_document, sample_document])
        assert batch[0].text == single.text
        assert len(batch) == 2

    def test_document_rng_is_deterministic(self, sample_document):
        parser = EchoParser()
        a = parser.document_rng(sample_document).random(3)
        b = parser.document_rng(sample_document).random(3)
        np.testing.assert_array_equal(a, b)


class TestSingleNodeThroughput:
    def test_cpu_bound(self):
        cost = ParserCost(cpu_seconds_per_page=0.1)
        assert single_node_throughput(cost, pages_per_document=10, cpu_cores=32) == pytest.approx(32.0)

    def test_gpu_bound(self):
        cost = ParserCost(cpu_seconds_per_page=0.001, gpu_seconds_per_page=0.5)
        throughput = single_node_throughput(cost, pages_per_document=10, gpus=4)
        assert throughput == pytest.approx(0.8)

    def test_ratio_calibration_pymupdf_vs_nougat(self, registry):
        pymupdf = single_node_throughput(registry.get("pymupdf").cost)
        nougat = single_node_throughput(registry.get("nougat").cost)
        pypdf = single_node_throughput(registry.get("pypdf").cost)
        assert 80 <= pymupdf / nougat <= 220      # paper: ≈135×
        assert 8 <= pymupdf / pypdf <= 20         # paper: ≈13×
