"""Behavioural tests of the six simulated parsers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.documents.augment import AugmentationConfig, degrade_image_layers, strip_text_layers
from repro.documents.corpus import Corpus
from repro.metrics.bleu import bleu_score
from repro.metrics.coverage import page_coverage_rate
from repro.parsers.extraction import PyMuPDFSim, PyPDFSim
from repro.parsers.ocr import GrobidSim, TesseractSim
from repro.parsers.registry import DEFAULT_PARSER_ORDER, ParserRegistry, default_registry
from repro.parsers.vit import MarkerSim, NougatSim


def mean_bleu(parser, corpus: Corpus) -> float:
    scores = []
    for doc in corpus:
        result = parser.parse(doc)
        scores.append(bleu_score(result.text, doc.ground_truth_text()))
    return float(np.mean(scores))


class TestDeterminism:
    def test_parse_is_deterministic(self, small_corpus, registry):
        doc = small_corpus[0]
        for parser in registry:
            assert parser.parse(doc).page_texts == parser.parse(doc).page_texts

    def test_different_parsers_different_output(self, small_corpus):
        doc = small_corpus[0]
        assert PyMuPDFSim().parse(doc).text != PyPDFSim().parse(doc).text


class TestExtractionParsers:
    def test_pymupdf_faithful_on_clean_layers(self, small_corpus):
        clean = small_corpus.filter(lambda d: d.text_layer.quality.value == "clean")
        if len(clean) == 0:
            pytest.skip("no clean documents in the fixture corpus")
        assert mean_bleu(PyMuPDFSim(), clean) > 0.6

    def test_extraction_fails_without_text_layer(self, small_corpus):
        stripped = strip_text_layers(small_corpus, fraction=1.0)
        doc = stripped[0]
        assert PyMuPDFSim().parse(doc).text.strip() == ""
        assert PyPDFSim().parse(doc).text.strip() == ""

    def test_pypdf_noisier_than_pymupdf(self, small_corpus):
        assert mean_bleu(PyPDFSim(), small_corpus) < mean_bleu(PyMuPDFSim(), small_corpus)

    def test_pypdf_case_corruption_present(self, small_corpus):
        doc = small_corpus[0]
        out = PyPDFSim().parse(doc).text
        reference = doc.text_layer.text()
        if reference.strip():
            case_flips = sum(
                1 for a, b in zip(reference, out) if a.isalpha() and b.isalpha() and a != b and a.lower() == b.lower()
            )
            assert case_flips >= 0  # smoke check: comparison executes on aligned prefix


class TestRecognitionParsers:
    def test_ocr_independent_of_text_layer(self, small_corpus):
        doc = small_corpus[0]
        stripped = strip_text_layers(small_corpus, fraction=1.0)[0]
        assert TesseractSim().parse(doc).text == TesseractSim().parse(stripped).text
        assert NougatSim().parse(doc).text == NougatSim().parse(stripped).text

    def test_tesseract_degrades_with_scan_quality(self, small_corpus):
        degraded = degrade_image_layers(small_corpus, AugmentationConfig(affected_fraction=1.0, scan_severity=1.0))
        assert mean_bleu(TesseractSim(), degraded) < mean_bleu(TesseractSim(), small_corpus)

    def test_nougat_more_robust_to_scans_than_tesseract(self, small_corpus):
        degraded = degrade_image_layers(small_corpus, AugmentationConfig(affected_fraction=1.0, scan_severity=1.0))
        nougat_drop = mean_bleu(NougatSim(), small_corpus) - mean_bleu(NougatSim(), degraded)
        tesseract_drop = mean_bleu(TesseractSim(), small_corpus) - mean_bleu(TesseractSim(), degraded)
        assert nougat_drop < tesseract_drop

    def test_grobid_has_lowest_coverage(self, small_corpus, registry):
        coverages = {}
        for parser in registry:
            values = []
            for doc in small_corpus:
                result = parser.parse(doc)
                values.append(page_coverage_rate(doc.ground_truth_pages(), result.page_texts))
            coverages[parser.name] = float(np.mean(values))
        assert min(coverages, key=coverages.get) == "grobid"

    def test_nougat_preserves_latex(self, small_corpus):
        for doc in small_corpus:
            if doc.equation_fraction > 0.05:
                out = NougatSim().parse(doc).text
                assert "\\" in out
                return
        pytest.skip("no equation-bearing document in fixture corpus")

    def test_marker_converts_latex_to_prose(self, small_corpus):
        for doc in small_corpus:
            if doc.equation_fraction > 0.05:
                out = MarkerSim().parse(doc).text
                assert "\\frac" not in out
                return
        pytest.skip("no equation-bearing document in fixture corpus")

    def test_nougat_drops_some_pages(self, small_corpus):
        dropped = 0
        for doc in small_corpus:
            result = NougatSim().parse(doc)
            dropped += sum(1 for t in result.page_texts if not t.strip())
        assert dropped >= 1


class TestRegistry:
    def test_default_registry_contents(self, registry):
        assert set(registry.names) == set(DEFAULT_PARSER_ORDER)
        assert len(registry) == 6

    def test_lookup_and_contains(self, registry):
        assert registry.get("nougat").name == "nougat"
        assert "pymupdf" in registry
        with pytest.raises(KeyError):
            registry.get("acrobat")

    def test_duplicate_registration_rejected(self):
        registry = ParserRegistry([PyMuPDFSim()])
        with pytest.raises(ValueError):
            registry.register(PyMuPDFSim())

    def test_subset(self, registry):
        subset = registry.subset(["pymupdf", "nougat"])
        assert subset.names == ["pymupdf", "nougat"]

    def test_cost_profiles_distinct(self, registry):
        gpu_parsers = {p.name for p in registry if p.cost.uses_gpu}
        assert gpu_parsers == {"nougat", "marker"}
