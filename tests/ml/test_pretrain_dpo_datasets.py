"""Tests for pre-training, DPO post-training, and dataset construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.datasets import build_quality_dataset, document_parser_bleu
from repro.ml.dpo import DPOConfig, DPOTrainer, PreferencePair
from repro.ml.pretrain import (
    PretrainConfig,
    generic_sentences,
    masked_token_pretrain,
    pretrain_encoder_variant,
    scientific_sentences,
)
from repro.ml.transformer import TransformerConfig, TransformerEncoder

TINY = TransformerConfig(
    vocab_size=256, max_length=16, d_model=16, n_heads=2, n_layers=1, d_ff=24, lora_rank=2
)
PRETRAIN = PretrainConfig(n_sentences=60, n_epochs=2, batch_size=16)


class TestPretrainCorpora:
    def test_scientific_sentences_generated(self):
        sentences = scientific_sentences(40, seed=1)
        assert len(sentences) == 40
        assert all(s.endswith(".") for s in sentences)

    def test_generic_sentences_differ_from_scientific(self):
        sci = " ".join(scientific_sentences(40, seed=1)).lower()
        gen = " ".join(generic_sentences(40, seed=1)).lower()
        assert "catalyst" in sci or "eigenvalue" in sci or "biomarker" in sci
        assert sci != gen

    def test_unknown_corpus_kind(self):
        with pytest.raises(ValueError):
            pretrain_encoder_variant(TransformerEncoder(TINY), "legal", PRETRAIN)


class TestMaskedTokenPretraining:
    def test_loss_decreases(self):
        encoder = TransformerEncoder(TINY, name="mlm-test")
        sentences = scientific_sentences(60, seed=2)
        history = masked_token_pretrain(encoder, sentences, PRETRAIN)
        assert len(history.train_loss) == PRETRAIN.n_epochs
        assert history.train_loss[-1] < history.train_loss[0]

    def test_empty_corpus_is_noop(self):
        encoder = TransformerEncoder(TINY)
        history = masked_token_pretrain(encoder, [], PRETRAIN)
        assert history.train_loss == []

    def test_pretraining_changes_parameters(self):
        encoder = TransformerEncoder(TINY, name="mlm-change")
        before = encoder.params["token_embedding"].copy()
        pretrain_encoder_variant(encoder, "scientific", PRETRAIN)
        assert not np.allclose(before, encoder.params["token_embedding"])


def make_pairs() -> list[PreferencePair]:
    clean = "the robust catalyst framework demonstrates a significant polymerization yield"
    junk = "t h e r o b u s t ctaalyst frmaework dmonstrtes sgnificnt plyomerisation yeild"
    return [
        PreferencePair(doc_id=f"d{i}", preferred_text=clean + f" case {i}", rejected_text=junk + f" case {i}")
        for i in range(10)
    ]


class TestDPO:
    def test_training_improves_preference_accuracy(self):
        encoder = TransformerEncoder(TINY, name="dpo-test")
        trainer = DPOTrainer(encoder, DPOConfig(n_epochs=6, batch_size=5, learning_rate=5e-3, lora_only=False))
        pairs = make_pairs()
        before = trainer.preference_accuracy(pairs)
        history = trainer.train(pairs)
        after = trainer.preference_accuracy(pairs)
        assert len(history.train_loss) == 6
        assert history.train_loss[-1] <= history.train_loss[0]
        assert after >= before

    def test_reference_scores_fixed_during_training(self):
        encoder = TransformerEncoder(TINY, name="dpo-ref")
        trainer = DPOTrainer(encoder, DPOConfig(n_epochs=2, lora_only=True))
        pairs = make_pairs()
        ref_before = trainer.reference_score([pairs[0].preferred_text])
        trainer.train(pairs)
        ref_after = trainer.reference_score([pairs[0].preferred_text])
        np.testing.assert_allclose(ref_before, ref_after, atol=1e-9)

    def test_empty_pairs_noop(self):
        trainer = DPOTrainer(TransformerEncoder(TINY), DPOConfig(n_epochs=1))
        history = trainer.train([])
        assert history.train_loss == []

    def test_score_shapes(self):
        trainer = DPOTrainer(TransformerEncoder(TINY))
        scores = trainer.score(["a", "b", "c"])
        assert scores.shape == (3,)
        assert trainer.score([]).shape == (0,)


class TestQualityDataset:
    def test_build_dataset_structure(self, tiny_corpus, registry):
        dataset = build_quality_dataset(tiny_corpus, registry, label_pages=2)
        assert len(dataset) == len(tiny_corpus)
        assert dataset.targets.shape == (len(tiny_corpus), len(registry.names))
        assert np.all(dataset.targets >= 0) and np.all(dataset.targets <= 1)
        assert all(e.n_tokens > 0 for e in dataset.examples)

    def test_best_parser_labels_within_range(self, tiny_corpus, registry):
        dataset = build_quality_dataset(tiny_corpus, registry, label_pages=2)
        labels = dataset.best_parser_labels()
        assert labels.min() >= 0 and labels.max() < len(registry.names)

    def test_subset(self, tiny_corpus, registry):
        dataset = build_quality_dataset(tiny_corpus, registry, label_pages=1)
        subset = dataset.subset([0, 1])
        assert len(subset) == 2
        assert subset.parser_names == dataset.parser_names

    def test_unknown_default_parser(self, tiny_corpus, registry):
        with pytest.raises(KeyError):
            build_quality_dataset(tiny_corpus, registry, default_parser="acrobat")

    def test_document_parser_bleu_page_limit(self, tiny_corpus, registry):
        doc = tiny_corpus[0]
        result = registry.get("pymupdf").parse(doc)
        full = document_parser_bleu(doc, result, label_pages=None)
        first = document_parser_bleu(doc, result, label_pages=1)
        assert 0.0 <= full <= 1.0 and 0.0 <= first <= 1.0
