"""Tests for the fastText model and the parser-quality predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.fasttext import FastTextConfig, FastTextModel
from repro.ml.quality_model import FineTuneConfig, ParserQualityPredictor
from repro.ml.transformer import TransformerConfig

PARSERS = ["pymupdf", "nougat"]

CLEAN_TEXTS = [
    f"the robust framework demonstrates a significant result in catalyst analysis number {i}"
    for i in range(12)
]
JUNK_TEXTS = [
    f"t h e r o b u s t frmaework dmonstrtes a sginificnt rselut nmuber {i}" for i in range(12)
]
# Clean extraction → pymupdf wins; junk extraction → nougat wins.
CLEAN_TARGETS = np.tile(np.array([0.9, 0.7]), (len(CLEAN_TEXTS), 1))
JUNK_TARGETS = np.tile(np.array([0.2, 0.7]), (len(JUNK_TEXTS), 1))
TEXTS = CLEAN_TEXTS + JUNK_TEXTS
TARGETS = np.vstack([CLEAN_TARGETS, JUNK_TARGETS])

FAST_CONFIG = FastTextConfig(embedding_dim=16, n_buckets=1 << 10, n_epochs=15, batch_size=8)
TINY_TRANSFORMER = TransformerConfig(
    vocab_size=256, max_length=24, d_model=16, n_heads=2, n_layers=1, d_ff=24, lora_rank=2
)


class TestFastTextModel:
    def test_bucket_ids_deterministic_and_in_range(self):
        model = FastTextModel(FAST_CONFIG, n_outputs=2)
        ids_a = model.bucket_ids("catalyst analysis of polymers")
        ids_b = model.bucket_ids("catalyst analysis of polymers")
        np.testing.assert_array_equal(ids_a, ids_b)
        assert ids_a.max() < FAST_CONFIG.n_buckets

    def test_training_reduces_loss(self):
        model = FastTextModel(FAST_CONFIG, n_outputs=2)
        history = model.fit(TEXTS, TARGETS)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_learns_to_separate_clean_from_junk(self):
        model = FastTextModel(FAST_CONFIG, n_outputs=2)
        model.fit(TEXTS, TARGETS)
        predictions = model.predict([CLEAN_TEXTS[0], JUNK_TEXTS[0]])
        # pymupdf (column 0) predicted clearly higher for the clean text.
        assert predictions[0, 0] - predictions[1, 0] > 0.2

    def test_classification_mode(self):
        model = FastTextModel(FAST_CONFIG, n_outputs=2, task="classification")
        labels = np.array([0] * len(CLEAN_TEXTS) + [1] * len(JUNK_TEXTS))
        model.fit(TEXTS, labels)
        probs = model.predict([CLEAN_TEXTS[1], JUNK_TEXTS[1]])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_invalid_task_rejected(self):
        with pytest.raises(ValueError):
            FastTextModel(FAST_CONFIG, n_outputs=2, task="ranking")

    def test_empty_text_handled(self):
        model = FastTextModel(FAST_CONFIG, n_outputs=2)
        assert model.predict([""]).shape == (1, 2)


class TestParserQualityPredictor:
    def test_fasttext_backend_end_to_end(self):
        predictor = ParserQualityPredictor(PARSERS, backend="fasttext", fasttext_config=FAST_CONFIG)
        predictor.fit(TEXTS, TARGETS)
        best = predictor.predict_best_parser([CLEAN_TEXTS[0], JUNK_TEXTS[0]])
        assert best[1] == "nougat"
        improvements = predictor.predicted_improvement([JUNK_TEXTS[0]], baseline_parser="pymupdf")
        assert improvements[0] > 0

    def test_transformer_backend_trains(self):
        predictor = ParserQualityPredictor(
            PARSERS,
            backend="transformer",
            transformer_config=TINY_TRANSFORMER,
            finetune_config=FineTuneConfig(n_epochs=3, batch_size=8, lora_only=False),
        )
        history = predictor.fit(TEXTS, TARGETS)
        assert history.train_loss[-1] < history.train_loss[0]
        predictions = predictor.predict([CLEAN_TEXTS[0], JUNK_TEXTS[0]])
        assert predictions.shape == (2, 2)

    def test_target_shape_validated(self):
        predictor = ParserQualityPredictor(PARSERS, backend="fasttext", fasttext_config=FAST_CONFIG)
        with pytest.raises(ValueError):
            predictor.fit(TEXTS, np.zeros((len(TEXTS), 3)))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ParserQualityPredictor(PARSERS, backend="xgboost")

    def test_empty_parser_list_rejected(self):
        with pytest.raises(ValueError):
            ParserQualityPredictor([], backend="fasttext")

    def test_r2_and_selection_accuracy_reported(self):
        predictor = ParserQualityPredictor(PARSERS, backend="fasttext", fasttext_config=FAST_CONFIG)
        predictor.fit(TEXTS, TARGETS)
        r2 = predictor.r2_scores(TEXTS, TARGETS)
        assert set(r2) == set(PARSERS)
        accuracy = predictor.selection_accuracy(TEXTS, TARGETS)
        assert 0.0 <= accuracy <= 1.0

    def test_unknown_baseline_rejected(self):
        predictor = ParserQualityPredictor(PARSERS, backend="fasttext", fasttext_config=FAST_CONFIG)
        predictor.fit(TEXTS, TARGETS)
        with pytest.raises(KeyError):
            predictor.predicted_improvement(TEXTS[:1], baseline_parser="marker")

    def test_empty_prediction(self):
        predictor = ParserQualityPredictor(PARSERS, backend="fasttext", fasttext_config=FAST_CONFIG)
        assert predictor.predict([]).shape == (0, 2)
