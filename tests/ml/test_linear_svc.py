"""Tests for the linear baseline models (ridge, logistic, SVC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.linear import LogisticRegression, RidgeRegression, softmax
from repro.ml.svc import LinearSVC


def make_linear_data(seed=0, n=200, d=5, m=2):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    W = rng.normal(size=(d, m))
    Y = X @ W + 0.01 * rng.normal(size=(n, m)) + 3.0
    return X, Y


def make_classification_data(seed=0, n=300, d=4, k=3):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(k, d))
    labels = rng.integers(0, k, size=n)
    X = centers[labels] + rng.normal(size=(n, d))
    return X, labels


class TestRidge:
    def test_recovers_linear_relationship(self):
        X, Y = make_linear_data()
        model = RidgeRegression(l2=1e-6).fit(X, Y)
        assert model.r2_score(X, Y) > 0.99

    def test_single_output_vector_targets(self):
        X, Y = make_linear_data(m=1)
        model = RidgeRegression().fit(X, Y[:, 0])
        assert model.predict(X).shape == (X.shape[0], 1)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((2, 3)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((5, 2)), np.zeros((4, 1)))

    def test_regularisation_shrinks_weights(self):
        X, Y = make_linear_data()
        small = RidgeRegression(l2=1e-6).fit(X, Y)
        large = RidgeRegression(l2=1e4).fit(X, Y)
        assert np.linalg.norm(large.weights) < np.linalg.norm(small.weights)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(10, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_stability_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 999.0]]))
        assert np.all(np.isfinite(probs))


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self):
        X, y = make_classification_data()
        model = LogisticRegression(n_classes=3, n_iterations=400).fit(X, y)
        assert model.accuracy(X, y) > 0.9

    def test_probabilities_valid(self):
        X, y = make_classification_data()
        model = LogisticRegression(n_classes=3).fit(X, y)
        probs = model.predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_label_range_validated(self):
        with pytest.raises(ValueError):
            LogisticRegression(n_classes=2).fit(np.zeros((3, 2)), np.array([0, 1, 5]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))


class TestLinearSVC:
    def test_separable_data_high_accuracy(self):
        X, y = make_classification_data(seed=3)
        model = LinearSVC(n_classes=3, n_epochs=20).fit(X, y)
        assert model.accuracy(X, y) > 0.85

    def test_decision_function_shape(self):
        X, y = make_classification_data(seed=4)
        model = LinearSVC(n_classes=3).fit(X, y)
        assert model.decision_function(X).shape == (X.shape[0], 3)

    def test_deterministic_given_seed(self):
        X, y = make_classification_data(seed=5)
        a = LinearSVC(n_classes=3, seed=1).fit(X, y).predict(X)
        b = LinearSVC(n_classes=3, seed=1).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVC().decision_function(np.zeros((1, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LinearSVC().fit(np.zeros((4, 2)), np.zeros(3))
