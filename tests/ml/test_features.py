"""Tests for text-statistics and metadata featurisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.documents.metadata import sample_metadata
from repro.ml.features import TEXT_FEATURE_NAMES, MetadataFeaturizer, TextStatisticsExtractor

CLEAN = (
    "The robust framework demonstrates a significant result in the catalyst analysis "
    "with respect to the polymerization yield across repeated experiments."
)
SCRAMBLED = "Teh rbsout fmrwaoerk dmsnoaretets a sgcniiniaft rsleut in the catlsyat aaynslis"
WHITESPACE_JUNK = "T h e r o b u s t f r a m e w o r k d e m o n s t r a t e s"


class TestTextStatistics:
    def test_feature_vector_shape_and_names(self):
        extractor = TextStatisticsExtractor()
        features = extractor.extract(CLEAN)
        assert features.shape == (len(TEXT_FEATURE_NAMES),)
        assert extractor.n_features == len(TEXT_FEATURE_NAMES)

    def test_empty_text_gives_zero_vector(self):
        assert not TextStatisticsExtractor().extract("").any()

    def test_all_features_finite(self):
        for text in [CLEAN, SCRAMBLED, WHITESPACE_JUNK, "x", "∂∇ΣΣΣ", "123 456"]:
            features = TextStatisticsExtractor().extract(text)
            assert np.all(np.isfinite(features))

    def test_scrambled_text_has_more_vowel_free_words(self):
        extractor = TextStatisticsExtractor()
        index = TEXT_FEATURE_NAMES.index("vowel_free_word_ratio")
        assert extractor.extract(SCRAMBLED)[index] >= extractor.extract(CLEAN)[index]

    def test_whitespace_junk_detected(self):
        extractor = TextStatisticsExtractor()
        index = TEXT_FEATURE_NAMES.index("single_char_word_ratio")
        assert extractor.extract(WHITESPACE_JUNK)[index] > extractor.extract(CLEAN)[index]

    def test_lexicon_hits_higher_for_scientific_text(self):
        extractor = TextStatisticsExtractor()
        index = TEXT_FEATURE_NAMES.index("lexicon_hit_ratio")
        generic = "the weather today is nice and the garden looks lovely in spring"
        assert extractor.extract(CLEAN)[index] > extractor.extract(generic)[index]

    def test_batch_extraction(self):
        matrix = TextStatisticsExtractor().extract_batch([CLEAN, SCRAMBLED])
        assert matrix.shape == (2, len(TEXT_FEATURE_NAMES))
        assert TextStatisticsExtractor().extract_batch([]).shape == (0, len(TEXT_FEATURE_NAMES))


class TestMetadataFeaturizer:
    def test_feature_width_matches_names(self):
        featurizer = MetadataFeaturizer()
        meta = sample_metadata(np.random.default_rng(0), n_pages=6)
        features = featurizer.extract(meta)
        assert features.shape == (featurizer.n_features,)
        assert len(featurizer.feature_names) == featurizer.n_features

    def test_one_hot_encoding(self):
        featurizer = MetadataFeaturizer(fields=("publisher",))
        meta = sample_metadata(np.random.default_rng(1), n_pages=4)
        features = featurizer.extract(meta)
        assert features.sum() == pytest.approx(1.0)
        assert featurizer.feature_names[int(features.argmax())] == f"publisher={meta.publisher}"

    def test_year_features(self):
        featurizer = MetadataFeaturizer(fields=("year",))
        meta = sample_metadata(np.random.default_rng(2), n_pages=4)
        features = featurizer.extract(meta)
        assert features.shape == (3,)

    def test_field_subsets_change_width(self):
        wide = MetadataFeaturizer()
        narrow = MetadataFeaturizer(fields=("publisher", "year"))
        assert narrow.n_features < wide.n_features

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            MetadataFeaturizer(fields=("isbn",))

    def test_batch(self):
        featurizer = MetadataFeaturizer(fields=("publisher", "domain"))
        metas = [sample_metadata(np.random.default_rng(i), n_pages=3) for i in range(4)]
        matrix = featurizer.extract_batch(metas)
        assert matrix.shape == (4, featurizer.n_features)

    def test_title_hash_buckets(self):
        featurizer = MetadataFeaturizer(fields=("title",), hash_buckets=8)
        meta = sample_metadata(np.random.default_rng(3), n_pages=3)
        features = featurizer.extract(meta)
        assert features.shape == (8,)
        assert features.sum() == pytest.approx(1.0)
