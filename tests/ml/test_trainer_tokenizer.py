"""Tests for the optimisers, training utilities and the hashing tokenizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tokenizer import CLS_ID, PAD_ID, HashingTokenizer
from repro.ml.trainer import (
    AdamOptimizer,
    SGDOptimizer,
    TrainingHistory,
    clip_gradients,
    minibatch_indices,
    numerical_gradient,
)


class TestOptimizers:
    def test_adam_minimises_quadratic(self):
        params = {"x": np.array([5.0, -3.0])}
        optimizer = AdamOptimizer(learning_rate=0.1)
        for _ in range(300):
            grads = {"x": 2.0 * params["x"]}
            optimizer.step(params, grads)
        assert np.abs(params["x"]).max() < 0.05

    def test_sgd_with_momentum_minimises_quadratic(self):
        params = {"x": np.array([4.0])}
        optimizer = SGDOptimizer(learning_rate=0.05, momentum=0.8)
        for _ in range(200):
            optimizer.step(params, {"x": 2.0 * params["x"]})
        assert abs(params["x"][0]) < 0.05

    def test_adam_ignores_unknown_parameters(self):
        params = {"x": np.zeros(2)}
        AdamOptimizer().step(params, {"y": np.ones(2)})
        np.testing.assert_array_equal(params["x"], np.zeros(2))

    def test_adam_reset(self):
        optimizer = AdamOptimizer()
        params = {"x": np.ones(1)}
        optimizer.step(params, {"x": np.ones(1)})
        optimizer.reset()
        assert optimizer._t == 0


class TestTrainingUtilities:
    def test_history_records(self):
        history = TrainingHistory()
        history.record(1.0, 2.0)
        history.record(0.5, 1.5)
        assert history.train_loss == [1.0, 0.5]
        assert history.best_validation_loss == 1.5

    def test_minibatches_cover_all_indices(self):
        batches = list(minibatch_indices(25, 8, seed=3, epoch=0))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(25))
        assert all(len(b) <= 8 for b in batches)

    def test_minibatches_reshuffled_per_epoch(self):
        a = np.concatenate(list(minibatch_indices(30, 10, seed=3, epoch=0)))
        b = np.concatenate(list(minibatch_indices(30, 10, seed=3, epoch=1)))
        assert not np.array_equal(a, b)

    def test_clip_gradients(self):
        grads = {"a": np.full(4, 10.0)}
        norm = clip_gradients(grads, max_norm=1.0)
        assert norm > 1.0
        assert np.linalg.norm(grads["a"]) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        grads = {"a": np.full(4, 0.01)}
        clip_gradients(grads, max_norm=10.0)
        np.testing.assert_allclose(grads["a"], 0.01)

    def test_numerical_gradient_of_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda: float(np.sum(x**2)), x)
        np.testing.assert_allclose(grad, 2 * x, atol=1e-4)


class TestHashingTokenizer:
    def test_encode_shape_and_padding(self):
        tokenizer = HashingTokenizer(vocab_size=128, max_length=16)
        ids = tokenizer.encode("a short text")
        assert ids.shape == (16,)
        assert ids[0] == CLS_ID
        assert ids[-1] == PAD_ID

    def test_truncation(self):
        tokenizer = HashingTokenizer(vocab_size=128, max_length=8)
        ids = tokenizer.encode("word " * 50)
        assert ids.shape == (8,)
        assert (ids != PAD_ID).all()

    def test_batch_mask(self):
        tokenizer = HashingTokenizer(vocab_size=128, max_length=10)
        ids, mask = tokenizer.encode_batch(["one two", "a much longer sentence with many words"])
        assert ids.shape == mask.shape == (2, 10)
        assert mask[0].sum() < mask[1].sum()

    def test_stability_across_instances(self):
        a = HashingTokenizer(vocab_size=512, max_length=12).encode("stable hashing please")
        b = HashingTokenizer(vocab_size=512, max_length=12).encode("stable hashing please")
        np.testing.assert_array_equal(a, b)

    def test_ids_in_range(self):
        tokenizer = HashingTokenizer(vocab_size=64, max_length=32)
        ids = tokenizer.encode("many different words " * 5)
        assert ids.max() < 64

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            HashingTokenizer(vocab_size=2)
        with pytest.raises(ValueError):
            HashingTokenizer(max_length=1)

    @settings(max_examples=30, deadline=None)
    @given(st.text(max_size=200))
    def test_encode_never_fails(self, text):
        tokenizer = HashingTokenizer(vocab_size=256, max_length=20)
        ids = tokenizer.encode(text)
        assert ids.shape == (20,)
        assert (ids >= 0).all()
