"""Tests for the numpy Transformer encoder (forward, backward, LoRA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.lora import LoraConfig, merge_lora, n_trainable_parameters, with_lora
from repro.ml.trainer import numerical_gradient
from repro.ml.transformer import TransformerConfig, TransformerEncoder, gelu, gelu_grad

TINY = TransformerConfig(
    vocab_size=64, max_length=8, d_model=8, n_heads=2, n_layers=2, d_ff=12, seed=5, lora_rank=2
)


def make_batch(config: TransformerConfig, batch_size: int = 3, seed: int = 0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(3, config.vocab_size, size=(batch_size, config.max_length))
    ids[:, 0] = 1
    mask = np.ones((batch_size, config.max_length))
    mask[0, config.max_length // 2 :] = 0
    ids[mask == 0] = 0
    return ids, mask


class TestConfigValidation:
    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            TransformerConfig(d_model=10, n_heads=3)

    def test_pooling_validated(self):
        with pytest.raises(ValueError):
            TransformerConfig(pooling="max")


class TestActivations:
    def test_gelu_matches_numerical_gradient(self):
        x = np.linspace(-3, 3, 13)
        numeric = np.array(
            [(gelu(xi + 1e-5) - gelu(xi - 1e-5)) / 2e-5 for xi in x]
        )
        np.testing.assert_allclose(gelu_grad(x), numeric, atol=1e-6)


class TestForward:
    def test_output_shape(self):
        encoder = TransformerEncoder(TINY)
        ids, mask = make_batch(TINY)
        hidden, cache = encoder.forward(ids, mask)
        assert hidden.shape == (3, TINY.max_length, TINY.d_model)
        assert len(cache["layers"]) == TINY.n_layers

    def test_deterministic(self):
        encoder = TransformerEncoder(TINY)
        ids, mask = make_batch(TINY)
        a, _ = encoder.forward(ids, mask)
        b, _ = encoder.forward(ids, mask)
        np.testing.assert_array_equal(a, b)

    def test_padding_does_not_affect_real_tokens(self):
        # Changing the *content* of padded positions must not change the
        # representation of unpadded positions (they are masked out of
        # attention).
        encoder = TransformerEncoder(TINY)
        ids, mask = make_batch(TINY)
        hidden_a, _ = encoder.forward(ids, mask)
        ids_b = ids.copy()
        ids_b[0, -1] = 7  # padded position of example 0
        hidden_b, _ = encoder.forward(ids_b, mask)
        np.testing.assert_allclose(hidden_a[0, 0], hidden_b[0, 0], atol=1e-10)

    def test_pooling_modes(self):
        encoder = TransformerEncoder(TINY)
        ids, mask = make_batch(TINY)
        hidden, _ = encoder.forward(ids, mask)
        cls = encoder.pool(hidden, mask)
        assert cls.shape == (3, TINY.d_model)
        mean_cfg = TransformerConfig(
            vocab_size=64, max_length=8, d_model=8, n_heads=2, n_layers=1, d_ff=12, pooling="mean"
        )
        mean_encoder = TransformerEncoder(mean_cfg)
        hidden2, _ = mean_encoder.forward(ids, mask)
        pooled = mean_encoder.pool(hidden2, mask)
        assert pooled.shape == (3, 8)

    def test_parameter_count_and_names(self):
        encoder = TransformerEncoder(TINY)
        assert encoder.n_parameters() > 0
        assert len(encoder.lora_parameter_names()) == TINY.n_layers * 4
        assert all(".lora_" in n for n in encoder.lora_parameter_names())


class TestBackward:
    @pytest.mark.parametrize(
        "name",
        [
            "token_embedding",
            "position_embedding",
            "layer0.Wv",
            "layer0.Wo",
            "layer0.W_ff1",
            "layer0.W_ff2",
            "layer0.ln1_gamma",
            "layer1.ln2_beta",
            "layer1.bq",
            "layer0.lora_Bv",
        ],
    )
    def test_gradients_match_numerical(self, name):
        encoder = TransformerEncoder(TINY)
        ids, mask = make_batch(TINY, batch_size=2, seed=3)
        rng = np.random.default_rng(9)
        target = rng.normal(size=(2, TINY.max_length, TINY.d_model))

        def loss() -> float:
            hidden, _ = encoder.forward(ids, mask)
            return float(np.sum(hidden * target))

        hidden, cache = encoder.forward(ids, mask)
        grads = encoder.backward(target, cache)
        numeric = numerical_gradient(loss, encoder.params[name], epsilon=1e-4)
        scale = max(1e-6, np.abs(numeric).max())
        np.testing.assert_allclose(grads[name], numeric, atol=2e-3 * scale + 1e-8)

    def test_attention_projection_gradients_close(self):
        # Wq/Wk gradients are small at init (soft attention), so compare with a
        # looser tolerance relative to their own scale.
        encoder = TransformerEncoder(TINY)
        ids, mask = make_batch(TINY, batch_size=2, seed=4)
        target = np.random.default_rng(2).normal(size=(2, TINY.max_length, TINY.d_model))

        def loss() -> float:
            hidden, _ = encoder.forward(ids, mask)
            return float(np.sum(hidden * target))

        _, cache = encoder.forward(ids, mask)
        grads = encoder.backward(target, cache)
        for name in ("layer0.Wq", "layer0.Wk"):
            numeric = numerical_gradient(loss, encoder.params[name], epsilon=1e-4)
            denom = np.abs(numeric).max() + 1e-8
            assert np.abs(grads[name] - numeric).max() / denom < 5e-3

    def test_pool_backward_cls(self):
        encoder = TransformerEncoder(TINY)
        ids, mask = make_batch(TINY)
        hidden, _ = encoder.forward(ids, mask)
        grad_pooled = np.ones((3, TINY.d_model))
        grad_hidden = encoder.pool_backward(grad_pooled, hidden.shape, mask)
        assert grad_hidden[:, 0, :].sum() == pytest.approx(3 * TINY.d_model)
        assert grad_hidden[:, 1:, :].sum() == 0


class TestLoRA:
    def test_lora_parameters_fewer_than_full(self):
        encoder = TransformerEncoder(TINY)
        assert n_trainable_parameters(encoder, lora_only=True) < n_trainable_parameters(
            encoder, lora_only=False
        )

    def test_with_lora_config(self):
        base = TransformerConfig(vocab_size=32, max_length=8, d_model=8, n_heads=2, n_layers=1, d_ff=8)
        adapted = with_lora(base, LoraConfig(rank=3, alpha=6.0))
        assert adapted.lora_rank == 3
        assert adapted.lora_alpha == 6.0

    def test_merge_lora_preserves_outputs(self):
        encoder = TransformerEncoder(TINY)
        rng = np.random.default_rng(0)
        # Give the adapters non-trivial values so merging actually moves weights.
        for name in encoder.lora_parameter_names():
            encoder.params[name] = rng.normal(0, 0.05, size=encoder.params[name].shape)
        ids, mask = make_batch(TINY)
        before, _ = encoder.forward(ids, mask)
        merge_lora(encoder)
        after, _ = encoder.forward(ids, mask)
        np.testing.assert_allclose(before, after, atol=1e-10)
        for name in encoder.lora_parameter_names():
            assert not encoder.params[name].any()

    def test_clone_and_load_parameters(self):
        encoder = TransformerEncoder(TINY)
        snapshot = encoder.clone_parameters()
        encoder.params["token_embedding"] += 1.0
        encoder.load_parameters(snapshot)
        np.testing.assert_array_equal(encoder.params["token_embedding"], snapshot["token_embedding"])
