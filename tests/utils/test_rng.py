"""Tests for deterministic RNG derivation."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_seed, rng_from, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_qualifier_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_root_sensitivity(self):
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_in_valid_range(self):
        seed = derive_seed(123456789, "x", "y", "z")
        assert 0 <= seed < 2**63 - 1


class TestRngFrom:
    def test_same_path_same_stream(self):
        a = rng_from(3, "doc", 5).random(10)
        b = rng_from(3, "doc", 5).random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_path_different_stream(self):
        a = rng_from(3, "doc", 5).random(10)
        b = rng_from(3, "doc", 6).random(10)
        assert not np.array_equal(a, b)


class TestSpawnRng:
    def test_spawn_depends_on_qualifier(self):
        parent = rng_from(1, "parent")
        child_a = spawn_rng(parent, "a")
        parent2 = rng_from(1, "parent")
        child_b = spawn_rng(parent2, "b")
        assert not np.array_equal(child_a.random(5), child_b.random(5))

    def test_spawn_reproducible_from_same_parent_state(self):
        parent1 = rng_from(1, "parent")
        parent2 = rng_from(1, "parent")
        np.testing.assert_array_equal(
            spawn_rng(parent1, "x").random(5), spawn_rng(parent2, "x").random(5)
        )
