"""Tests for stable hashing utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.hashing import bucket, stable_choice_index, stable_hash, stable_hash_bytes


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_known_stability(self):
        # Guards against accidental changes to the hashing scheme, which would
        # silently change every generated corpus.
        assert stable_hash("adaparse") == stable_hash("adaparse")
        assert isinstance(stable_hash("adaparse"), int)

    def test_concatenation_ambiguity_avoided(self):
        assert stable_hash_bytes(b"ab", b"c") != stable_hash_bytes(b"a", b"bc")

    @given(st.text(), st.text())
    def test_non_negative(self, a, b):
        assert stable_hash(a, b) >= 0


class TestBucket:
    def test_range(self):
        for key in range(100):
            assert 0 <= bucket(key, 7) < 7

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            bucket("x", 0)

    @given(st.integers(), st.integers(min_value=1, max_value=50))
    def test_bucket_always_in_range(self, key, n):
        assert 0 <= bucket(key, n) < n


class TestStableChoiceIndex:
    def test_respects_zero_weight(self):
        # With all the mass on index 1, index 1 must always be chosen.
        for key in range(50):
            assert stable_choice_index(key, [0.0, 1.0, 0.0]) == 1

    def test_deterministic(self):
        assert stable_choice_index("k", [0.3, 0.7]) == stable_choice_index("k", [0.3, 0.7])

    def test_salt_changes_draws(self):
        draws_a = [stable_choice_index(i, [0.5, 0.5], salt="a") for i in range(200)]
        draws_b = [stable_choice_index(i, [0.5, 0.5], salt="b") for i in range(200)]
        assert draws_a != draws_b

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            stable_choice_index("k", [])

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            stable_choice_index("k", [0.0, 0.0])

    def test_rough_proportionality(self):
        draws = [stable_choice_index(i, [0.2, 0.8]) for i in range(2000)]
        fraction_of_ones = sum(draws) / len(draws)
        assert 0.7 < fraction_of_ones < 0.9
