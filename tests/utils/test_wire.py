"""Tests of the shared framing module (repro.utils.wire).

The framing behaviour itself is exhaustively covered through the cluster
protocol suite (tests/cluster/test_protocol.py); this file pins the
extraction contract: cluster.protocol re-exports the *same* objects, and
per-channel frame limits work standalone.
"""

from __future__ import annotations

import socket

import pytest

from repro.utils import wire
from repro.utils.wire import MessageChannel, MessageTooLarge, ProtocolError


class TestSharedFraming:
    def test_cluster_protocol_reexports_are_the_same_objects(self):
        from repro.cluster import protocol

        assert protocol.MessageChannel is wire.MessageChannel
        assert protocol.ProtocolError is wire.ProtocolError
        assert protocol.MessageTooLarge is wire.MessageTooLarge
        assert protocol.encode_message is wire.encode_message
        assert protocol.MAX_MESSAGE_BYTES == wire.MAX_MESSAGE_BYTES

    def test_gateway_protocol_shares_the_framing(self):
        from repro.gateway import protocol as gateway_protocol

        assert gateway_protocol.MessageChannel is wire.MessageChannel
        assert gateway_protocol.ProtocolError is wire.ProtocolError

    def test_per_channel_limit_overrides_the_module_default(self):
        left_sock, right_sock = socket.socketpair()
        left = MessageChannel(left_sock, max_message_bytes=128)
        right = MessageChannel(right_sock)
        try:
            with pytest.raises(MessageTooLarge):
                left.send({"type": "blob", "data": "x" * 200})
            # The module default still applies to the unrestricted side.
            right.send({"type": "blob", "data": "x" * 200})
        finally:
            left.close()
            right.close()

    def test_last_frame_bytes_tracks_the_received_frame(self):
        left_sock, right_sock = socket.socketpair()
        left = MessageChannel(left_sock)
        right = MessageChannel(right_sock)
        try:
            small = left.send({"type": "a"})
            assert right.recv() == {"type": "a"}
            assert right.last_frame_bytes == small
            big = left.send({"type": "b", "blob": "y" * 500})
            assert right.recv()["type"] == "b"
            assert right.last_frame_bytes == big
            assert right.bytes_received == small + big
        finally:
            left.close()
            right.close()

    def test_closed_channel_refuses_sends(self):
        left_sock, right_sock = socket.socketpair()
        left = MessageChannel(left_sock)
        right = MessageChannel(right_sock)
        left.close()
        try:
            with pytest.raises(ProtocolError, match="closed"):
                left.send({"type": "a"})
            assert right.recv() is None
        finally:
            right.close()
