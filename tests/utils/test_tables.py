"""Tests for the tabular report renderer."""

from __future__ import annotations

from repro.utils.tables import Table, format_table, tables_to_markdown


def make_table() -> Table:
    table = Table(title="Demo", columns=["Parser", "BLEU", "Note"])
    table.add_row({"Parser": "pymupdf", "BLEU": 51.94, "Note": "fast"})
    table.add_row({"Parser": "nougat", "BLEU": 48.1})
    return table


class TestTable:
    def test_add_and_column(self):
        table = make_table()
        assert table.column("Parser") == ["pymupdf", "nougat"]
        assert table.column("Note") == ["fast", None]

    def test_sort_by(self):
        table = make_table().sort_by("BLEU", reverse=True)
        assert table.column("Parser") == ["pymupdf", "nougat"]
        table = make_table().sort_by("BLEU")
        assert table.column("Parser") == ["nougat", "pymupdf"]

    def test_markdown_rendering(self):
        text = make_table().to_markdown(precision=1)
        assert "| Parser" in text
        assert "51.9" in text
        assert "Demo" in text

    def test_plain_text_rendering_alignment(self):
        text = make_table().to_text()
        lines = text.splitlines()
        # title + header + separator + two rows
        assert len(lines) == 5

    def test_missing_value_renders_as_dash(self):
        text = make_table().to_text()
        assert "–" in text

    def test_as_dicts_copies(self):
        table = make_table()
        rows = table.as_dicts()
        rows[0]["Parser"] = "changed"
        assert table.rows[0]["Parser"] == "pymupdf"


class TestFormatting:
    def test_precision_applied(self):
        table = make_table()
        assert "51.94" in format_table(table, precision=2)
        assert "51.9" in format_table(table, precision=1)

    def test_multi_table_rendering(self):
        combined = tables_to_markdown([make_table(), make_table()])
        assert combined.count("Demo") == 2

    def test_boolean_rendering(self):
        table = Table(title="", columns=["flag"])
        table.add_row({"flag": True})
        assert "yes" in format_table(table)
