"""Tests for the wall-clock timer helper."""

from __future__ import annotations

from repro.utils.timer import WallTimer


class TestWallTimer:
    def test_section_records_elapsed(self):
        timer = WallTimer()
        with timer.section("work"):
            sum(range(1000))
        assert "work" in timer.totals
        assert timer.totals["work"] >= 0.0

    def test_sections_accumulate(self):
        timer = WallTimer()
        with timer.section("work"):
            pass
        first = timer.totals["work"]
        with timer.section("work"):
            pass
        assert timer.totals["work"] >= first

    def test_summary_lists_all_sections(self):
        timer = WallTimer()
        with timer.section("a"):
            pass
        with timer.section("b"):
            pass
        summary = timer.summary()
        assert "a:" in summary and "b:" in summary
