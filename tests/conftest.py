"""Shared pytest fixtures.

Expensive objects (corpora, parser registries, labelled datasets) are built
once per session at deliberately small sizes so the whole suite stays fast
while still exercising real end-to-end paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.documents.corpus import Corpus, CorpusConfig, build_corpus, build_document
from repro.documents.document import SciDocument
from repro.parsers.registry import ParserRegistry, default_registry


@pytest.fixture(scope="session")
def small_corpus() -> Corpus:
    """A 12-document corpus shared across tests."""
    return build_corpus(CorpusConfig(n_documents=12, seed=101, min_pages=3, max_pages=8))


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """A 5-document corpus for the most expensive integration tests."""
    return build_corpus(CorpusConfig(n_documents=5, seed=77, min_pages=3, max_pages=5))


@pytest.fixture(scope="session")
def registry() -> ParserRegistry:
    """The default parser registry (six simulated parsers)."""
    return default_registry()


@pytest.fixture(scope="session")
def sample_document() -> SciDocument:
    """One deterministic document."""
    return build_document(0, CorpusConfig(n_documents=1, seed=404, min_pages=4, max_pages=6))


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)
