"""Cache keys: content hashing and parser config fingerprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.keys import CacheKey, document_content_hash, parse_cache_key
from repro.core.config import AdaParseConfig
from repro.core.engine import AdaParseEngine
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.documents.document import TextLayer, TextLayerQuality
from repro.parsers.registry import default_registry


@pytest.fixture(scope="module")
def corpus():
    return build_corpus(CorpusConfig(n_documents=6, seed=11, min_pages=1, max_pages=3))


class _ScriptedEngine(AdaParseEngine):
    name = "scripted"

    def improvement_scores(self, documents, extracted_texts) -> np.ndarray:
        return np.linspace(0.0, 1.0, len(documents))


class TestContentHash:
    def test_deterministic_and_memoised(self, corpus):
        doc = corpus.documents[0]
        first = document_content_hash(doc)
        assert document_content_hash(doc) == first
        # A structurally identical rebuild hashes identically too.
        rebuilt = build_corpus(
            CorpusConfig(n_documents=6, seed=11, min_pages=1, max_pages=3)
        ).documents[0]
        assert document_content_hash(rebuilt) == first

    def test_distinct_documents_distinct_hashes(self, corpus):
        hashes = {document_content_hash(d) for d in corpus.documents}
        assert len(hashes) == len(corpus.documents)

    def test_text_layer_change_changes_hash(self, corpus):
        doc = corpus.documents[0]
        altered = doc.with_text_layer(
            TextLayer(
                quality=TextLayerQuality.CLEAN,
                page_texts=["changed" for _ in doc.text_layer.page_texts],
                producer="test",
            )
        )
        assert document_content_hash(altered) != document_content_hash(doc)

    def test_exact_case_difference_changes_hash(self, corpus):
        # The dedup fingerprint folds case, but the cache must not: the
        # exact channel hash keeps case-variant layers apart.
        doc = corpus.documents[0]
        upper = doc.with_text_layer(
            TextLayer(
                quality=doc.text_layer.quality,
                page_texts=[t.upper() for t in doc.text_layer.page_texts],
                producer=doc.text_layer.producer,
            )
        )
        assert document_content_hash(upper) != document_content_hash(doc)


class TestCacheKey:
    def test_round_trip(self, corpus):
        key = parse_cache_key(corpus.documents[0], "abcd1234")
        assert CacheKey.parse(str(key)) == key

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError):
            CacheKey.parse("no-separator")

    def test_shard_index_stable_and_bounded(self, corpus):
        # Shard selection lives in one place: the disk store.
        from repro.cache import ShardedDiskStore

        store = ShardedDiskStore.__new__(ShardedDiskStore)
        store.n_shards = 16
        raw = str(parse_cache_key(corpus.documents[0], "abcd1234"))
        assert 0 <= store.shard_index_for(raw) < 16
        assert store.shard_index_for(raw) == store.shard_index_for(raw)


class TestConfigFingerprints:
    def test_base_parser_fingerprint_stable_across_instances(self):
        a = default_registry().get("pymupdf").config_fingerprint()
        b = default_registry().get("pymupdf").config_fingerprint()
        assert a == b

    def test_parsers_have_distinct_fingerprints(self):
        registry = default_registry()
        fingerprints = {p.config_fingerprint() for p in registry}
        assert len(fingerprints) == len(registry)

    def test_version_bump_changes_fingerprint(self):
        parser = default_registry().get("pymupdf")
        before = parser.config_fingerprint()
        original = parser.version
        try:
            type(parser).version = original + ".post1"
            assert parser.config_fingerprint() != before
        finally:
            type(parser).version = original

    def test_engine_fingerprint_sensitive_to_alpha(self):
        registry = default_registry()
        engine = _ScriptedEngine(registry, AdaParseConfig(alpha=0.05, batch_size=16))
        sibling = engine.with_overrides(alpha=0.10)
        assert engine.config_fingerprint() != sibling.config_fingerprint()
        assert (
            engine.config_fingerprint()
            == _ScriptedEngine(
                registry, AdaParseConfig(alpha=0.05, batch_size=16)
            ).config_fingerprint()
        )

    def test_engine_fingerprint_sensitive_to_improvement_classifier(self):
        import numpy as np

        from repro.core.cls2 import ImprovementClassifier
        from repro.documents.metadata import DocumentMetadata

        registry = default_registry()

        def make_engine(seed: int) -> _ScriptedEngine:
            rng = np.random.default_rng(seed)
            classifier = ImprovementClassifier()
            metadatas = [
                DocumentMetadata(
                    title=f"doc {i}",
                    publisher="acme",
                    domain="physics",
                    subcategory="optics",
                    year=2000 + i,
                    pdf_format="1.7",
                    producer="latex",
                    n_pages=4,
                )
                for i in range(12)
            ]
            classifier.fit(
                metadatas, registry.names, rng.uniform(0.0, 1.0, size=(12, len(registry)))
            )
            return _ScriptedEngine(registry, improvement_classifier=classifier)

        assert make_engine(1).config_fingerprint() == make_engine(1).config_fingerprint()
        # Retraining CLS II (different data -> different weights) re-keys.
        assert make_engine(1).config_fingerprint() != make_engine(2).config_fingerprint()

    def test_engine_fingerprint_sensitive_to_selector_weights(self):
        from repro.core.cls3 import ParserSelector
        from repro.ml.quality_model import ParserQualityPredictor

        registry = default_registry()
        names = registry.names

        def make_selector() -> ParserSelector:
            return ParserSelector(
                ParserQualityPredictor(names, backend="fasttext"),
                default_parser="pymupdf",
            )

        a, b = make_selector(), make_selector()
        assert a.config_fingerprint() == b.config_fingerprint()
        b.predictor.fasttext.head_bias = b.predictor.fasttext.head_bias + 0.5
        assert a.config_fingerprint() != b.config_fingerprint()
