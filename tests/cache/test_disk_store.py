"""The sharded JSONL disk backend: atomicity and corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.cache.disk import ShardedDiskStore


def _payload(key: str, value: str = "v") -> dict:
    return {"key": key, "value": value}


class TestShardedDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=4)
        for i in range(20):
            store.put(f"{i:08x}:fp", _payload(f"{i:08x}:fp", f"v{i}"))
        store.flush()
        reopened = ShardedDiskStore(tmp_path, n_shards=4)
        for i in range(20):
            assert reopened.get(f"{i:08x}:fp") == _payload(f"{i:08x}:fp", f"v{i}")
        assert len(reopened) == 20

    def test_entries_spread_over_shards(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=4)
        for i in range(64):
            store.put(f"{i * 2654435761 % 2**32:08x}:fp", _payload("x"))
        store.flush()
        assert len(store.shard_paths()) > 1

    def test_no_temporary_files_survive_flush(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=2)
        store.put("00000000:fp", _payload("00000000:fp"))
        store.flush()
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_unflushed_put_still_readable(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=2)
        store.put("00000000:fp", _payload("00000000:fp"))
        assert store.get("00000000:fp") is not None

    def test_torn_tail_line_skipped(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=1)
        store.put("00000001:fp", _payload("00000001:fp", "keep"))
        store.put("00000002:fp", _payload("00000002:fp", "keep-too"))
        store.flush()
        path = store.shard_paths()[0]
        # Simulate a crash mid-write: append half a JSON line.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "00000003:fp", "value": "tor')
        reopened = ShardedDiskStore(tmp_path, n_shards=1)
        assert reopened.get("00000001:fp")["value"] == "keep"
        assert reopened.get("00000002:fp")["value"] == "keep-too"
        assert reopened.get("00000003:fp") is None
        assert reopened.corrupt_lines_skipped == 1

    def test_garbage_and_schema_violations_skipped(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=1)
        store.put("00000001:fp", _payload("00000001:fp"))
        store.flush()
        path = store.shard_paths()[0]
        with path.open("a", encoding="utf-8") as handle:
            handle.write("\x00\xfengarbage\n")
            handle.write(json.dumps(["not", "an", "object"]) + "\n")
            handle.write(json.dumps({"no_key_field": 1}) + "\n")
        reopened = ShardedDiskStore(tmp_path, n_shards=1)
        assert reopened.get("00000001:fp") is not None
        assert len(reopened) == 1
        assert reopened.corrupt_lines_skipped == 3

    def test_later_duplicate_line_wins(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=1)
        store.put("00000001:fp", _payload("00000001:fp", "old"))
        store.flush()
        path = store.shard_paths()[0]
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(_payload("00000001:fp", "new")) + "\n")
        reopened = ShardedDiskStore(tmp_path, n_shards=1)
        assert reopened.get("00000001:fp")["value"] == "new"

    def test_stray_temporaries_ignored_and_own_ones_swept(self, tmp_path):
        import os
        import threading

        store = ShardedDiskStore(tmp_path, n_shards=1)
        store.put("00000001:fp", _payload("00000001:fp"))
        store.flush()
        # A foreign process's in-progress temporary must never be touched
        # (it may be between fsync and rename); our own stragglers are swept.
        foreign = tmp_path / "shard-000.jsonl.tmp-999-999"
        foreign.write_text("half-written", encoding="utf-8")
        own = tmp_path / (
            f"shard-000.jsonl.tmp-{os.getpid()}-{threading.get_ident()}"
        )
        own.write_text("ours", encoding="utf-8")
        reopened = ShardedDiskStore(tmp_path, n_shards=1)
        assert len(reopened) == 1  # strays are not read as shards
        reopened.put("00000002:fp", _payload("00000002:fp"))
        reopened.flush()
        assert foreign.exists()
        assert not own.exists()

    def test_delete_and_purge(self, tmp_path):
        store = ShardedDiskStore(tmp_path, n_shards=2)
        for i in range(6):
            store.put(f"{i:08x}:fp", _payload(f"{i:08x}:fp"))
        store.flush()
        assert store.delete("00000000:fp")
        assert not store.delete("00000000:fp")
        removed = store.purge(lambda payload: payload["key"].startswith("000000"))
        assert removed == 5
        assert len(store) == 0
        # Empty shards are removed from disk.
        assert store.shard_paths() == []

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedDiskStore(tmp_path, n_shards=0)
        with pytest.raises(ValueError):
            ShardedDiskStore(tmp_path, flush_every=0)
