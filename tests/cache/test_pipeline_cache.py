"""Cache integration: pipeline policies, reports, builder reuse, CLI."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.cache import CachePolicy, ParseCache
from repro.core.config import AdaParseConfig
from repro.core.engine import AdaParseEngine
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.extraction import PyMuPDFSim
from repro.parsers.registry import ParserRegistry, default_registry
from repro.pipeline import ParsePipeline, ParseRequest, request_for_documents


class CountingParser(PyMuPDFSim):
    """PyMuPDF double that counts how many documents it actually parses."""

    name = "counting"

    def __init__(self) -> None:
        self.parse_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def parse(self, document):
        with self._lock:
            self.parse_counts[document.doc_id] = (
                self.parse_counts.get(document.doc_id, 0) + 1
            )
        return super().parse(document)


class _ScriptedEngine(AdaParseEngine):
    name = "scripted"

    def improvement_scores(self, documents, extracted_texts) -> np.ndarray:
        return np.linspace(0.0, 1.0, len(documents))


@pytest.fixture()
def corpus():
    return build_corpus(CorpusConfig(n_documents=12, seed=21, min_pages=1, max_pages=3))


def _counting_pipeline() -> tuple[ParsePipeline, CountingParser]:
    parser = CountingParser()
    registry = ParserRegistry([parser])
    return ParsePipeline(registry), parser


class TestRequestPolicy:
    def test_default_off_and_validation(self):
        assert ParseRequest().cache == "off"
        assert ParseRequest(cache="readwrite").cache_policy is CachePolicy.READWRITE
        assert ParseRequest(cache=CachePolicy.READ).cache == "read"
        with pytest.raises(ValueError):
            ParseRequest(cache="maybe")

    def test_json_round_trip_carries_policy(self):
        request = ParseRequest(parser="pymupdf", n_documents=5, cache="readwrite")
        rebuilt = ParseRequest.from_json_dict(request.to_json_dict())
        assert rebuilt.cache == "readwrite"


class TestPipelineCaching:
    def test_warm_run_all_hits_and_identical(self, corpus):
        documents = list(corpus)
        pipeline, parser = _counting_pipeline()
        baseline = ParsePipeline(ParserRegistry([CountingParser()])).run(
            request_for_documents("counting", documents)
        )
        cold = pipeline.run(
            request_for_documents("counting", documents, cache="readwrite")
        )
        warm = pipeline.run(
            request_for_documents("counting", documents, cache="readwrite")
        )
        assert cold.cache.misses == len(documents)
        assert cold.cache.stores == len(documents)
        assert warm.cache.hits == len(documents)
        assert warm.cache.misses == 0
        assert all(count == 1 for count in parser.parse_counts.values())
        for a, b in zip(warm.results, baseline.results):
            assert a.page_texts == b.page_texts
            assert a.usage == b.usage
            assert (a.doc_id, a.parser_name, a.succeeded) == (
                b.doc_id,
                b.parser_name,
                b.succeeded,
            )

    def test_policy_off_touches_nothing(self, corpus):
        pipeline, parser = _counting_pipeline()
        report = pipeline.run(request_for_documents("counting", list(corpus)))
        assert not report.cache.any_activity
        assert report.summary()["cache"] is None

    def test_read_policy_on_empty_cache_stores_nothing(self, corpus):
        pipeline, parser = _counting_pipeline()
        first = pipeline.run(request_for_documents("counting", list(corpus), cache="read"))
        second = pipeline.run(request_for_documents("counting", list(corpus), cache="read"))
        assert first.cache.misses == len(corpus)
        assert first.cache.stores == 0
        assert second.cache.hits == 0  # nothing was ever stored
        assert all(count == 2 for count in parser.parse_counts.values())

    def test_write_policy_populates_for_later_reads(self, corpus):
        pipeline, parser = _counting_pipeline()
        pipeline.run(request_for_documents("counting", list(corpus), cache="write"))
        warm = pipeline.run(request_for_documents("counting", list(corpus), cache="read"))
        assert warm.cache.hits == len(corpus)
        assert all(count == 1 for count in parser.parse_counts.values())

    def test_duplicate_documents_parsed_once(self, corpus):
        documents = list(corpus)[:4]
        pipeline, parser = _counting_pipeline()
        report = pipeline.run(
            request_for_documents(
                "counting", documents * 3, batch_size=5, cache="readwrite",
                backend="thread", backend_options={"n_jobs": 4},
            )
        )
        assert all(count == 1 for count in parser.parse_counts.values())
        assert report.cache.misses == len(documents)
        assert report.cache.hits + report.cache.coalesced == 2 * len(documents)
        # Order and identity of the replayed duplicates are preserved.
        assert [r.doc_id for r in report.results] == [d.doc_id for d in documents * 3]

    def test_threaded_warm_pass_identical(self, corpus):
        documents = list(corpus)
        pipeline, parser = _counting_pipeline()
        cold = pipeline.run(
            request_for_documents(
                "counting", documents, batch_size=3, cache="readwrite",
                backend="thread", backend_options={"n_jobs": 4},
            )
        )
        warm = pipeline.run(
            request_for_documents(
                "counting", documents, batch_size=3, cache="readwrite",
                backend="thread", backend_options={"n_jobs": 4},
            )
        )
        assert warm.cache.hits == len(documents)
        assert all(count == 1 for count in parser.parse_counts.values())
        for a, b in zip(warm.results, cold.results):
            assert a.page_texts == b.page_texts

    def test_persistent_cache_across_pipelines(self, corpus, tmp_path):
        documents = list(corpus)
        registry = ParserRegistry([CountingParser()])
        cold_pipeline = ParsePipeline(registry, cache=ParseCache(tmp_path / "pc"))
        cold_pipeline.run(request_for_documents("counting", documents, cache="readwrite"))
        warm_parser = CountingParser()
        warm_pipeline = ParsePipeline(
            ParserRegistry([warm_parser]), cache=ParseCache(tmp_path / "pc")
        )
        warm = warm_pipeline.run(
            request_for_documents("counting", documents, cache="readwrite")
        )
        assert warm.cache.hits == len(documents)
        assert warm_parser.parse_counts == {}  # nothing re-parsed

    def test_engine_decisions_replayed(self, corpus):
        documents = list(corpus)
        registry = default_registry()
        engine = _ScriptedEngine(registry, AdaParseConfig(alpha=0.25, batch_size=6))
        pipeline = ParsePipeline(registry, engines={engine.name: engine})
        cold = pipeline.run(
            request_for_documents(engine.name, documents, cache="readwrite")
        )
        warm = pipeline.run(
            request_for_documents(engine.name, documents, cache="readwrite")
        )
        assert warm.cache.hits == len(documents)
        assert [
            (d.doc_id, d.chosen_parser, d.stage, d.predicted_improvement)
            for d in warm.decisions
        ] == [
            (d.doc_id, d.chosen_parser, d.stage, d.predicted_improvement)
            for d in cold.decisions
        ]
        assert warm.fraction_routed() == cold.fraction_routed()

    def test_alpha_override_keys_separately(self, corpus):
        documents = list(corpus)
        registry = default_registry()
        engine = _ScriptedEngine(registry, AdaParseConfig(alpha=0.25, batch_size=6))
        pipeline = ParsePipeline(registry, engines={engine.name: engine})
        base = pipeline.run(
            request_for_documents(engine.name, documents, cache="readwrite")
        )
        overridden = pipeline.run(
            request_for_documents(engine.name, documents, cache="readwrite", alpha=0.5)
        )
        # A different α is a different fingerprint: no stale hits.
        assert overridden.cache.hits == 0
        assert overridden.cache.misses == len(documents)
        assert overridden.fraction_routed() > base.fraction_routed()

    def test_report_cache_stats_json_round_trip(self, corpus):
        pipeline, _ = _counting_pipeline()
        report = pipeline.run(
            request_for_documents("counting", list(corpus), cache="readwrite")
        )
        rebuilt = type(report).from_json_dict(report.to_json_dict())
        assert rebuilt.cache.misses == report.cache.misses
        assert rebuilt.cache.stores == report.cache.stores
        assert rebuilt.request.cache == "readwrite"


class TestDatasetBuilderReuse:
    def test_rebuild_reuses_cached_parses(self, corpus, tmp_path):
        from repro.datasets.assembly import DatasetBuildConfig, DatasetBuilder

        parser = CountingParser()
        pipeline = ParsePipeline(
            ParserRegistry([parser]), cache=ParseCache(tmp_path / "dc")
        )
        config = DatasetBuildConfig(cache="readwrite", min_tokens=0)
        builder = DatasetBuilder(parser, config, pipeline=pipeline)
        first = builder.build(corpus)
        second = builder.build(corpus)
        assert first.cache_stats.misses == len(corpus)
        assert second.cache_stats.hits == len(corpus)
        assert all(count == 1 for count in parser.parse_counts.values())
        assert [r.doc_id for r in second.records] == [r.doc_id for r in first.records]
        assert second.summary()["cache"]["hits"] == len(corpus)

    def test_invalid_cache_policy_rejected(self):
        from repro.datasets.assembly import DatasetBuildConfig

        with pytest.raises(ValueError):
            DatasetBuildConfig(cache="definitely")


class TestCacheCli:
    def test_warm_stats_purge_cycle(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cli-cache")
        assert main(["cache", "warm", "--dir", cache_dir, "--documents", "6", "--seed", "3"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 6
        assert stats["parsers"] == {"pymupdf": 6}
        assert main(["cache", "purge", "--dir", cache_dir]) == 0
        assert "purged 6" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", cache_dir]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_pipeline_command_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cli-cache")
        out_path = tmp_path / "report.json"
        for _ in range(2):
            assert (
                main(
                    [
                        "pipeline",
                        "--documents",
                        "5",
                        "--seed",
                        "9",
                        "--cache",
                        "readwrite",
                        "--cache-dir",
                        cache_dir,
                        "--output",
                        str(out_path),
                    ]
                )
                == 0
            )
            capsys.readouterr()
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["cache"]["hits"] == 5

    def test_cache_subcommands_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        for sub in ("stats", "purge", "warm"):
            args = parser.parse_args(["cache", sub])
            assert args.command == "cache" and args.cache_command == sub
