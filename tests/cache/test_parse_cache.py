"""ParseCache behaviour: tiers, policies, and single-flight concurrency."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cache import (
    CachePolicy,
    CacheStatsRecorder,
    LruTier,
    ParseCache,
    SingleFlight,
)
from repro.parsers.base import ParseResult, ResourceUsage


def _result(doc_id: str = "d1") -> ParseResult:
    return ParseResult(
        parser_name="pymupdf",
        doc_id=doc_id,
        page_texts=["page one", "page two"],
        usage=ResourceUsage(cpu_seconds=0.5),
    )


def _key(i: int = 0) -> str:
    return f"{i:032x}:deadbeef"


class TestPolicies:
    def test_matrix(self):
        assert not CachePolicy.OFF.reads and not CachePolicy.OFF.writes
        assert CachePolicy.READ.reads and not CachePolicy.READ.writes
        assert not CachePolicy.WRITE.reads and CachePolicy.WRITE.writes
        assert CachePolicy.READWRITE.reads and CachePolicy.READWRITE.writes

    def test_coerce(self):
        assert CachePolicy.coerce("readwrite") is CachePolicy.READWRITE
        assert CachePolicy.coerce(CachePolicy.READ) is CachePolicy.READ
        with pytest.raises(ValueError):
            CachePolicy.coerce("sometimes")


class TestLruTier:
    def test_bounded_with_lru_eviction(self):
        tier = LruTier(max_entries=2)
        tier.put("a", 1)
        tier.put("b", 2)
        assert tier.get("a") == 1  # refresh recency of "a"
        tier.put("c", 3)  # evicts "b"
        assert tier.get("b") is None
        assert tier.get("a") == 1 and tier.get("c") == 3
        assert tier.evictions == 1


class TestTiering:
    def test_memory_then_disk_promotion(self, tmp_path):
        cache = ParseCache(tmp_path, max_memory_entries=8)
        cache.store(_key(1), _result(), compute_seconds=0.2)
        cache.flush()
        # A fresh cache over the same directory has a cold memory tier.
        reopened = ParseCache(tmp_path, max_memory_entries=8)
        recorder = CacheStatsRecorder()
        entry = reopened.lookup(_key(1), recorder)
        assert entry is not None
        stats = recorder.snapshot()
        assert stats.hits == 1 and stats.bytes_read > 0
        assert stats.time_saved_seconds == pytest.approx(0.2)
        # Promoted: the second lookup is a memory hit (no disk bytes).
        recorder2 = CacheStatsRecorder()
        assert reopened.lookup(_key(1), recorder2) is not None
        assert recorder2.snapshot().bytes_read == 0

    def test_memory_overflow_served_from_disk(self, tmp_path):
        cache = ParseCache(tmp_path, max_memory_entries=2)
        for i in range(6):
            cache.store(_key(i), _result(f"d{i}"), compute_seconds=0.1)
        cache.flush()
        for i in range(6):
            entry = cache.lookup(_key(i))
            assert entry is not None
            assert entry.result.doc_id == f"d{i}"

    def test_hit_returns_independent_copy(self):
        cache = ParseCache()
        cache.store(_key(1), _result())
        first = cache.lookup(_key(1)).fresh_result()
        first.page_texts.append("mutated")
        second = cache.lookup(_key(1)).fresh_result()
        assert second.page_texts == ["page one", "page two"]

    def test_corrupt_payload_schema_dropped(self, tmp_path):
        cache = ParseCache(tmp_path)
        cache.disk.put(_key(1), {"key": _key(1), "result": {"bogus": True}})
        cache.flush()
        assert cache.lookup(_key(1)) is None  # dropped, not raised


class TestGetOrCompute:
    def test_second_call_hits(self):
        cache = ParseCache()
        calls = []
        recorder = CacheStatsRecorder()

        def compute():
            calls.append(1)
            return _result(), None

        cache.get_or_compute(_key(1), compute, recorder=recorder)
        cache.get_or_compute(_key(1), compute, recorder=recorder)
        assert len(calls) == 1
        stats = recorder.snapshot()
        assert stats.misses == 1 and stats.hits == 1 and stats.stores == 1

    def test_read_policy_never_stores(self):
        cache = ParseCache()
        calls = []

        def compute():
            calls.append(1)
            return _result(), None

        cache.get_or_compute(_key(1), compute, policy="read")
        cache.get_or_compute(_key(1), compute, policy="read")
        assert len(calls) == 2  # nothing was stored to hit on

    def test_write_policy_ignores_existing_entry(self):
        cache = ParseCache()
        calls = []

        def compute():
            calls.append(1)
            return _result(), None

        cache.get_or_compute(_key(1), compute, policy="readwrite")
        cache.get_or_compute(_key(1), compute, policy="write")
        assert len(calls) == 2  # write-only refreshes instead of reading

    def test_compute_failure_propagates_and_clears_flight(self):
        cache = ParseCache()

        def explode():
            raise RuntimeError("parse failed")

        with pytest.raises(RuntimeError):
            cache.get_or_compute(_key(1), explode)
        assert cache.flights.in_flight() == 0
        # The key is computable again afterwards.
        entry = cache.get_or_compute(_key(1), lambda: (_result(), None))
        assert entry.result.doc_id == "d1"


class TestSingleFlightConcurrency:
    def test_exactly_one_parse_per_unique_key(self):
        cache = ParseCache()
        recorder = CacheStatsRecorder()
        n_keys, n_workers, rounds_per_key = 8, 16, 8
        compute_counts = {i: 0 for i in range(n_keys)}
        count_lock = threading.Lock()
        barrier = threading.Barrier(n_workers)

        def hammer(worker: int) -> None:
            barrier.wait()
            for round_ in range(rounds_per_key):
                for i in range(n_keys):
                    def compute(i=i):
                        with count_lock:
                            compute_counts[i] += 1
                        time.sleep(0.002)  # widen the race window
                        return _result(f"d{i}"), None

                    entry = cache.get_or_compute(_key(i), compute, recorder=recorder)
                    assert entry.result.doc_id == f"d{i}"

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            list(pool.map(hammer, range(n_workers)))

        assert compute_counts == {i: 1 for i in range(n_keys)}
        stats = recorder.snapshot()
        assert stats.misses == n_keys
        assert stats.hits + stats.coalesced == n_keys * n_workers * rounds_per_key - n_keys

    def test_waiters_see_owner_failure(self):
        flights = SingleFlight()
        owner, flight = flights.begin("k")
        assert owner
        errors = []

        def waiter():
            is_owner, f = flights.begin("k")
            assert not is_owner
            try:
                f.wait(timeout=5)
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.01)
        flights.fail("k", flight, RuntimeError("boom"))
        thread.join(timeout=5)
        assert len(errors) == 1


class TestCrashMidWrite:
    def test_torn_shard_is_tolerated_end_to_end(self, tmp_path):
        cache = ParseCache(tmp_path, n_shards=1)
        for i in range(5):
            cache.store(_key(i), _result(f"d{i}"))
        cache.flush()
        shard = cache.disk.shard_paths()[0]
        # Simulate a crash mid-write: truncate the shard mid-line.
        raw = shard.read_bytes()
        shard.write_bytes(raw[: len(raw) - len(raw) // 3])
        reopened = ParseCache(tmp_path, n_shards=1)
        survivors = sum(1 for i in range(5) if reopened.lookup(_key(i)) is not None)
        assert 0 < survivors < 5
        assert reopened.disk.corrupt_lines_skipped >= 1
        # The torn entries are recomputable and the shard heals on flush.
        for i in range(5):
            reopened.get_or_compute(_key(i), lambda i=i: (_result(f"d{i}"), None))
        reopened.flush()
        healed = ParseCache(tmp_path, n_shards=1)
        assert all(healed.lookup(_key(i)) is not None for i in range(5))
        assert healed.disk.corrupt_lines_skipped == 0


class TestMaintenance:
    def test_purge_all(self, tmp_path):
        cache = ParseCache(tmp_path)
        for i in range(4):
            cache.store(_key(i), _result(f"d{i}"))
        cache.flush()
        removed = cache.purge()
        assert removed == 4
        assert cache.lookup(_key(0)) is None
        assert ParseCache(tmp_path).describe()["entries"] == 0

    def test_purge_by_fingerprint(self, tmp_path):
        cache = ParseCache(tmp_path)
        cache.store(f"{1:032x}:aaaa", _result("d1"))
        cache.store(f"{2:032x}:bbbb", _result("d2"))
        cache.flush()
        assert cache.purge(config_fingerprint="aaaa") == 1
        reopened = ParseCache(tmp_path)
        assert reopened.lookup(f"{1:032x}:aaaa") is None
        assert reopened.lookup(f"{2:032x}:bbbb") is not None

    def test_purge_by_fingerprint_memory_only(self):
        # Regression: a fingerprint-scoped purge of a memory-only cache must
        # keep the other fingerprints' entries and report the true count.
        cache = ParseCache()
        cache.store(f"{1:032x}:aaaa", _result("d1"))
        cache.store(f"{2:032x}:aaaa", _result("d2"))
        cache.store(f"{3:032x}:bbbb", _result("d3"))
        assert cache.purge(config_fingerprint="aaaa") == 2
        assert cache.lookup(f"{1:032x}:aaaa") is None
        assert cache.lookup(f"{3:032x}:bbbb") is not None

    def test_purge_only_rewrites_matching_shards(self, tmp_path):
        cache = ParseCache(tmp_path, n_shards=16)
        key_a = f"{1 << 96:032x}:aaaa"  # hash prefix 00000001 -> shard 1
        key_b = f"{2 << 96:032x}:bbbb"  # hash prefix 00000002 -> shard 2
        cache.store(key_a, _result("d1"))
        cache.store(key_b, _result("d2"))
        cache.flush()
        b_shard = cache.disk.shard_path(cache.disk.shard_index_for(key_b))
        assert b_shard.exists()
        before = b_shard.stat().st_mtime_ns
        cache.purge(config_fingerprint="aaaa")
        assert b_shard.stat().st_mtime_ns == before
        assert cache.lookup(key_b) is not None

    def test_concurrent_stores_merge_on_flush(self, tmp_path):
        # Two ParseCache instances over one directory (two "processes"):
        # the later flush must not clobber what the other one landed.
        first = ParseCache(tmp_path, n_shards=1)
        second = ParseCache(tmp_path, n_shards=1)
        first.lookup(_key(0))  # force both to load the (empty) shard
        second.lookup(_key(0))
        first.store(_key(1), _result("d1"))
        second.store(_key(2), _result("d2"))
        first.flush()
        second.flush()
        reopened = ParseCache(tmp_path, n_shards=1)
        assert reopened.lookup(_key(1)) is not None
        assert reopened.lookup(_key(2)) is not None

    def test_describe(self, tmp_path):
        cache = ParseCache(tmp_path)
        cache.store(_key(1), _result())
        cache.flush()
        description = cache.describe()
        assert description["entries"] == 1
        assert description["parsers"] == {"pymupdf": 1}
        assert description["bytes_on_disk"] > 0
