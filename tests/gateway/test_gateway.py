"""Tests of the gateway: handshake, streaming, backpressure, resume, e2e.

The acceptance centrepiece is the 50-client hammer: many
:class:`GatewayClient` processes' worth of concurrent submissions over
one shared corpus must come back byte-identical, with exactly-once cache
misses across *all* clients (cross-request single-flight holding over
the network boundary) and a gapless per-ticket event sequence.
Saturation must answer ``rejected`` immediately — never hang.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cache import ParseCache
from repro.gateway import (
    AuthRegistry,
    ClientQuota,
    GatewayClient,
    GatewayError,
    GatewayRejected,
    GatewayServer,
)
from repro.gateway import protocol
from repro.gateway.protocol import MessageChannel
from repro.parsers.base import Parser, ParserCost
from repro.parsers.registry import ParserRegistry
from repro.pipeline import ParsePipeline, ParseRequest
from repro.serve import ParseService, ServiceConfig


class SnailParser(Parser):
    """Deterministic slow parser so requests overlap on the service."""

    name = "snail"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def __init__(self, sleep_seconds: float = 0.02) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:p{i}" for i in range(document.n_pages)]


def make_service(max_active: int = 4, sleep_seconds: float = 0.02) -> ParseService:
    registry = ParserRegistry()
    registry.register(SnailParser(sleep_seconds))
    pipeline = ParsePipeline(registry=registry, cache=ParseCache())
    config = ServiceConfig(max_active=max_active, backend_options={"n_jobs": 4})
    return ParseService(pipeline=pipeline, config=config)


def snail_request(n_documents: int = 8, seed: int = 7, **overrides) -> ParseRequest:
    options = {"parser": "snail", "n_documents": n_documents, "seed": seed}
    options.update(overrides)
    return ParseRequest(**options)


@pytest.fixture()
def gateway():
    with make_service() as service:
        server = GatewayServer(service, port=0, max_queue_depth=16)
        with server:
            yield server


def connect(server: GatewayServer, **kwargs) -> GatewayClient:
    return GatewayClient("127.0.0.1", server.port, **kwargs).connect()


# ---------------------------------------------------------------------- #
# Handshake
# ---------------------------------------------------------------------- #
class TestHandshake:
    def raw_channel(self, server: GatewayServer) -> MessageChannel:
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        return MessageChannel(sock)

    def test_ack_carries_identity_quota_and_limits(self, gateway):
        with connect(gateway, client="walk-in") as client:
            assert client.client_id == "walk-in"
            assert client.quota["max_active"] >= 1
            assert client.quota["max_request_bytes"] > 0

    def test_version_mismatch_is_refused(self, gateway):
        channel = self.raw_channel(gateway)
        try:
            channel.send({"type": protocol.HELLO, "protocol": 999})
            reply = channel.recv()
            assert reply["type"] == protocol.ERROR
            assert "version" in reply["message"]
            assert channel.recv() is None  # gateway hung up
        finally:
            channel.close()

    def test_non_hello_first_message_is_refused(self, gateway):
        channel = self.raw_channel(gateway)
        try:
            channel.send({"type": protocol.STATS})
            reply = channel.recv()
            assert reply["type"] == protocol.ERROR
            assert "hello" in reply["message"]
        finally:
            channel.close()

    def test_bad_token_is_refused(self):
        auth = AuthRegistry(allow_anonymous=False)
        auth.register("s3cret", "alice")
        with make_service() as service:
            with GatewayServer(service, port=0, auth=auth) as server:
                with pytest.raises(GatewayError, match="unknown"):
                    connect(server, token="wrong")
                with pytest.raises(GatewayError, match="required"):
                    connect(server)  # anonymous lane disabled
                with connect(server, token="s3cret", client="mallory") as client:
                    assert client.client_id == "alice"  # token wins over claim

    def test_anonymous_hello_cannot_impersonate_token_client(self):
        # With the anonymous lane OPEN (the default), a token-less hello
        # claiming a token-registered id must be refused at handshake —
        # otherwise it could resume/fetch that client's tickets and
        # pollute its quota and fair-share accounting.
        auth = AuthRegistry()  # allow_anonymous=True
        auth.register("s3cret", "alice")
        with make_service() as service:
            with GatewayServer(service, port=0, auth=auth) as server:
                with connect(server, token="s3cret") as alice:
                    ticket = alice.submit(snail_request(n_documents=2))
                    alice.result(ticket, timeout=30)
                with pytest.raises(GatewayError, match="registered to a token"):
                    connect(server, client="alice")
                # Non-colliding anonymous names are still welcome.
                with connect(server, client="bob") as bob:
                    assert bob.client_id == "bob"

    def test_wrong_typed_hello_fields_get_an_error_reply(self, gateway):
        # protocol: null is valid JSON but int() on it raises TypeError —
        # the client must still get an error frame, not a silent close.
        channel = self.raw_channel(gateway)
        try:
            channel.send({"type": protocol.HELLO, "protocol": None})
            reply = channel.recv()
            assert reply["type"] == protocol.ERROR
            assert channel.recv() is None  # gateway hung up afterwards
        finally:
            channel.close()


# ---------------------------------------------------------------------- #
# Submission and event streaming
# ---------------------------------------------------------------------- #
class TestSubmitAndStream:
    def test_submit_streams_gapless_events_to_completion(self, gateway):
        with connect(gateway) as client:
            ticket = client.submit(snail_request(batch_size=4))
            events = list(ticket.events(timeout=30))
            assert [e.kind for e in events[:2]] == ["queued", "started"]
            assert events[-1].kind == "completed"
            assert [e.seq for e in events] == list(range(len(events)))
            report = client.result(ticket, timeout=30)
            assert report["n_documents"] == 8
            assert report["summary"]["n_succeeded"] == 8

    def test_remote_report_matches_the_in_process_run(self, gateway):
        request = snail_request(cache="off")
        with connect(gateway) as client:
            remote = client.result(client.submit(request), timeout=30, include_text=True)
        registry = ParserRegistry()
        registry.register(SnailParser())
        local = ParsePipeline(registry=registry).run(request)
        local_payload = local.to_json_dict(include_text=True)
        assert [r["page_texts"] for r in remote["results"]] == [
            r["page_texts"] for r in local_payload["results"]
        ]

    def test_invalid_request_is_rejected_bad_request(self, gateway):
        with connect(gateway) as client:
            with pytest.raises(GatewayRejected) as exc_info:
                client.submit({"parser": "snail", "n_documents": -5})
            assert exc_info.value.reason == protocol.REJECT_BAD_REQUEST

    def test_request_failure_surfaces_not_hangs(self, gateway):
        # An unknown parser fails at run time: the ticket must end in a
        # `failed` terminal event and result() must raise, remotely too.
        with connect(gateway) as client:
            ticket = client.submit({"parser": "no-such-parser", "n_documents": 2})
            events = list(ticket.events(timeout=30))
            assert events[-1].kind == "failed"
            with pytest.raises(GatewayError, match="failed"):
                client.result(ticket, timeout=5)

    def test_stats_round_trip_shape(self, gateway):
        with connect(gateway, client="c1") as client:
            client.result(client.submit(snail_request(n_documents=2)), timeout=30)
            stats = client.stats()
        assert stats["submitted"] == 1
        assert stats["rejected"] == 0
        assert stats["per_client"]["c1"]["submitted"] == 1
        assert stats["bytes_in"] > 0 and stats["bytes_out"] > 0
        assert stats["event_backlog_high_water"] >= 0
        assert stats["service"]["max_active"] == 4


# ---------------------------------------------------------------------- #
# Backpressure and quotas
# ---------------------------------------------------------------------- #
class TestBackpressure:
    def test_saturation_rejects_immediately_with_retry_after(self):
        with make_service(max_active=1, sleep_seconds=0.05) as service:
            with GatewayServer(
                service, port=0, max_queue_depth=0, retry_after=2.5
            ) as server:
                quota = ClientQuota(max_active=100)
                server.auth.default_quota = quota
                with connect(server) as client:
                    started = time.monotonic()
                    first = client.submit(snail_request(n_documents=4))
                    with pytest.raises(GatewayRejected) as exc_info:
                        client.submit(snail_request(n_documents=4, seed=99))
                    elapsed = time.monotonic() - started
                    assert exc_info.value.reason == protocol.REJECT_SATURATED
                    assert exc_info.value.retry_after == pytest.approx(2.5)
                    assert elapsed < 5.0  # rejected, not queued behind the parse
                    client.result(first, timeout=30)
                    # Capacity freed: the same submission is admitted now.
                    second = client.submit(snail_request(n_documents=4, seed=99))
                    client.result(second, timeout=30)

    def test_per_client_active_quota_rejects_the_burst(self, gateway):
        gateway.auth.default_quota = ClientQuota(max_active=1)
        with connect(gateway, client="greedy") as client:
            first = client.submit(snail_request(n_documents=8))
            with pytest.raises(GatewayRejected) as exc_info:
                client.submit(snail_request(n_documents=8, seed=2))
            assert exc_info.value.reason == protocol.REJECT_QUOTA_EXCEEDED
            client.result(first, timeout=30)

    def test_rate_limit_rejects_with_retry_after(self, gateway):
        gateway.auth.default_quota = ClientQuota(
            max_active=10, rate_per_second=0.01, burst=1
        )
        with connect(gateway, client="chatty") as client:
            first = client.submit(snail_request(n_documents=2))
            with pytest.raises(GatewayRejected) as exc_info:
                client.submit(snail_request(n_documents=2, seed=2))
            assert exc_info.value.reason == protocol.REJECT_RATE_LIMITED
            assert exc_info.value.retry_after > 0
            client.result(first, timeout=30)

    def test_oversized_request_refused_without_killing_the_connection(self, gateway):
        gateway.auth.default_quota = ClientQuota(max_request_bytes=512)
        with connect(gateway, client="bulky") as client:
            with pytest.raises(GatewayRejected) as exc_info:
                client.submit({"parser": "snail" + "x" * 2000, "n_documents": 2})
            assert exc_info.value.reason == protocol.REJECT_TOO_LARGE
            # The connection survived: a sane submission still works.
            ticket = client.submit(snail_request(n_documents=2))
            client.result(ticket, timeout=30)

    def test_wrong_typed_request_fields_error_not_silent_close(self, gateway):
        # A submit whose priority is null (valid JSON, wrong type) must
        # produce an error reply rather than an unhandled reader-thread
        # traceback that closes the connection with no explanation.
        sock = socket.create_connection(("127.0.0.1", gateway.port), timeout=5)
        channel = MessageChannel(sock)
        try:
            channel.send(protocol.hello_message())
            assert channel.recv()["type"] == protocol.HELLO_ACK
            channel.send(
                {
                    "type": protocol.SUBMIT,
                    "request": {"parser": "snail", "n_documents": 2},
                    "priority": None,
                }
            )
            reply = channel.recv()
            assert reply["type"] == protocol.ERROR
        finally:
            channel.close()

    def test_concurrent_submits_cannot_over_admit(self):
        # The admission decision must be atomic: N submissions racing on
        # separate connections may not all pass the same capacity
        # snapshot and exceed max_active + max_queue_depth.
        n_racers = 12
        with make_service(max_active=1, sleep_seconds=0.5) as service:
            with GatewayServer(service, port=0, max_queue_depth=2) as server:
                server.auth.default_quota = ClientQuota(max_active=100)
                capacity = 1 + 2
                barrier = threading.Barrier(n_racers)
                admitted: list[str] = []
                rejected: list[int] = []
                errors: list[BaseException] = []
                lock = threading.Lock()

                def race(i: int) -> None:
                    try:
                        with connect(server, client=f"racer-{i}") as client:
                            barrier.wait(timeout=10)
                            try:
                                ticket = client.submit(
                                    snail_request(n_documents=4, seed=100 + i)
                                )
                                with lock:
                                    admitted.append(ticket.id)
                            except GatewayRejected as exc:
                                assert exc.reason == protocol.REJECT_SATURATED
                                with lock:
                                    rejected.append(i)
                    except BaseException as exc:  # noqa: BLE001 - collected
                        with lock:
                            errors.append(exc)

                threads = [
                    threading.Thread(target=race, args=(i,), daemon=True)
                    for i in range(n_racers)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                assert not errors, errors[:3]
                assert len(admitted) + len(rejected) == n_racers
                assert len(admitted) <= capacity
                assert server.stats()["submitted"] == len(admitted)

    def test_rejections_are_counted_in_stats(self, gateway):
        gateway.auth.default_quota = ClientQuota(max_active=1)
        with connect(gateway, client="counted") as client:
            first = client.submit(snail_request(n_documents=8))
            with pytest.raises(GatewayRejected):
                client.submit(snail_request(n_documents=8, seed=2))
            stats = client.stats()
            client.result(first, timeout=30)
        assert stats["rejected"] == 1
        assert stats["rejected_by_reason"] == {protocol.REJECT_QUOTA_EXCEEDED: 1}
        assert stats["per_client"]["counted"]["rejected"] == 1


# ---------------------------------------------------------------------- #
# Reconnect and resume
# ---------------------------------------------------------------------- #
class TestReconnectResume:
    def test_disconnect_does_not_cancel_and_resume_is_gapless(self):
        with make_service(max_active=2, sleep_seconds=0.05) as service:
            with GatewayServer(service, port=0) as server:
                first = connect(server, token=None, client="roamer")
                ticket = first.submit(snail_request(n_documents=16, batch_size=2))
                stream = ticket.events(timeout=30)
                seen = [next(stream), next(stream)]  # queued, started
                first.close()  # drop mid-run; the ticket keeps running

                with connect(server, client="roamer") as second:
                    resumed = second.resume(ticket.id, after_seq=ticket.last_seq)
                    rest = list(resumed.events(timeout=30))
                    report = second.result(resumed, timeout=30)
                seqs = [e.seq for e in seen] + [e.seq for e in rest]
                assert seqs == list(range(len(seqs)))  # gapless, no duplicates
                assert rest[-1].kind == "completed"
                assert report["n_documents"] == 16

    def test_resume_after_completion_replays_the_full_stream(self, gateway):
        with connect(gateway, client="replayer") as client:
            ticket = client.submit(snail_request(n_documents=4))
            full = list(ticket.events(timeout=30))
        with connect(gateway, client="replayer") as later:
            replay = list(later.resume(ticket.id).events(timeout=30))
        assert [e.to_json_dict() for e in replay] == [e.to_json_dict() for e in full]

    def test_resume_unknown_ticket_errors(self, gateway):
        with connect(gateway) as client:
            with pytest.raises(GatewayError, match="no ticket"):
                client.resume("t9999")

    def test_resume_someone_elses_ticket_is_forbidden(self, gateway):
        with connect(gateway, client="owner") as owner:
            ticket = owner.submit(snail_request(n_documents=4))
            owner.result(ticket, timeout=30)
        with connect(gateway, client="intruder") as intruder:
            with pytest.raises(GatewayError, match="another client"):
                intruder.resume(ticket.id)
            with pytest.raises(GatewayError, match="another client"):
                intruder.result(ticket.id, timeout=5)


# ---------------------------------------------------------------------- #
# The acceptance hammer: many clients, one service, exactly-once parsing
# ---------------------------------------------------------------------- #
class TestManyClientsE2E:
    N_CLIENTS = 50

    def test_fifty_concurrent_clients_share_one_parse(self):
        # The parse phase must dominate the per-ticket corpus synthesis,
        # or the first ticket finishes parsing before its peers reach the
        # cache and nothing coalesces — hence the deliberately slow snail.
        request = snail_request(n_documents=16, seed=11, batch_size=4, cache="readwrite")
        outcomes: dict[int, dict] = {}
        failures: list[BaseException] = []
        lock = threading.Lock()

        with make_service(max_active=8, sleep_seconds=0.1) as service:
            with GatewayServer(service, port=0, max_queue_depth=64) as server:
                barrier = threading.Barrier(self.N_CLIENTS)

                def run_client(i: int) -> None:
                    try:
                        with connect(server, client=f"client-{i}") as client:
                            barrier.wait(timeout=30)
                            ticket = client.submit(request)
                            events = list(ticket.events(timeout=60))
                            report = client.result(
                                ticket, timeout=60, include_text=True
                            )
                        with lock:
                            outcomes[i] = {"events": events, "report": report}
                    except BaseException as exc:  # noqa: BLE001 - collected
                        with lock:
                            failures.append(exc)

                threads = [
                    threading.Thread(target=run_client, args=(i,), daemon=True)
                    for i in range(self.N_CLIENTS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                stats = server.stats()
        assert not failures, failures[:3]
        assert len(outcomes) == self.N_CLIENTS

        # Byte-identical reports for every client.
        baseline = outcomes[0]["report"]["results"]
        for i in range(1, self.N_CLIENTS):
            assert outcomes[i]["report"]["results"] == baseline

        # Exactly-once parsing ACROSS the whole fleet: total misses equal
        # the corpus size; everyone else hit the cache or coalesced onto
        # an in-flight parse (and overlap did happen: coalesced > 0).
        cache_counters = [o["report"]["cache"] for o in outcomes.values()]
        assert sum(c["misses"] for c in cache_counters) == 16
        assert sum(c["coalesced"] for c in cache_counters) > 0
        assert sum(c["hits"] + c["coalesced"] for c in cache_counters) == (
            (self.N_CLIENTS - 1) * 16
        )

        # Gapless per-ticket event sequences, each ending terminally.
        for outcome in outcomes.values():
            seqs = [e.seq for e in outcome["events"]]
            assert seqs == list(range(len(seqs)))
            assert outcome["events"][-1].kind == "completed"

        assert stats["submitted"] == self.N_CLIENTS
        assert stats["rejected"] == 0
        assert len(stats["per_client"]) == self.N_CLIENTS
        assert service.describe()["completed"] == self.N_CLIENTS


# ---------------------------------------------------------------------- #
# Client robustness against a misbehaving gateway
# ---------------------------------------------------------------------- #
class TestClientRobustness:
    def test_connect_times_out_when_server_never_answers_hello(self):
        # A server that accepts TCP but never speaks must not hang
        # connect() forever: the configured timeout covers the handshake.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)  # SYN queue completes the connect; we never accept
        port = listener.getsockname()[1]
        try:
            client = GatewayClient("127.0.0.1", port, timeout=0.5)
            started = time.monotonic()
            with pytest.raises(GatewayError, match="handshake"):
                client.connect()
            assert time.monotonic() - started < 5.0
        finally:
            listener.close()

    def test_unsolicited_error_frame_is_not_mistaken_for_a_reply(self):
        # A connection-level error frame arriving with no RPC in flight
        # must be dropped — not enqueued as the "reply" to the next
        # unrelated request.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve() -> None:
            sock, _ = listener.accept()
            channel = MessageChannel(sock)
            assert channel.recv()["type"] == protocol.HELLO
            channel.send(
                {
                    "type": protocol.HELLO_ACK,
                    "protocol": protocol.GATEWAY_PROTOCOL_VERSION,
                    "client_id": "c",
                    "quota": {},
                }
            )
            # Unsolicited: nothing is awaiting a reply yet.
            channel.send(
                {"type": protocol.ERROR, "message": "background failure"}
            )
            request = channel.recv()
            assert request["type"] == protocol.STATS
            channel.send({"type": protocol.STATS, "submitted": 0})
            channel.recv()  # wait for bye/close

        server_thread = threading.Thread(target=serve, daemon=True)
        server_thread.start()
        try:
            with GatewayClient("127.0.0.1", port, timeout=5) as client:
                time.sleep(0.3)  # let the unsolicited frame arrive (and drop)
                stats = client.stats()
                assert stats["submitted"] == 0  # the real reply, not the error
        finally:
            listener.close()
            server_thread.join(timeout=5)


# ---------------------------------------------------------------------- #
# Import hygiene
# ---------------------------------------------------------------------- #
class TestImportHygiene:
    def test_import_repro_does_not_import_gateway(self):
        code = (
            "import sys, repro\n"
            "from repro.pipeline import ParseRequest\n"
            "ParseRequest()\n"
            "bad = [m for m in sys.modules if m.startswith('repro.gateway')]\n"
            "assert not bad, f'gateway imported eagerly: {bad}'\n"
            "assert repro.GatewayServer.__name__ == 'GatewayServer'\n"
            "assert 'repro.gateway.server' in sys.modules\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=_subprocess_env())

    def test_importing_gateway_opens_no_sockets_and_stays_light(self):
        code = (
            "import sys, repro.gateway\n"
            "assert 'repro.serve.service' not in sys.modules\n"
            "from repro.gateway import GATEWAY_PROTOCOL_VERSION\n"
            "assert GATEWAY_PROTOCOL_VERSION == 1\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True, env=_subprocess_env())


def _subprocess_env():
    import os
    from pathlib import Path

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env
