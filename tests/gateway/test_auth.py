"""Unit tests of gateway auth: tokens, quotas, and the rate bucket."""

from __future__ import annotations

import pytest

from repro.gateway.auth import AuthError, AuthRegistry, ClientQuota, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal_with_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_second=2.0, burst=3, clock=clock)
        for _ in range(3):
            acquired, retry_after = bucket.try_acquire()
            assert acquired and retry_after == 0.0
        acquired, retry_after = bucket.try_acquire()
        assert not acquired
        assert retry_after == pytest.approx(0.5)  # 1 token at 2/s

    def test_tokens_accrue_with_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_second=2.0, burst=1, clock=clock)
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(0.5)  # exactly one token accrues
        assert bucket.try_acquire()[0]

    def test_accrual_is_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_second=10.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]

    def test_zero_rate_never_limits(self):
        bucket = TokenBucket(rate_per_second=0.0, burst=1)
        for _ in range(100):
            assert bucket.try_acquire() == (True, 0.0)

    def test_invalid_parameters_are_refused(self):
        with pytest.raises(ValueError, match="rate_per_second"):
            TokenBucket(rate_per_second=-1.0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate_per_second=1.0, burst=0)


class TestAuthRegistry:
    def test_token_resolves_identity_and_quota(self):
        registry = AuthRegistry()
        quota = ClientQuota(max_active=2, rate_per_second=1.0)
        registry.register("s3cret", "alice", quota)
        client = registry.authenticate("s3cret")
        assert client.client_id == "alice"
        assert client.quota == quota

    def test_token_wins_over_requested_client_name(self):
        registry = AuthRegistry()
        registry.register("s3cret", "alice")
        assert registry.authenticate("s3cret", "mallory").client_id == "alice"

    def test_unknown_token_is_refused(self):
        registry = AuthRegistry()
        registry.register("s3cret", "alice")
        with pytest.raises(AuthError, match="unknown"):
            registry.authenticate("wrong")

    def test_anonymous_lane_uses_requested_name_and_default_quota(self):
        quota = ClientQuota(max_active=1)
        registry = AuthRegistry(default_quota=quota)
        client = registry.authenticate(None, "walk-in")
        assert client.client_id == "walk-in"
        assert client.quota == quota
        assert registry.authenticate(None).client_id == "anon"

    def test_anonymous_cannot_claim_a_registered_client_id(self):
        # The docstring's promise — "one client cannot impersonate
        # another by naming it" — must hold from the anonymous side too:
        # a token-less hello claiming a token-registered id is refused.
        registry = AuthRegistry()
        registry.register("s3cret", "alice")
        with pytest.raises(AuthError, match="registered to a token"):
            registry.authenticate(None, "alice")
        # Non-colliding anonymous names and the token lane still work.
        assert registry.authenticate(None, "bob").client_id == "bob"
        assert registry.authenticate("s3cret").client_id == "alice"

    def test_anonymous_lane_can_be_disabled(self):
        registry = AuthRegistry(allow_anonymous=False)
        registry.register("s3cret", "alice")
        with pytest.raises(AuthError, match="required"):
            registry.authenticate(None, "walk-in")
        assert registry.authenticate("s3cret").client_id == "alice"

    def test_registration_validates_inputs(self):
        registry = AuthRegistry()
        with pytest.raises(ValueError, match="token"):
            registry.register("", "alice")
        with pytest.raises(ValueError, match="client_id"):
            registry.register("s3cret", "")
        registry.register("s3cret", "alice")
        assert registry.n_tokens == 1

    def test_quota_serialises_for_the_handshake(self):
        quota = ClientQuota(max_active=3, rate_per_second=2.5, burst=4)
        payload = quota.to_json_dict()
        assert payload["max_active"] == 3
        assert payload["rate_per_second"] == 2.5
        assert payload["burst"] == 4
        assert payload["max_request_bytes"] == 1024 * 1024
