"""Tests for the simulated preference study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.preferences.annotators import (
    AnnotatorPanel,
    cleanliness_score,
    completeness_score,
    formatting_fatigue,
    math_fidelity_score,
)
from repro.preferences.dataset import build_preference_dataset, split_preference_pairs
from repro.preferences.study import PreferenceStudy, StudyConfig
from repro.ml.dpo import PreferencePair

CLEAN = "The robust catalyst framework demonstrates a significant polymerization yield."
JUNK = "T h e r o b u s t ctaalyst frmaework dmonstrtes sgnificnt plyomerisation yeild ﬁﬁﬁ"


class TestUtilityComponents:
    def test_cleanliness_orders_clean_above_junk(self):
        assert cleanliness_score(CLEAN) > cleanliness_score(JUNK)

    def test_cleanliness_empty(self):
        assert cleanliness_score("") == 0.0

    def test_completeness(self):
        assert completeness_score(CLEAN, CLEAN) == pytest.approx(1.0)
        assert completeness_score("", CLEAN) == 0.0
        assert completeness_score(CLEAN, "") == 1.0

    def test_formatting_fatigue_bounded(self):
        assert 0.0 <= formatting_fatigue("# " * 100) <= 0.15

    def test_math_fidelity_neutral_without_equations(self, sample_document):
        page = sample_document.pages[0]
        if not page.elements_of_kind("equation"):
            assert math_fidelity_score("anything", page) == pytest.approx(0.5)


class TestAnnotators:
    def test_panel_size_and_diversity(self):
        panel = AnnotatorPanel(n_annotators=10, seed=3)
        assert len(panel) == 10
        weights = {a.profile.cleanliness_weight for a in panel.annotators}
        assert len(weights) > 1

    def test_clear_cut_preference(self, sample_document):
        panel = AnnotatorPanel(n_annotators=5, seed=3)
        page = sample_document.pages[1]
        gt = page.ground_truth_text()
        junk = " ".join(list(gt))[:400]
        votes = [a.compare(gt, junk, page, salt="t") for a in panel.annotators]
        assert all(v >= 0 for v in votes)
        assert sum(v > 0 for v in votes) >= 4

    def test_comparison_deterministic(self, sample_document):
        panel = AnnotatorPanel(n_annotators=3, seed=3)
        page = sample_document.pages[0]
        a = panel.annotators[0]
        assert a.compare(CLEAN, JUNK, page, salt="s") == a.compare(CLEAN, JUNK, page, salt="s")

    def test_invalid_panel_size(self):
        with pytest.raises(ValueError):
            AnnotatorPanel(n_annotators=0)


class TestStudy:
    @pytest.fixture(scope="class")
    def study_result(self, registry, tiny_corpus):
        config = StudyConfig(n_pages=20, comparisons_per_page=3, repeat_fraction=0.5, seed=9)
        return PreferenceStudy(registry, config).run(tiny_corpus)

    def test_judgement_counts(self, study_result):
        assert len(study_result.judgements) >= 20 * 3

    def test_win_rates_in_unit_interval(self, study_result):
        rates = study_result.win_rates()
        assert rates
        assert all(0.0 <= v <= 1.0 for v in rates.values())

    def test_decisiveness_high(self, study_result):
        # The paper reports users choosing a side 91.3 % of the time.
        assert study_result.decisiveness() > 0.6

    def test_consensus_high(self, study_result):
        # The paper reports 82.2 % agreement on repeated triplets.
        assert study_result.consensus() > 0.6

    def test_extraction_junk_parser_loses(self, study_result):
        rates = study_result.win_rates()
        assert rates["pypdf"] < max(rates.values())

    def test_preference_pairs_consistent(self, study_result):
        pairs = study_result.preference_pairs()
        assert pairs
        for pair in pairs[:20]:
            assert pair.preferred_text != pair.rejected_text or pair.preferred_parser != pair.rejected_parser

    def test_summary_keys(self, study_result):
        summary = study_result.summary()
        assert {"n_judgements", "win_rates", "decisiveness", "consensus", "bleu_win_rate_correlation"} <= set(summary)


class TestPreferenceDataset:
    def test_split_proportions_and_leakage(self):
        pairs = [
            PreferencePair(doc_id=f"doc{i % 17}", preferred_text="a", rejected_text="b")
            for i in range(100)
        ]
        splits = split_preference_pairs(pairs, seed=4)
        assert sum(len(v) for v in splits.values()) == 100
        # No document page appears in more than one split.
        for name_a in splits:
            for name_b in splits:
                if name_a == name_b:
                    continue
                ids_a = {p.doc_id for p in splits[name_a]}
                ids_b = {p.doc_id for p in splits[name_b]}
                assert not ids_a & ids_b
        # Test split is the largest, as in the paper.
        assert len(splits["test"]) >= len(splits["train"]) >= len(splits["validation"])

    def test_build_preference_dataset(self, registry, tiny_corpus):
        dataset = build_preference_dataset(
            tiny_corpus, registry, StudyConfig(n_pages=10, comparisons_per_page=2, seed=5)
        )
        assert dataset.n_total > 0
        assert dataset.study_result is not None
        sizes = dataset.split_sizes()
        assert set(sizes) == {"train", "validation", "test"}
