"""Unit tests of phase attribution and the sampling profiler."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import profiling
from repro.obs.profiling import (
    PHASE_SECONDS_BUCKETS,
    PhaseTimer,
    Profile,
    ProfileStore,
    StackSampler,
)


class TestPhaseTimer:
    def test_single_phase_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("work", n_bytes=128):
            time.sleep(0.01)
        table = timer.snapshot()
        assert set(table) == {"work"}
        row = table["work"]
        assert row["total_s"] >= 0.01
        assert row["self_s"] == pytest.approx(row["total_s"])
        assert row["calls"] == 1
        assert row["bytes"] == 128

    def test_nested_phase_subtracts_from_parent_self_time(self):
        timer = PhaseTimer()
        with timer.phase("outer"):
            time.sleep(0.005)
            with timer.phase("inner"):
                time.sleep(0.02)
        table = timer.snapshot()
        outer, inner = table["outer"], table["inner"]
        assert outer["total_s"] >= inner["total_s"]
        # outer's self time excludes inner's wall time entirely
        assert outer["self_s"] == pytest.approx(
            outer["total_s"] - inner["total_s"], abs=1e-6
        )
        assert outer["self_s"] < inner["total_s"]

    def test_self_seconds_sum_to_wall_without_double_counting(self):
        timer = PhaseTimer()
        started = time.perf_counter()
        with timer.phase("a"):
            time.sleep(0.005)
            with timer.phase("b"):
                time.sleep(0.005)
        with timer.phase("c"):
            time.sleep(0.005)
        wall = time.perf_counter() - started
        attributed = sum(row["self_s"] for row in timer.snapshot().values())
        assert attributed <= wall + 1e-6

    def test_record_charges_enclosing_phase(self):
        timer = PhaseTimer()
        with timer.phase("parse"):
            time.sleep(0.005)
            timer.record("cache.lookup", 0.004, calls=3)
        table = timer.snapshot()
        assert table["cache.lookup"]["calls"] == 3
        assert table["cache.lookup"]["self_s"] == pytest.approx(0.004)
        # the recorded leaf time is excluded from parse's self time
        assert table["parse"]["self_s"] == pytest.approx(
            table["parse"]["total_s"] - 0.004, abs=1e-6
        )

    def test_merge_table_folds_child_rows_and_charges_open_phase(self):
        child = PhaseTimer()
        with child.phase("parse.default"):
            time.sleep(0.005)
        parent = PhaseTimer()
        with parent.phase("parse"):
            time.sleep(0.02)
            parent.merge_table(child.snapshot())
        table = parent.snapshot()
        assert "parse.default" in table
        child_self = table["parse.default"]["self_s"]
        assert table["parse"]["self_s"] == pytest.approx(
            table["parse"]["total_s"] - child_self, abs=1e-6
        )

    def test_merge_table_accumulates_onto_existing_rows(self):
        timer = PhaseTimer()
        timer.record("x", 1.0, calls=2, n_bytes=10)
        timer.merge_table({"x": {"total_s": 2.0, "self_s": 2.0, "cpu_s": 0.5,
                                 "calls": 3, "bytes": 5}})
        row = timer.snapshot()["x"]
        assert row["total_s"] == pytest.approx(3.0)
        assert row["calls"] == 5
        assert row["bytes"] == 15

    def test_merge_empty_table_is_noop(self):
        timer = PhaseTimer()
        timer.merge_table({})
        assert timer.snapshot() == {}

    def test_threads_accumulate_into_one_table(self):
        timer = PhaseTimer()

        def work(name: str) -> None:
            with timer.phase(name):
                time.sleep(0.005)

        threads = [
            threading.Thread(target=work, args=(f"t{i % 2}",)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        table = timer.snapshot()
        assert set(table) == {"t0", "t1"}
        assert table["t0"]["calls"] + table["t1"]["calls"] == 8

    def test_snapshot_is_sorted_and_json_trivial(self):
        timer = PhaseTimer()
        timer.record("zeta", 0.1)
        timer.record("alpha", 0.1)
        table = timer.snapshot()
        assert list(table) == ["alpha", "zeta"]
        json.dumps(table)

    def test_clear(self):
        timer = PhaseTimer()
        timer.record("x", 1.0)
        timer.clear()
        assert timer.snapshot() == {}


class TestAmbientTimer:
    def test_module_phase_is_noop_without_timer(self):
        assert profiling.current_timer() is None
        with profiling.phase("anything"):
            pass  # must not raise, must not record anywhere

    def test_use_timer_binds_and_restores(self):
        timer = PhaseTimer()
        with profiling.use_timer(timer):
            assert profiling.current_timer() is timer
            with profiling.phase("work"):
                pass
            profiling.record("leaf", 0.01)
        assert profiling.current_timer() is None
        assert set(timer.snapshot()) == {"work", "leaf"}

    def test_phases_disabled_suppresses_recording(self):
        timer = PhaseTimer()
        profiling.set_phases_enabled(False)
        try:
            with profiling.use_timer(timer):
                with profiling.phase("work"):
                    pass
                profiling.record("leaf", 0.01)
        finally:
            profiling.set_phases_enabled(True)
        assert timer.snapshot() == {}

    def test_phase_buckets_are_sorted(self):
        assert list(PHASE_SECONDS_BUCKETS) == sorted(PHASE_SECONDS_BUCKETS)


class TestProfile:
    def test_add_merge_and_counts(self):
        p = Profile()
        p.add_stack("a;b;c")
        p.add_stack("a;b;c", 2)
        other = Profile(counts={"a;b;c": 1, "x;y": 4})
        p.merge(other)
        assert p.counts == {"a;b;c": 4, "x;y": 4}
        assert p.n_samples == 8

    def test_collapsed_output_busiest_first(self):
        p = Profile(counts={"cold;path": 1, "hot;path": 9})
        assert p.collapsed().splitlines() == ["hot;path 9", "cold;path 1"]

    def test_top_aggregates_by_leaf_frame(self):
        p = Profile(counts={"a;leaf": 3, "b;c;leaf": 2, "d;other": 4})
        assert p.top(2) == [("leaf", 5), ("other", 4)]

    def test_round_trips_through_dict(self):
        p = Profile(counts={"a;b": 2}, interval=0.005)
        clone = Profile.from_dict(json.loads(json.dumps(p.to_dict())))
        assert clone.counts == p.counts
        assert clone.interval == p.interval
        assert clone.n_samples == 2


class TestStackSampler:
    def test_captures_stacks_of_other_threads(self):
        stop = threading.Event()

        def busy_wait_for_sampler() -> None:
            stop.wait(2.0)

        worker = threading.Thread(target=busy_wait_for_sampler)
        worker.start()
        try:
            with StackSampler(interval=0.002) as sampler:
                time.sleep(0.05)
        finally:
            stop.set()
            worker.join()
        profile = sampler.profile
        assert profile.n_samples > 0
        # our worker's distinctive frame was sampled
        assert any("busy_wait_for_sampler" in stack for stack in profile.counts)
        # the sampler never samples its own loop
        assert not any("_sample_once" in stack for stack in profile.counts)

    def test_stop_returns_profile_and_is_restartable(self):
        sampler = StackSampler(interval=0.005)
        sampler.start()
        profile = sampler.stop()
        assert profile is sampler.profile
        sampler.start()  # a stopped sampler may start again
        sampler.stop()

    def test_double_start_raises(self):
        sampler = StackSampler(interval=0.005).start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            StackSampler(interval=0.0)

    def test_max_samples_bounds_collection(self):
        stop = threading.Event()
        worker = threading.Thread(target=lambda: stop.wait(2.0))
        worker.start()
        try:
            sampler = StackSampler(interval=0.001, max_samples=3).start()
            time.sleep(0.1)
            profile = sampler.stop()
        finally:
            stop.set()
            worker.join()
        # one _sample_once pass may record several threads, so allow the
        # final pass to overshoot by the thread count, not run unbounded
        assert profile.n_samples <= 3 + threading.active_count() + 1


class TestProfileStore:
    def test_put_get_and_keys(self):
        store = ProfileStore()
        p = Profile(counts={"a": 1})
        store.put("t1", p)
        assert store.get("t1") is p
        assert store.get("absent") is None
        assert store.keys() == ["t1"]

    def test_eviction_drops_oldest(self):
        store = ProfileStore(max_profiles=2)
        store.put("a", Profile())
        store.put("b", Profile())
        store.put("c", Profile())
        assert store.get("a") is None
        assert store.keys() == ["b", "c"]

    def test_reput_refreshes_recency(self):
        store = ProfileStore(max_profiles=2)
        store.put("a", Profile())
        store.put("b", Profile())
        store.put("a", Profile())  # a is now newest
        store.put("c", Profile())
        assert store.get("b") is None
        assert store.get("a") is not None

    def test_merge_into_accumulates(self):
        store = ProfileStore()
        store.merge_into("shard:0", Profile(counts={"x": 1}))
        store.merge_into("shard:0", Profile(counts={"x": 2, "y": 1}))
        merged = store.get("shard:0")
        assert merged.counts == {"x": 3, "y": 1}

    def test_clear(self):
        store = ProfileStore()
        store.put("a", Profile())
        store.clear()
        assert store.keys() == []
