"""Regression tests: daemon CLIs keep stdout machine-readable.

The ``gateway`` and ``worker`` commands promise that the JSON ready line
is the *only* stdout output — every diagnostic (including the final
stopped summary) goes to stderr through ``repro.obs.logging``.  Pipe
readers (the ``cluster`` spawner, CI smoke jobs) depend on it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro

SRC_ROOT = str(Path(repro.__file__).resolve().parent.parent)


def spawn(*arguments: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_ROOT] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *arguments],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def run_daemon(*arguments: str) -> tuple[dict, str, str]:
    """Start a daemon, wait for its ready line, stop it, return the streams."""
    proc = spawn(*arguments)
    try:
        ready_line = proc.stdout.readline()
        ready = json.loads(ready_line)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
    except Exception:
        proc.kill()
        proc.communicate(timeout=10)
        raise
    assert proc.returncode == 0, err
    return ready, ready_line + out, err


@pytest.mark.parametrize(
    "arguments, ready_event",
    [
        (("gateway", "--port", "0", "--backend", "serial"), "listening"),
        (("worker", "--port", "0", "--name", "stream-test-worker"), "listening"),
    ],
)
def test_daemon_stdout_is_exactly_the_ready_line(arguments, ready_event):
    ready, out, err = run_daemon(*arguments, "--log-json")
    assert ready["event"] == ready_event
    assert "address" in ready
    # stdout: exactly one line, and it is the ready JSON.
    assert out.splitlines() == [json.dumps(ready, separators=(", ", ": "))] or (
        len(out.splitlines()) == 1
    )
    # stderr: NDJSON records, ending with the structured stopped summary.
    records = [json.loads(line) for line in err.splitlines() if line]
    assert records, "expected NDJSON logs on stderr"
    assert all("level" in record and "logger" in record for record in records)
    assert records[-1]["event"] == "stopped"


def test_daemon_stderr_text_mode_has_no_stdout_leak():
    ready, out, err = run_daemon(
        "worker", "--port", "0", "--name", "stream-test-worker-text"
    )
    assert len(out.splitlines()) == 1
    assert json.loads(out)["event"] == "listening"
    assert "stopped" in err
