"""Unit tests of the metrics history ring buffer (obs metrics --watch)."""

from __future__ import annotations

import time

import pytest

from repro.obs.history import MetricsHistory, flatten_snapshot
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestFlattenSnapshot:
    def test_counters_gauges_and_labels(self, registry):
        registry.counter("repro_flat_total", labelnames=("kind",)).inc(2, kind="a")
        registry.gauge("repro_flat_depth").set(7)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["repro_flat_total{kind=a}"] == 2.0
        assert flat["repro_flat_depth"] == 7.0

    def test_histograms_flatten_to_count_and_sum(self, registry):
        h = registry.histogram("repro_flat_seconds", buckets=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        flat = flatten_snapshot(registry.snapshot())
        assert flat["repro_flat_seconds_count"] == 2.0
        assert flat["repro_flat_seconds_sum"] == pytest.approx(2.5)
        # bucket detail stays out of the flattened view
        assert not any("bucket" in key for key in flat)

    def test_label_keys_sorted_deterministically(self, registry):
        c = registry.counter("repro_sorted_total", labelnames=("b", "a"))
        c.inc(a="1", b="2")
        flat = flatten_snapshot(registry.snapshot())
        assert "repro_sorted_total{a=1,b=2}" in flat


class TestMetricsHistory:
    def test_capacity_must_allow_deltas(self, registry):
        with pytest.raises(ValueError):
            MetricsHistory(registry=registry, capacity=1)

    def test_sample_and_len(self, registry):
        history = MetricsHistory(registry=registry, capacity=4)
        assert len(history) == 0
        registry.counter("repro_h_total").inc()
        flat = history.sample()
        assert flat["repro_h_total"] == 1.0
        assert len(history) == 1
        assert history.latest()[1] == flat

    def test_capacity_is_a_ring(self, registry):
        history = MetricsHistory(registry=registry, capacity=2)
        for _ in range(5):
            history.sample()
        assert len(history) == 2

    def test_delta_and_rate(self, registry):
        counter = registry.counter("repro_d_total")
        history = MetricsHistory(registry=registry)
        counter.inc(3)
        history.sample()
        counter.inc(4)
        history.sample()
        assert history.delta()["repro_d_total"] == pytest.approx(4.0)
        assert history.rate()["repro_d_total"] > 0
        assert history.delta(span=99)["repro_d_total"] == pytest.approx(4.0)

    def test_delta_needs_two_samples(self, registry):
        history = MetricsHistory(registry=registry)
        assert history.delta() == {}
        history.sample()
        assert history.delta() == {}
        assert history.rate() == {}

    def test_new_series_counts_from_zero(self, registry):
        history = MetricsHistory(registry=registry)
        history.sample()
        registry.counter("repro_new_total").inc(5)
        history.sample()
        assert history.delta()["repro_new_total"] == pytest.approx(5.0)

    def test_reset_reads_as_fresh_start_not_negative(self, registry):
        """MetricsRegistry.reset() × history: clamp, don't resurrect."""
        counter = registry.counter("repro_r_total")
        counter.inc(10)
        history = MetricsHistory(registry=registry)
        history.sample()
        registry.reset()
        history.sample()
        delta = history.delta()
        # the series vanished from the registry: omitted, not negative
        assert "repro_r_total" not in delta
        assert all(value >= 0.0 for value in delta.values())
        # counting resumes from zero — no stale pre-reset value leaks in
        counter.inc(2)
        history.sample()
        assert history.delta()["repro_r_total"] == pytest.approx(2.0)

    def test_counter_restart_clamps_to_zero(self, registry):
        history = MetricsHistory(registry=registry)
        # simulate a process restart behind the same endpoint: the newer
        # sample's cumulative value is below the older one's
        history._samples.append((time.time() - 1, {"repro_c_total": 9.0}))
        history._samples.append((time.time(), {"repro_c_total": 3.0}))
        assert history.delta() == {"repro_c_total": 0.0}

    def test_background_sampler_thread(self, registry):
        registry.counter("repro_bg_total").inc()
        history = MetricsHistory(registry=registry)
        history.start(interval=0.01)
        try:
            deadline = time.time() + 2.0
            while len(history) < 3 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            history.stop()
        assert len(history) >= 3
        with pytest.raises(ValueError):
            history.start(interval=0.0)

    def test_double_start_raises(self, registry):
        history = MetricsHistory(registry=registry)
        history.start(interval=5.0)
        try:
            with pytest.raises(RuntimeError):
                history.start(interval=5.0)
        finally:
            history.stop()

    def test_clear(self, registry):
        history = MetricsHistory(registry=registry)
        history.sample()
        history.clear()
        assert len(history) == 0
        assert history.latest() is None
