"""Regression tests: `obs trace` / `obs profile` exit codes and rendering.

An owned ticket with *nothing recorded* used to print an empty tree and
exit 0 — indistinguishable from success in scripts.  Both commands now
share the contract: human mode prints an error to stderr and exits 1,
``--json`` still emits the raw payload and exits 0.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.gateway import GatewayClient, GatewayServer
from repro.obs import profiling, tracing
from repro.pipeline import ParsePipeline, ParseRequest
from repro.serve import ParseService


@pytest.fixture()
def gateway():
    profiling.default_store().clear()
    with ParseService(pipeline=ParsePipeline()) as service:
        with GatewayServer(service, port=0) as server:
            yield server
    profiling.default_store().clear()


def submit_and_finish(server: GatewayServer, client: str = "cli") -> str:
    with GatewayClient("127.0.0.1", server.port, client=client).connect() as conn:
        ticket = conn.submit(ParseRequest(parser="pymupdf", n_documents=4, seed=3))
        list(ticket.events())
        return ticket.id


class TestObsTraceExitCode:
    def test_spanless_ticket_exits_1_with_stderr_message(self, gateway, capsys):
        tracing.set_enabled(False)
        try:
            ticket_id = submit_and_finish(gateway)
            code = main(
                ["obs", "trace", ticket_id, "--port", str(gateway.port)]
            )
        finally:
            tracing.set_enabled(True)
        captured = capsys.readouterr()
        assert code == 1
        assert "no spans recorded" in captured.err
        assert ticket_id in captured.err

    def test_spanless_ticket_json_mode_still_exits_0(self, gateway, capsys):
        tracing.set_enabled(False)
        try:
            ticket_id = submit_and_finish(gateway)
            code = main(
                ["obs", "trace", ticket_id, "--port", str(gateway.port), "--json"]
            )
        finally:
            tracing.set_enabled(True)
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["spans"] == []

    def test_traced_ticket_prints_tree_and_exits_0(self, gateway, capsys):
        ticket_id = submit_and_finish(gateway)
        code = main(["obs", "trace", ticket_id, "--port", str(gateway.port)])
        captured = capsys.readouterr()
        assert code == 0
        assert "gateway.submit" in captured.out

    def test_unknown_ticket_is_a_hard_error(self, gateway):
        with pytest.raises(SystemExit, match="error"):
            main(["obs", "trace", "TICKET-missing", "--port", str(gateway.port)])


class TestObsProfileExitCode:
    def test_profileless_ticket_exits_1_with_stderr_message(self, gateway, capsys):
        assert not profiling.profiling_enabled()
        ticket_id = submit_and_finish(gateway)
        code = main(["obs", "profile", ticket_id, "--port", str(gateway.port)])
        captured = capsys.readouterr()
        assert code == 1
        assert "no profile recorded" in captured.err
        assert "--profile" in captured.err  # the fix hint

    def test_profileless_ticket_json_mode_still_exits_0(self, gateway, capsys):
        ticket_id = submit_and_finish(gateway)
        code = main(
            ["obs", "profile", ticket_id, "--port", str(gateway.port), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["profile"] is None

    def test_profiled_ticket_prints_collapsed_stacks(self, gateway, capsys):
        profiling.set_profiling_enabled(True)
        try:
            ticket_id = submit_and_finish(gateway)
            code = main(
                ["obs", "profile", ticket_id, "--port", str(gateway.port)]
            )
        finally:
            profiling.set_profiling_enabled(False)
        captured = capsys.readouterr()
        assert code == 0
        assert "sample(s)" in captured.out
        # collapsed format: "frame;frame;... count" lines
        body = captured.out.splitlines()[1:]
        assert body and all(line.rsplit(" ", 1)[1].isdigit() for line in body)

    def test_profiled_ticket_top_table(self, gateway, capsys):
        profiling.set_profiling_enabled(True)
        try:
            ticket_id = submit_and_finish(gateway)
            code = main(
                [
                    "obs", "profile", ticket_id,
                    "--port", str(gateway.port), "--top", "3",
                ]
            )
        finally:
            profiling.set_profiling_enabled(False)
        captured = capsys.readouterr()
        assert code == 0
        assert "%" in captured.out

    def test_unknown_ticket_is_a_hard_error(self, gateway):
        with pytest.raises(SystemExit, match="error"):
            main(["obs", "profile", "TICKET-missing", "--port", str(gateway.port)])
