"""Unit tests of structured logging: setup idempotence, formats, trace ids."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import logging as obs_logging
from repro.obs import tracing
from repro.obs.logging import get_logger, log_event, setup
from repro.obs.tracing import TraceContext


@pytest.fixture()
def root():
    """The repro root logger, restored to library defaults afterwards."""
    logger = logging.getLogger(obs_logging.ROOT_LOGGER_NAME)
    saved_level, saved_propagate = logger.level, logger.propagate
    yield logger
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    logger.setLevel(saved_level)
    logger.propagate = saved_propagate


def test_get_logger_prefixes_bare_names():
    assert get_logger("gateway").name == "repro.gateway"
    assert get_logger("repro.cluster").name == "repro.cluster"
    assert get_logger().name == "repro"


def test_setup_is_idempotent(root):
    setup(stream=io.StringIO())
    setup(stream=io.StringIO())
    obs_handlers = [
        h for h in root.handlers if getattr(h, "_repro_obs_handler", False)
    ]
    assert len(obs_handlers) == 1
    assert root.propagate is False


def test_json_mode_emits_ndjson_with_fields(root):
    stream = io.StringIO()
    setup(level="debug", json_mode=True, stream=stream)
    log_event(get_logger("test"), "info", "thing_happened", count=3, name="x")
    (line,) = stream.getvalue().splitlines()
    payload = json.loads(line)
    assert payload["event"] == "thing_happened"
    assert payload["level"] == "info"
    assert payload["logger"] == "repro.test"
    assert payload["count"] == 3
    assert payload["name"] == "x"
    assert "ts" in payload


def test_json_mode_injects_active_trace_id(root):
    stream = io.StringIO()
    setup(json_mode=True, stream=stream)
    context = TraceContext.new()
    with tracing.activate(context):
        log_event(get_logger("test"), "info", "traced")
    payload = json.loads(stream.getvalue())
    assert payload["trace_id"] == context.trace_id


def test_text_mode_single_line_with_kv_pairs(root):
    stream = io.StringIO()
    setup(stream=stream)
    log_event(get_logger("test"), "warning", "watch_out", ticket="t1")
    (line,) = stream.getvalue().splitlines()
    assert "WARNING" in line
    assert "repro.test" in line
    assert "watch_out" in line
    assert "ticket=t1" in line


def test_log_event_accepts_int_and_string_levels(root):
    stream = io.StringIO()
    setup(level="warning", json_mode=True, stream=stream)
    logger = get_logger("test")
    log_event(logger, "debug", "suppressed")
    log_event(logger, logging.ERROR, "kept_int")
    log_event(logger, "error", "kept_str")
    events = [json.loads(line)["event"] for line in stream.getvalue().splitlines()]
    assert events == ["kept_int", "kept_str"]


def test_level_filtering(root):
    stream = io.StringIO()
    setup(level="error", json_mode=True, stream=stream)
    log_event(get_logger("test"), "info", "quiet")
    assert stream.getvalue() == ""


def test_unconfigured_library_is_silent(capsys):
    # No setup(): the NullHandler swallows records without complaints.
    log_event(get_logger("silent"), "info", "nobody_listens")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == ""
