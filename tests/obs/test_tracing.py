"""Unit tests of tracing: contexts, spans, the recorder, tree building."""

from __future__ import annotations

import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import SpanRecorder, TraceContext, build_tree


@pytest.fixture()
def recorder():
    """Route spans to a private recorder and restore ambient state after."""
    private = SpanRecorder()
    with tracing.use_recorder(private):
        yield private


class TestTraceContext:
    def test_new_contexts_are_unique(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_child_keeps_trace_id(self):
        parent = TraceContext.new()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id

    def test_wire_round_trip(self):
        context = TraceContext.new()
        assert TraceContext.from_wire(context.to_json_dict()) == context

    @pytest.mark.parametrize(
        "payload",
        [None, "garbage", 42, [], {}, {"span_id": "x"}, {"trace_id": ""}],
    )
    def test_from_wire_tolerates_garbage(self, payload):
        assert TraceContext.from_wire(payload) is None


class TestSpans:
    def test_span_without_active_trace_is_noop(self, recorder):
        with tracing.span("orphan") as ctx:
            assert ctx is None
        assert recorder.trace_ids() == []

    def test_nested_spans_parent_correctly(self, recorder):
        root = TraceContext.new()
        with tracing.activate(root):
            with tracing.span("outer", attributes={"k": "v"}) as outer:
                with tracing.span("inner"):
                    pass
        spans = recorder.spans(root.trace_id)
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["parent_id"] == root.span_id
        assert by_name["inner"]["parent_id"] == outer.span_id
        assert by_name["outer"]["attributes"] == {"k": "v"}
        assert all(s["status"] == "ok" for s in spans)

    def test_escaping_exception_marks_error(self, recorder):
        root = TraceContext.new()
        with tracing.activate(root):
            with pytest.raises(RuntimeError):
                with tracing.span("boom"):
                    raise RuntimeError("nope")
        (span_record,) = recorder.spans(root.trace_id)
        assert span_record["status"] == "error"

    def test_disabled_tracing_records_nothing(self, recorder):
        root = TraceContext.new()
        tracing.set_enabled(False)
        try:
            with tracing.activate(root):
                with tracing.span("off") as ctx:
                    assert ctx is None
        finally:
            tracing.set_enabled(True)
        assert recorder.spans(root.trace_id) == []

    def test_record_span_external_timing(self, recorder):
        root = TraceContext.new()
        span_id = tracing.record_span(
            "queue.wait", parent=root, duration_s=1.5, recorder=recorder
        )
        (record,) = recorder.spans(root.trace_id)
        assert record["span_id"] == span_id
        assert record["parent_id"] == root.span_id
        assert record["duration_s"] == pytest.approx(1.5)

    def test_bind_carries_trace_into_thread(self, recorder):
        root = TraceContext.new()
        with tracing.activate(root):
            def work() -> None:
                with tracing.span("threaded"):
                    pass
            bound = tracing.bind(work)
        thread = threading.Thread(target=bound)
        thread.start()
        thread.join()
        assert [s["name"] for s in recorder.spans(root.trace_id)] == ["threaded"]


class TestSpanRecorder:
    def _record(self, recorder, trace_id, span_id="s", parent_id=""):
        recorder.record(
            {
                "name": "n",
                "trace_id": trace_id,
                "span_id": span_id,
                "parent_id": parent_id,
                "start_ts": 0.0,
                "duration_s": 0.0,
                "status": "ok",
                "attributes": {},
            }
        )

    def test_trace_eviction_is_fifo(self):
        recorder = SpanRecorder(max_traces=2)
        for trace_id in ("t1", "t2", "t3"):
            self._record(recorder, trace_id)
        assert recorder.trace_ids() == ["t2", "t3"]
        assert recorder.spans("t1") == []

    def test_spans_per_trace_bounded(self):
        recorder = SpanRecorder(max_spans_per_trace=2)
        for i in range(5):
            self._record(recorder, "t", span_id=f"s{i}")
        assert len(recorder.spans("t")) == 2
        assert recorder.dropped_spans == 3

    def test_missing_trace_id_ignored(self):
        recorder = SpanRecorder()
        recorder.record({"name": "x"})
        assert recorder.trace_ids() == []

    def test_ingest_skips_non_mappings(self):
        recorder = SpanRecorder()
        count = recorder.ingest(
            [{"trace_id": "t", "span_id": "a"}, "junk", None, 7]
        )
        assert count == 1
        assert len(recorder.spans("t")) == 1

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_traces=0)


class TestBuildTree:
    def test_nesting_and_orphans(self):
        spans = [
            {"span_id": "child", "parent_id": "root", "start_ts": 2.0},
            {"span_id": "root", "parent_id": "", "start_ts": 1.0},
            {"span_id": "orphan", "parent_id": "missing", "start_ts": 0.5},
        ]
        roots = build_tree(spans)
        assert [n["span_id"] for n in roots] == ["orphan", "root"]
        (child,) = next(n for n in roots if n["span_id"] == "root")["children"]
        assert child["span_id"] == "child"

    def test_children_sorted_by_start(self):
        spans = [
            {"span_id": "r", "parent_id": "", "start_ts": 0.0},
            {"span_id": "b", "parent_id": "r", "start_ts": 2.0},
            {"span_id": "a", "parent_id": "r", "start_ts": 1.0},
        ]
        (root,) = build_tree(spans)
        assert [n["span_id"] for n in root["children"]] == ["a", "b"]

    def test_recorder_tree_helper(self):
        recorder = SpanRecorder()
        recorder.record(
            {"trace_id": "t", "span_id": "a", "parent_id": "", "start_ts": 1.0}
        )
        recorder.record(
            {"trace_id": "t", "span_id": "b", "parent_id": "a", "start_ts": 2.0}
        )
        (root,) = recorder.tree("t")
        assert root["span_id"] == "a"
        assert root["children"][0]["span_id"] == "b"
