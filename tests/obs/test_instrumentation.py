"""Integration tests: obs wired through service, gateway, and cluster.

The acceptance centrepiece mirrors the README's observability story: one
request submitted through a :class:`GatewayClient` over a 2-worker
cluster must yield a *single* trace id visible in the client's streamed
event payloads, and an ``obs trace``-shaped span tree that nests
gateway → service → backend → worker-shard spans.
"""

from __future__ import annotations

import sys
import subprocess
import textwrap

import pytest

from repro.cache import ParseCache
from repro.cluster.worker import WorkerDaemon
from repro.gateway import GatewayClient, GatewayError, GatewayServer
from repro.obs import metrics, profiling, tracing
from repro.obs.tracing import build_tree
from repro.pipeline import ParsePipeline, ParseRequest
from repro.serve import ParseService, ServiceConfig


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Fresh metric series and span storage around every test."""
    metrics.reset()
    tracing.default_recorder().clear()
    yield
    metrics.reset()
    tracing.default_recorder().clear()


def request_for(n_documents: int = 8, **overrides) -> ParseRequest:
    options = {"parser": "pymupdf", "n_documents": n_documents, "seed": 11}
    options.update(overrides)
    return ParseRequest(**options)


# ---------------------------------------------------------------------- #
# Lazy import
# ---------------------------------------------------------------------- #
def test_import_repro_does_not_import_obs():
    code = textwrap.dedent(
        """
        import sys
        import repro
        assert "repro.obs" not in sys.modules, "repro.obs imported eagerly"
        import repro.obs  # the lazy attribute still resolves
        assert repro.obs.default_registry() is not None
        """
    )
    subprocess.run([sys.executable, "-c", code], check=True)


# ---------------------------------------------------------------------- #
# Service layer
# ---------------------------------------------------------------------- #
class TestServiceInstrumentation:
    def test_events_carry_one_trace_id_and_elapsed(self):
        with ParseService(pipeline=ParsePipeline()) as service:
            ticket = service.submit(request_for(batch_size=4))
            ticket.result(timeout=60)
            events = list(ticket.events(timeout=1))
        trace_ids = {e.payload.get("trace_id") for e in events}
        assert len(trace_ids) == 1 and None not in trace_ids
        for event in events:
            if event.kind in ("batch", "completed", "failed", "cancelled"):
                assert event.payload["elapsed_s"] >= 0.0
        (trace_id,) = trace_ids
        names = {s["name"] for s in tracing.default_recorder().spans(trace_id)}
        assert {"service.admission", "service.ticket", "backend.batch"} <= names

    def test_ticket_lifecycle_counters(self):
        with ParseService(pipeline=ParsePipeline()) as service:
            service.submit(request_for()).result(timeout=60)
        tickets = metrics.default_registry().get("repro_service_tickets_total")
        assert tickets.value(state="submitted") == 1
        assert tickets.value(state="completed") == 1
        admission = metrics.default_registry().get(
            "repro_service_admission_wait_seconds"
        )
        assert admission.value()["count"] == 1

    def test_cancelled_ticket_counted_with_elapsed(self):
        config = ServiceConfig(max_active=1, backend_options={"n_jobs": 2})
        with ParseService(pipeline=ParsePipeline(), config=config) as service:
            running = service.submit(request_for(16))
            queued = service.submit(request_for(16, seed=99))
            assert service.cancel(queued)
            running.result(timeout=60)
            terminal = list(queued.events(timeout=1))[-1]
        assert terminal.kind == "cancelled"
        assert terminal.payload["elapsed_s"] >= 0.0
        tickets = metrics.default_registry().get("repro_service_tickets_total")
        assert tickets.value(state="cancelled") == 1

    def test_cache_counters_feed_from_pipeline(self):
        pipeline = ParsePipeline(cache=ParseCache())
        with ParseService(pipeline=pipeline) as service:
            service.submit(request_for(cache="readwrite")).result(timeout=60)
            service.submit(request_for(cache="readwrite")).result(timeout=60)
        registry = metrics.default_registry()
        assert registry.get("repro_cache_misses_total").value() >= 1
        assert registry.get("repro_cache_hits_total").value() >= 1


# ---------------------------------------------------------------------- #
# Gateway layer
# ---------------------------------------------------------------------- #
class TestGatewayInstrumentation:
    @pytest.fixture()
    def gateway(self):
        with ParseService(pipeline=ParsePipeline()) as service:
            with GatewayServer(service, port=0) as server:
                yield server

    def connect(self, server: GatewayServer) -> GatewayClient:
        return GatewayClient("127.0.0.1", server.port, client="obs-test").connect()

    def test_trace_id_on_ticket_events_and_trace_rpc(self, gateway):
        with self.connect(gateway) as client:
            ticket = client.submit(request_for())
            assert ticket.trace_id
            events = list(ticket.events())
            assert {e.payload.get("trace_id") for e in events} == {ticket.trace_id}
            payload = client.trace(ticket)
        assert payload["trace_id"] == ticket.trace_id
        names = {s["name"] for s in payload["spans"]}
        assert "gateway.submit" in names and "service.ticket" in names

    def test_metrics_rpc_text_and_json(self, gateway):
        with self.connect(gateway) as client:
            client.submit(request_for()).events()
            text = client.metrics(format="text")
            snap = client.metrics(format="json")
        assert "repro_gateway_submitted_total 1" in text
        assert isinstance(snap, dict)
        assert snap["repro_gateway_submitted_total"]["values"][0]["value"] == 1

    def test_rejections_counted_by_reason(self, gateway):
        with self.connect(gateway) as client:
            from repro.gateway import protocol

            reply = client._rpc(
                {"type": protocol.SUBMIT, "request": {"n_documents": -5}}
            )
            assert reply.get("type") == protocol.REJECTED
            text = client.metrics(format="text")
        assert 'repro_gateway_rejected_total{reason="bad_request"} 1' in text


# ---------------------------------------------------------------------- #
# Gateway PROFILE RPC
# ---------------------------------------------------------------------- #
class TestGatewayProfiling:
    @pytest.fixture()
    def gateway(self):
        profiling.default_store().clear()
        with ParseService(pipeline=ParsePipeline()) as service:
            with GatewayServer(service, port=0) as server:
                yield server
        profiling.default_store().clear()

    def connect(self, server: GatewayServer) -> GatewayClient:
        return GatewayClient("127.0.0.1", server.port, client="obs-test").connect()

    def test_profile_rpc_returns_sampled_stacks(self, gateway):
        profiling.set_profiling_enabled(True)
        try:
            with self.connect(gateway) as client:
                ticket = client.submit(request_for(16, batch_size=2))
                list(ticket.events())
                payload = client.profile(ticket)
        finally:
            profiling.set_profiling_enabled(False)
        assert payload["ticket_id"] == ticket.id
        assert payload["state"] == "completed"
        profile = payload["profile"]
        assert profile is not None
        assert profile["n_samples"] > 0
        assert profile["counts"]  # flamegraph-collapsible stacks present
        assert all(";" in stack or stack for stack in profile["counts"])

    def test_profile_is_none_when_profiling_disabled(self, gateway):
        assert not profiling.profiling_enabled()
        with self.connect(gateway) as client:
            ticket = client.submit(request_for())
            list(ticket.events())
            payload = client.profile(ticket)
        assert payload["state"] == "completed"
        assert payload["profile"] is None

    def test_profile_unknown_ticket_raises(self, gateway):
        with self.connect(gateway) as client:
            with pytest.raises(GatewayError):
                client.profile("TICKET-does-not-exist")

    def test_profile_accepts_ticket_id_string(self, gateway):
        profiling.set_profiling_enabled(True)
        try:
            with self.connect(gateway) as client:
                ticket = client.submit(request_for(16, batch_size=2))
                list(ticket.events())
                payload = client.profile(ticket.id)
        finally:
            profiling.set_profiling_enabled(False)
        assert payload["ticket_id"] == ticket.id


# ---------------------------------------------------------------------- #
# The acceptance criterion: one trace across gateway + 2-worker cluster
# ---------------------------------------------------------------------- #
def test_one_trace_id_across_gateway_service_and_cluster_workers(registry):
    workers = [
        WorkerDaemon(name=f"obs-worker-{i}", pipeline=ParsePipeline(registry)).start()
        for i in range(2)
    ]
    addresses = ",".join(f"127.0.0.1:{w.port}" for w in workers)
    config = ServiceConfig(backend="remote", backend_options={"workers": addresses})
    try:
        with ParseService(pipeline=ParsePipeline(registry), config=config) as service:
            with GatewayServer(service, port=0) as server:
                with GatewayClient(
                    "127.0.0.1", server.port, client="obs-e2e"
                ).connect() as client:
                    ticket = client.submit(
                        request_for(8, batch_size=2, cache="off")
                    )
                    events = list(ticket.events())
                    payload = client.trace(ticket)
    finally:
        for worker in workers:
            worker.stop()

    # One trace id, everywhere.
    assert ticket.trace_id
    assert {e.payload.get("trace_id") for e in events} == {ticket.trace_id}
    assert payload["trace_id"] == ticket.trace_id

    # The span tree nests gateway -> service -> backend -> worker shards.
    (root,) = build_tree(payload["spans"])
    assert root["name"] == "gateway.submit"

    def walk(node, depth=0):
        yield node, depth
        for child in node["children"]:
            yield from walk(child, depth + 1)

    nodes = list(walk(root))
    names = {node["name"] for node, _ in nodes}
    assert {"service.ticket", "backend.batch", "cluster.shard", "worker.shard"} <= names
    shard_workers = {
        node["attributes"]["worker"]
        for node, _ in nodes
        if node["name"] == "worker.shard"
    }
    assert shard_workers == {"obs-worker-0", "obs-worker-1"}
    # worker.shard spans hang below the cluster.shard round-trip spans.
    parent_of = {
        child["span_id"]: parent["name"]
        for parent, _ in nodes
        for child in parent["children"]
    }
    for node, _ in nodes:
        if node["name"] == "worker.shard":
            assert parent_of[node["span_id"]] == "cluster.shard"

    # Cluster metrics counted the shards.
    shards = metrics.default_registry().get("repro_cluster_shards_total")
    assert shards.value(outcome="completed") == 4


def test_profiled_submit_over_cluster_merges_phases_and_profiles(registry):
    """The PR's acceptance path: a profiled submit through the gateway over
    a 2-worker cluster yields a merged phase table in the report AND a
    retrievable sampled profile for the ticket."""
    profiling.default_store().clear()
    profiling.set_profiling_enabled(True)
    workers = [
        WorkerDaemon(
            name=f"prof-worker-{i}", pipeline=ParsePipeline(registry)
        ).start()
        for i in range(2)
    ]
    addresses = ",".join(f"127.0.0.1:{w.port}" for w in workers)
    config = ServiceConfig(backend="remote", backend_options={"workers": addresses})
    try:
        with ParseService(pipeline=ParsePipeline(registry), config=config) as service:
            with GatewayServer(service, port=0) as server:
                with GatewayClient(
                    "127.0.0.1", server.port, client="prof-e2e"
                ).connect() as client:
                    ticket = client.submit(
                        request_for(8, batch_size=2, cache="off")
                    )
                    report = client.result(ticket, timeout=60)
                    payload = client.profile(ticket)
    finally:
        profiling.set_profiling_enabled(False)
        for worker in workers:
            worker.stop()

    # Worker phase tables crossed the wire and merged into the report.
    phases = report["phases"]
    assert {"source.iter", "validate.type", "parse"} <= set(phases)
    assert phases["parse"]["total_s"] > 0
    # The ticket's sampled profile is retrievable over the PROFILE RPC.
    assert payload["profile"] is not None
    assert payload["profile"]["n_samples"] > 0
    # Worker-side profiles shipped in batch_result frames and merged into
    # the coordinator's store under their shard keys.
    assert any(key.startswith("shard:") for key in profiling.default_store().keys())
    profiling.default_store().clear()


# ---------------------------------------------------------------------- #
# Satellite: backend `extra` key-family parity
# ---------------------------------------------------------------------- #
class TestBackendExtraParity:
    def extra_for(self, backend: str, registry, **options) -> dict:
        request = request_for(6, backend=backend, backend_options=options)
        report = ParsePipeline(registry).run(request)
        return report.execution.to_json_dict()["extra"]

    def test_async_publishes_window_family(self, registry):
        extra = self.extra_for("async", registry, n_jobs=2)
        for key in ("window_initial", "window_final", "window_high_water"):
            assert key in extra, f"async extra missing {key}"

    def test_hpc_publishes_sim_family(self, registry):
        extra = self.extra_for("hpc", registry, n_nodes=2)
        for key in ("sim_nodes", "sim_time_s", "sim_docs_per_s"):
            assert key in extra, f"hpc extra missing {key}"

    def test_remote_publishes_cluster_family(self, registry):
        worker = WorkerDaemon(
            name="parity-worker", pipeline=ParsePipeline(registry)
        ).start()
        try:
            extra = self.extra_for(
                "remote", registry, workers=f"127.0.0.1:{worker.port}"
            )
        finally:
            worker.stop()
        cluster_keys = {k for k in extra if k.startswith("cluster_")}
        for key in (
            "cluster_workers_configured",
            "cluster_placement",
            "cluster_shards_completed",
        ):
            assert key in cluster_keys, f"remote extra missing {key}"
