"""Unit tests of the metrics registry: declaration, series, exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("repro_test_total", "help text")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self, registry):
        c = registry.counter("repro_labeled_total", labelnames=("kind",))
        c.inc(kind="a")
        c.inc(3, kind="b")
        assert c.value(kind="a") == 1.0
        assert c.value(kind="b") == 3.0

    def test_label_mismatch_raises(self, registry):
        c = registry.counter("repro_strict_total", labelnames=("kind",))
        with pytest.raises(MetricError):
            c.inc()  # missing label
        with pytest.raises(MetricError):
            c.inc(kind="a", extra="b")  # unknown label

    def test_counters_cannot_decrease(self, registry):
        c = registry.counter("repro_mono_total")
        with pytest.raises(MetricError):
            c.inc(-1)


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro_depth")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value() == 3.0
        g.set(-1)  # gauges may go negative
        assert g.value() == -1.0


class TestHistogram:
    def test_buckets_are_cumulative(self, registry):
        h = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        series = h.value()
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(56.05)
        assert series["buckets"]["0.1"] == 1
        assert series["buckets"]["1"] == 3
        assert series["buckets"]["10"] == 4
        assert series["buckets"]["+Inf"] == 5

    def test_exposition_lines(self, registry):
        h = registry.histogram("repro_h_seconds", "latency", buckets=(1.0,))
        h.observe(0.5)
        text = registry.render_text()
        assert '# TYPE repro_h_seconds histogram' in text
        assert 'repro_h_seconds_bucket{le="1"} 1' in text
        assert 'repro_h_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_h_seconds_sum 0.5" in text
        assert "repro_h_seconds_count 1" in text

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_omitted_buckets_use_family_default(self, registry):
        h = registry.histogram("repro_defb_seconds")
        assert h.buckets == tuple(DEFAULT_BUCKETS)

    def test_declaration_buckets_are_sorted_on_the_way_in(self, registry):
        h = registry.histogram("repro_unsorted_seconds", buckets=(5.0, 0.5, 1.0))
        assert h.buckets == (0.5, 1.0, 5.0)


class TestCustomBuckets:
    """Per-declaration histogram buckets (phase-duration families)."""

    def test_value_on_boundary_lands_in_that_bucket(self, registry):
        # bisect_left semantics: the bucket bound is inclusive (`le`),
        # so an observation exactly on a boundary counts in that bucket.
        h = registry.histogram("repro_edge_seconds", buckets=(0.1, 1.0))
        h.observe(0.1)
        series = h.value()
        assert series["buckets"]["0.1"] == 1
        assert series["buckets"]["1"] == 1
        assert series["buckets"]["+Inf"] == 1

    def test_value_above_every_bound_only_counts_inf(self, registry):
        h = registry.histogram("repro_over_seconds", buckets=(0.1, 1.0))
        h.observe(99.0)
        series = h.value()
        assert series["buckets"]["0.1"] == 0
        assert series["buckets"]["1"] == 0
        assert series["buckets"]["+Inf"] == 1

    def test_custom_buckets_in_prometheus_exposition(self, registry):
        h = registry.histogram(
            "repro_custom_seconds",
            "custom-bucket family",
            buckets=(0.0001, 0.025, 2.5),
        )
        h.observe(0.0001)
        h.observe(0.01)
        h.observe(10.0)
        text = registry.render_text()
        assert 'repro_custom_seconds_bucket{le="0.0001"} 1' in text
        assert 'repro_custom_seconds_bucket{le="0.025"} 2' in text
        assert 'repro_custom_seconds_bucket{le="2.5"} 2' in text
        assert 'repro_custom_seconds_bucket{le="+Inf"} 3' in text
        # none of the family-default bounds leak into the exposition
        assert 'le="5"' not in text

    def test_refetch_without_buckets_returns_same_metric(self, registry):
        declared = registry.histogram("repro_refetch_seconds", buckets=(1.0, 2.0))
        fetched = registry.histogram("repro_refetch_seconds")
        assert fetched is declared
        assert fetched.buckets == (1.0, 2.0)

    def test_redeclare_same_buckets_is_idempotent(self, registry):
        first = registry.histogram("repro_same_seconds", buckets=(1.0, 2.0))
        second = registry.histogram("repro_same_seconds", buckets=(2.0, 1.0))
        assert second is first

    def test_redeclare_conflicting_buckets_raises(self, registry):
        registry.histogram("repro_conflict_seconds", buckets=(1.0, 2.0))
        with pytest.raises(MetricError, match="buckets"):
            registry.histogram("repro_conflict_seconds", buckets=(1.0, 3.0))

    def test_phase_histogram_uses_its_family_buckets(self):
        from repro.obs.profiling import PHASE_SECONDS_BUCKETS, phase_seconds_histogram

        h = phase_seconds_histogram()
        assert h.buckets == tuple(sorted(PHASE_SECONDS_BUCKETS))
        assert phase_seconds_histogram() is h  # re-fetch, not redeclare


class TestRegistry:
    def test_get_or_create_returns_same_metric(self, registry):
        first = registry.counter("repro_once_total", "h", ("a",))
        second = registry.counter("repro_once_total", "h", ("a",))
        assert first is second

    def test_kind_conflict_rejected(self, registry):
        registry.counter("repro_clash_total")
        with pytest.raises(MetricError):
            registry.gauge("repro_clash_total")

    def test_label_conflict_rejected(self, registry):
        registry.counter("repro_lclash_total", labelnames=("a",))
        with pytest.raises(MetricError):
            registry.counter("repro_lclash_total", labelnames=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("bad-name")
        with pytest.raises(MetricError):
            registry.counter("repro_ok_total", labelnames=("bad-label",))

    def test_disabled_registry_records_nothing(self, registry):
        c = registry.counter("repro_off_total")
        h = registry.histogram("repro_off_seconds")
        g = registry.gauge("repro_off_depth")
        registry.set_enabled(False)
        c.inc()
        h.observe(1.0)
        g.set(9)
        assert c.value() == 0.0
        assert h.value()["count"] == 0
        assert g.value() == 0.0
        registry.set_enabled(True)
        c.inc()
        assert c.value() == 1.0

    def test_reset_zeroes_but_keeps_declarations(self, registry):
        c = registry.counter("repro_reset_total")
        c.inc(4)
        registry.reset()
        assert c.value() == 0.0
        assert "repro_reset_total" in registry.names()
        assert registry.counter("repro_reset_total") is c

    def test_render_text_includes_help_and_type(self, registry):
        registry.counter("repro_doc_total", "documented metric").inc()
        text = registry.render_text()
        assert "# HELP repro_doc_total documented metric" in text
        assert "# TYPE repro_doc_total counter" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self, registry):
        c = registry.counter("repro_esc_total", labelnames=("path",))
        c.inc(path='a"b\\c\nd')
        line = [ln for ln in registry.render_text().splitlines() if ln[0] != "#"][0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line

    @pytest.mark.parametrize(
        "value",
        [
            'quo"ted',
            "back\\slash",
            "new\nline",
            'all\\of"them\nat\\once"',
            "\\n",  # a literal backslash-n must NOT collide with newline
            "plain",
        ],
    )
    def test_label_value_escaping_round_trips(self, registry, value):
        """Unescaping the exposition recovers the exact original value."""
        c = registry.counter("repro_rt_total", labelnames=("v",))
        c.inc(v=value)
        line = [
            ln for ln in registry.render_text().splitlines() if ln[0] != "#"
        ][0]
        start = line.index('v="') + 3
        end = line.rindex('"')
        escaped = line[start:end]
        # the escaped form is a single physical line
        assert "\n" not in escaped
        # standard Prometheus unescaping: walk escape pairs left to right
        out, i = [], 0
        while i < len(escaped):
            if escaped[i] == "\\":
                nxt = escaped[i + 1]
                out.append({"n": "\n", '"': '"', "\\": "\\"}[nxt])
                i += 2
            else:
                out.append(escaped[i])
                i += 1
        assert "".join(out) == value

    def test_distinct_raw_values_stay_distinct_escaped(self, registry):
        # "\n" (backslash, n) and a real newline must not alias to the
        # same series in the exposition
        c = registry.counter("repro_alias_total", labelnames=("v",))
        c.inc(v="\\n")
        c.inc(v="\n")
        lines = [
            ln for ln in registry.render_text().splitlines() if ln[0] != "#"
        ]
        assert len(lines) == 2
        assert 'v="\\\\n"' in "\n".join(lines)
        assert 'v="\\n"' in "\n".join(lines)

    def test_snapshot_is_json_trivial(self, registry):
        registry.counter("repro_snap_total", "h", ("kind",)).inc(kind="x")
        registry.histogram("repro_snap_seconds", buckets=(1.0,)).observe(0.2)
        snap = registry.snapshot()
        json.dumps(snap)  # must round-trip
        assert snap["repro_snap_total"]["type"] == "counter"
        assert snap["repro_snap_total"]["values"] == [
            {"labels": {"kind": "x"}, "value": 1.0}
        ]
        assert snap["repro_snap_seconds"]["values"][0]["count"] == 1
