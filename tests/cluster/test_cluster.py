"""Integration tests of repro.cluster: daemons, coordinator, remote backend.

Workers run in-process (each :class:`WorkerDaemon` owns a real TCP
listener on localhost), so the full wire protocol is exercised without
subprocess spawn latency — and a "killed" worker is just a daemon whose
sockets are severed abruptly, which the coordinator sees exactly as a
SIGKILLed process.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.cache import ParseCache
from repro.cluster.backend import RemoteBackend, worker_spec_for
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.protocol import PROTOCOL_VERSION, MessageChannel, WorkerSpec
from repro.cluster.worker import WorkerDaemon
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.base import Parser, ParserCost
from repro.parsers.registry import default_registry
from repro.pipeline import ParsePipeline, request_for_documents
from repro.pipeline.backends import BackendError, create_backend, normalize_backend_spec


class TortoiseParser(Parser):
    """Deterministic, slow-enough-to-interrupt parser double."""

    name = "tortoise"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.001)

    def __init__(self, sleep_seconds: float = 0.03) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:p{i}" for i in range(document.n_pages)]


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def corpus_30():
    return build_corpus(CorpusConfig(n_documents=30, seed=11, min_pages=1, max_pages=2))


def start_workers(n: int, **kwargs) -> list[WorkerDaemon]:
    return [
        WorkerDaemon(name=f"test-worker-{i}", **kwargs).start() for i in range(n)
    ]


def addresses_of(workers: list[WorkerDaemon]) -> str:
    return ",".join(worker.address for worker in workers)


def tortoise_pipeline(registry, sleep_seconds: float = 0.03) -> ParsePipeline:
    pipeline = ParsePipeline(registry)
    pipeline.engines["tortoise"] = TortoiseParser(sleep_seconds)
    return pipeline


# ---------------------------------------------------------------------- #
# Registry / resolution / laziness
# ---------------------------------------------------------------------- #
class TestRemoteRegistration:
    def test_resolves_through_create_backend(self):
        backend = create_backend("remote", {"workers": "127.0.0.1:9101"})
        assert isinstance(backend, RemoteBackend)
        assert backend.addresses == ["127.0.0.1:9101"]
        backend.close()  # never connected; must not raise

    def test_normalize_passes_remote_through(self):
        name, options = normalize_backend_spec(
            "remote", {"workers": "127.0.0.1:9101,127.0.0.1:9102", "window": 3}
        )
        assert name == "remote"
        assert options["window"] == 3

    def test_request_validates_remote_spec_eagerly(self):
        from repro.pipeline import ParseRequest

        request = ParseRequest(
            backend="remote", backend_options={"workers": "127.0.0.1:9101"}
        )
        assert request.resolved_backend()[0] == "remote"

    @pytest.mark.parametrize(
        "options,match",
        [
            ({}, "worker addresses"),
            ({"workers": ""}, "at least one"),
            ({"workers": "no-port"}, "host:port"),
            ({"workers": "127.0.0.1:9101", "window": 0}, "window"),
            ({"workers": "127.0.0.1:9101", "placement": "modulo"}, "placement"),
        ],
    )
    def test_bad_options_fail_at_construction(self, options, match):
        with pytest.raises(ValueError, match=match):
            create_backend("remote", options)

    def test_import_repro_does_not_import_cluster(self):
        code = (
            "import sys, repro, repro.pipeline\n"
            "from repro.pipeline import ParseRequest\n"
            "ParseRequest()\n"
            "from repro.pipeline.backends import backend_names\n"
            "assert 'remote' in backend_names()\n"
            "bad = [m for m in sys.modules if m.startswith('repro.cluster')]\n"
            "assert not bad, f'cluster imported on the serial path: {bad}'\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=_subprocess_env()
        )

    def test_closure_work_unit_rejected_with_guidance(self):
        with pytest.raises(BackendError, match="rebuild by name"):
            worker_spec_for(lambda batch: batch)


def _subprocess_env():
    import os
    from pathlib import Path

    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


# ---------------------------------------------------------------------- #
# Worker daemon protocol behaviour (raw channel)
# ---------------------------------------------------------------------- #
def dial(daemon: WorkerDaemon) -> MessageChannel:
    sock = socket.create_connection(("127.0.0.1", daemon.port), timeout=5)
    return MessageChannel(sock)


def handshake(channel: MessageChannel) -> dict:
    channel.send(
        {"type": "hello", "protocol": PROTOCOL_VERSION, "heartbeat_interval": 30.0}
    )
    ack = channel.recv()
    assert ack is not None and ack["type"] == "hello_ack"
    return ack


def recv_skipping_heartbeats(channel: MessageChannel) -> dict:
    while True:
        message = channel.recv()
        assert message is not None, "worker closed the connection unexpectedly"
        if message["type"] != "heartbeat":
            return message


class TestWorkerDaemon:
    def test_hello_ack_carries_identity_and_capabilities(self, registry):
        with WorkerDaemon(name="wd-1", pipeline=ParsePipeline(registry)) as daemon:
            channel = dial(daemon)
            ack = handshake(channel)
            assert ack["worker_id"] == "wd-1"
            assert ack["protocol"] == PROTOCOL_VERSION
            assert ack["capabilities"]["cache"] is False
            channel.close()

    def test_protocol_version_mismatch_refused(self, registry):
        with WorkerDaemon(pipeline=ParsePipeline(registry)) as daemon:
            channel = dial(daemon)
            channel.send({"type": "hello", "protocol": 999})
            reply = channel.recv()
            assert reply["type"] == "error"
            assert "version mismatch" in reply["message"]
            channel.close()

    def test_non_hello_first_message_refused(self, registry):
        with WorkerDaemon(pipeline=ParsePipeline(registry)) as daemon:
            channel = dial(daemon)
            channel.send({"type": "submit_shard", "shard_id": "s0"})
            reply = channel.recv()
            assert reply["type"] == "error"
            channel.close()

    def test_unknown_parser_yields_shard_error(self, registry, corpus_30):
        from repro.cluster.coordinator import _Shard  # reuse hash computation

        with WorkerDaemon(pipeline=ParsePipeline(registry)) as daemon:
            channel = dial(daemon)
            handshake(channel)
            spec = WorkerSpec(parser="no-such-parser", fingerprint="f")
            shard = _Shard("s0", spec, [corpus_30.documents[0]])
            channel.send(_submit_message(shard, with_payloads=True))
            reply = recv_skipping_heartbeats(channel)
            assert reply["type"] == "shard_error"
            assert reply["code"] == "unknown_parser"
            channel.close()

    def test_fingerprint_mismatch_refused(self, registry, corpus_30):
        from repro.cluster.coordinator import _Shard

        with WorkerDaemon(pipeline=ParsePipeline(registry)) as daemon:
            channel = dial(daemon)
            handshake(channel)
            spec = WorkerSpec(parser="pymupdf", fingerprint="definitely-wrong")
            shard = _Shard("s0", spec, [corpus_30.documents[0]])
            channel.send(_submit_message(shard, with_payloads=True))
            reply = recv_skipping_heartbeats(channel)
            assert reply["type"] == "shard_error"
            assert reply["code"] == "fingerprint_mismatch"
            channel.close()

    def test_hash_only_shard_triggers_need_then_runs(self, registry, corpus_30):
        from repro.cluster.coordinator import _Shard
        from repro.documents.simpdf import document_to_dict

        parser = registry.get("pymupdf")
        spec = WorkerSpec(parser="pymupdf", fingerprint=parser.config_fingerprint())
        documents = list(corpus_30.documents[:3])
        with WorkerDaemon(pipeline=ParsePipeline(registry)) as daemon:
            channel = dial(daemon)
            handshake(channel)
            shard = _Shard("s7", spec, documents)
            channel.send(_submit_message(shard, with_payloads=False))
            need = recv_skipping_heartbeats(channel)
            assert need["type"] == "shard_need"
            assert sorted(need["need"]) == sorted(shard.content_hashes)
            channel.send(
                {
                    "type": "doc_data",
                    "shard_id": "s7",
                    "docs": [
                        {
                            "doc_id": document.doc_id,
                            "content_hash": content_hash,
                            "payload": document_to_dict(document),
                        }
                        for document, content_hash in zip(
                            documents, shard.content_hashes
                        )
                    ],
                }
            )
            result = recv_skipping_heartbeats(channel)
            assert result["type"] == "batch_result"
            assert [r["doc_id"] for r in result["results"]] == [
                document.doc_id for document in documents
            ]
            expected = parser.parse_many(documents)
            assert [r["page_texts"] for r in result["results"]] == [
                r.page_texts for r in expected
            ]
            channel.close()


def _submit_message(shard, with_payloads: bool) -> dict:
    from repro.documents.simpdf import document_to_dict

    docs = []
    for document, content_hash in zip(shard.documents, shard.content_hashes):
        descriptor = {"doc_id": document.doc_id, "content_hash": content_hash}
        if with_payloads:
            descriptor["payload"] = document_to_dict(document)
        docs.append(descriptor)
    return {
        "type": "submit_shard",
        "shard_id": shard.shard_id,
        "spec": shard.spec.to_json_dict(),
        "docs": docs,
    }


# ---------------------------------------------------------------------- #
# End-to-end execution on the remote backend
# ---------------------------------------------------------------------- #
class TestRemoteExecution:
    def test_matches_serial_and_reports_cluster_telemetry(self, registry, corpus_30):
        documents = list(corpus_30)
        workers = start_workers(2, pipeline=ParsePipeline(registry))
        try:
            remote = ParsePipeline(registry).run(
                request_for_documents(
                    "pymupdf",
                    documents,
                    batch_size=5,
                    backend="remote",
                    backend_options={"workers": addresses_of(workers)},
                )
            )
        finally:
            for worker in workers:
                worker.stop()
        serial = ParsePipeline(registry).run(
            request_for_documents("pymupdf", documents, batch_size=5)
        )
        assert [r.to_json_dict() for r in remote.results] == [
            r.to_json_dict() for r in serial.results
        ]
        execution = remote.execution
        assert execution.backend == "remote"
        assert execution.workers == 2
        assert execution.batches_completed == execution.batches_dispatched == 6
        extra = execution.extra
        assert extra["cluster_workers_seen"] == 2
        assert extra["cluster_workers_lost"] == 0
        assert extra["cluster_shards_reassigned"] == 0
        assert extra["cluster_bytes_sent"] > 0
        assert extra["cluster_bytes_received"] > 0

    def test_warm_worker_caches_skip_retransfer_and_reparse(
        self, registry, corpus_30
    ):
        documents = list(corpus_30)
        workers = start_workers(
            2, pipeline=ParsePipeline(registry), cache=ParseCache()
        )
        try:
            def run():
                return ParsePipeline(registry).run(
                    request_for_documents(
                        "pymupdf",
                        documents,
                        batch_size=5,
                        backend="remote",
                        backend_options={"workers": addresses_of(workers)},
                    )
                )

            cold = run()
            warm = run()
        finally:
            for worker in workers:
                worker.stop()
        cold_extra, warm_extra = cold.execution.extra, warm.execution.extra
        assert cold_extra["cluster_remote_cache_misses"] == len(documents)
        # Second run: every document is served from the workers' caches and
        # no payload crosses the wire again.
        assert warm_extra["cluster_remote_cache_hits"] == len(documents)
        assert warm_extra["cluster_doc_payloads_sent"] == 0
        assert warm_extra["cluster_bytes_sent"] < cold_extra["cluster_bytes_sent"] / 10
        assert [r.to_json_dict() for r in warm.results] == [
            r.to_json_dict() for r in cold.results
        ]

    def test_rendezvous_placement_is_stable_across_runs(self, registry, corpus_30):
        documents = list(corpus_30)
        workers = start_workers(2, pipeline=ParsePipeline(registry))
        try:
            def run():
                return ParsePipeline(registry).run(
                    request_for_documents(
                        "pymupdf",
                        documents,
                        batch_size=5,
                        backend="remote",
                        backend_options={"workers": addresses_of(workers)},
                    )
                )

            run()
            first = [worker.counters["docs_parsed"] for worker in workers]
            assert sum(first) == len(documents)
            run()
            second = [
                worker.counters["docs_parsed"] - parsed
                for worker, parsed in zip(workers, first)
            ]
        finally:
            for worker in workers:
                worker.stop()
        # Same corpus, same batches, same worker identities → every shard
        # lands on the same worker again.
        assert second == first

    def test_balanced_placement_completes(self, registry, corpus_30):
        documents = list(corpus_30)
        workers = start_workers(2, pipeline=ParsePipeline(registry))
        try:
            report = ParsePipeline(registry).run(
                request_for_documents(
                    "pymupdf",
                    documents,
                    batch_size=5,
                    backend="remote",
                    backend_options={
                        "workers": addresses_of(workers),
                        "placement": "balanced",
                    },
                )
            )
        finally:
            for worker in workers:
                worker.stop()
        assert report.n_succeeded == len(documents)
        assert report.execution.extra["cluster_placement"] == "balanced"

    def test_oversized_shard_fails_alone_without_killing_workers(
        self, registry, corpus_30, monkeypatch
    ):
        from repro.cluster import protocol

        from repro.utils import wire

        monkeypatch.setattr(wire, "MAX_MESSAGE_BYTES", 64 * 1024)
        workers = start_workers(2, pipeline=ParsePipeline(registry))
        backend = create_backend("remote", {"workers": addresses_of(workers)})
        try:
            stub = backend.wrap_inner(registry.get("pymupdf").parse_with_telemetry)
            with pytest.raises(BackendError, match="protocol limit"):
                stub(list(corpus_30)[:20])  # one shard too fat for the wire
            # The refusal happened before any bytes were written: the
            # cluster survives and a reasonable shard still runs.
            results, _ = stub(list(corpus_30)[:1])
            assert len(results) == 1
            stats = backend.stats()
            assert stats.extra["cluster_workers_lost"] == 0
            assert stats.extra["cluster_shards_failed"] == 1
        finally:
            backend.close()
            for worker in workers:
                worker.stop()

    def test_no_reachable_workers_raises_backend_error(self, registry, corpus_30):
        # A port from the dynamic range with nothing listening on it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(BackendError, match="no cluster workers reachable"):
            ParsePipeline(registry).run(
                request_for_documents(
                    "pymupdf",
                    list(corpus_30)[:4],
                    backend="remote",
                    backend_options={
                        "workers": f"127.0.0.1:{free_port}",
                        "connect_timeout": 1.0,
                    },
                )
            )

    def test_duplicate_worker_names_rejected(self, registry, corpus_30):
        workers = [
            WorkerDaemon(name="twin", pipeline=ParsePipeline(registry)).start()
            for _ in range(2)
        ]
        try:
            backend = create_backend(
                "remote", {"workers": addresses_of(workers), "connect_timeout": 2.0}
            )
            coordinator = ClusterCoordinator(
                backend.addresses, connect_timeout=2.0
            ).connect()
            try:
                assert len(coordinator._links) == 1  # the twin was refused
            finally:
                coordinator.close()
                backend.close()
        finally:
            for worker in workers:
                worker.stop()


# ---------------------------------------------------------------------- #
# Fault tolerance
# ---------------------------------------------------------------------- #
class TestFaultTolerance:
    def test_killed_worker_mid_run_loses_and_duplicates_nothing(
        self, registry, corpus_30
    ):
        """The acceptance scenario: kill one worker mid-run.

        The run must complete on the survivor with exactly-once results
        (no lost documents, no duplicates, input order preserved) and
        ``completed + cancelled == dispatched`` accounting.  Not timing
        sensitive: the kill waits until the victim has work in hand, and
        death is detected by socket EOF, not by heartbeat expiry.
        """
        documents = list(corpus_30)
        workers = start_workers(2, pipeline=tortoise_pipeline(registry))
        pipeline = tortoise_pipeline(registry)
        request = request_for_documents(
            "tortoise",
            documents,
            batch_size=3,
            backend="remote",
            backend_options={"workers": addresses_of(workers)},
        )
        outcome: dict = {}

        def run():
            outcome["report"] = pipeline.run(request)

        thread = threading.Thread(target=run)
        thread.start()
        victim = workers[1]
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if victim.counters["docs_received"] or victim.counters["shards_completed"]:
                break
            time.sleep(0.005)
        else:
            pytest.fail("the victim worker never received a shard")
        victim.kill()
        thread.join(timeout=60)
        assert not thread.is_alive(), "run hung after the worker was killed"
        workers[0].stop()
        report = outcome["report"]
        assert report.n_succeeded == len(documents)
        assert [r.doc_id for r in report.results] == [d.doc_id for d in documents]
        execution = report.execution
        assert (
            execution.batches_completed + execution.batches_cancelled
            == execution.batches_dispatched
        )
        extra = execution.extra
        assert extra["cluster_workers_lost"] == 1
        assert extra["cluster_shards_reassigned"] >= 1
        # Exactly-once: every shard completed exactly one time from the
        # caller's point of view (late duplicates, if any, were dropped).
        assert extra["cluster_shards_completed"] == execution.batches_dispatched

    def test_death_detected_twice_requeues_once(self, registry, corpus_30):
        """Regression: a worker dying *between* heartbeat timeout and EOF.

        Both detection paths call ``_on_worker_death``; the ``link.alive``
        flip inside ``_reap_link_locked`` must make the second (and any
        later, e.g. the reader's EOF) a no-op — the orphaned shards are
        re-placed exactly once, never double-requeued.
        """
        pipeline = tortoise_pipeline(registry, 0.05)
        workers = start_workers(2, pipeline=tortoise_pipeline(registry, 0.05))
        spec = worker_spec_for(pipeline.engines["tortoise"].parse_with_telemetry)
        coordinator = ClusterCoordinator(
            [w.address for w in workers], window=1
        ).connect()
        try:
            documents = list(corpus_30)[:16]
            futures = [
                coordinator.submit(spec, documents[i : i + 2])
                for i in range(0, len(documents), 2)
            ]
            victim_link = next(
                link
                for link in coordinator._links
                if link.backlog  # it holds shards to orphan
            )
            # Simulate the race: heartbeat-timeout path fires, then the
            # EOF path lands for the same link a moment later.
            coordinator._on_worker_death(victim_link, "no heartbeat for 15.0s")
            after_first = coordinator.counters["shards_reassigned"]
            assert after_first >= 1
            coordinator._on_worker_death(victim_link, "connection closed by worker")
            assert coordinator.counters["shards_reassigned"] == after_first
            assert coordinator.counters["workers_lost"] == 1
            # Every future still resolves exactly once on the survivor.
            outputs = [future.result(timeout=60) for future in futures]
            assert all(len(results) == 2 for results, _ in outputs)
            assert (
                coordinator.counters["shards_completed"]
                == coordinator.counters["shards_submitted"]
            )
        finally:
            coordinator.close()
            for worker in workers:
                worker.stop()

    def test_losing_every_worker_fails_the_run_not_hangs(self, registry, corpus_30):
        documents = list(corpus_30)[:12]
        workers = start_workers(1, pipeline=tortoise_pipeline(registry, 0.05))
        pipeline = tortoise_pipeline(registry, 0.05)
        request = request_for_documents(
            "tortoise",
            documents,
            batch_size=3,
            backend="remote",
            backend_options={"workers": addresses_of(workers)},
        )
        outcome: dict = {}

        def run():
            try:
                pipeline.run(request)
            except BaseException as exc:  # noqa: BLE001 - recorded for asserts
                outcome["error"] = exc

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if workers[0].counters["docs_received"]:
                break
            time.sleep(0.005)
        workers[0].kill()
        thread.join(timeout=60)
        assert not thread.is_alive(), "run hung after the last worker died"
        assert isinstance(outcome.get("error"), BackendError)
        assert "no alive cluster workers" in str(outcome["error"])


# ---------------------------------------------------------------------- #
# Shared cache directories
# ---------------------------------------------------------------------- #
class TestSharedCacheDir:
    def test_workers_sharing_one_cache_dir_merge_additively(
        self, registry, corpus_30, tmp_path
    ):
        """Several workers on one ``--cache-dir`` are safe (merge-on-flush).

        Two workers parse disjoint halves of the corpus into caches backed
        by the *same* directory; both flush.  If a flush clobbered the
        other writer's entries, the warm re-run below would miss — instead
        every document must hit, from fresh worker processes with fresh
        cache instances over the same directory.
        """
        shared = tmp_path / "shared-cache"
        documents = list(corpus_30)

        def run(workers):
            return ParsePipeline(registry).run(
                request_for_documents(
                    "pymupdf",
                    documents,
                    batch_size=5,
                    backend="remote",
                    backend_options={"workers": addresses_of(workers)},
                )
            )

        cold_caches = [ParseCache(shared) for _ in range(2)]
        workers = [
            WorkerDaemon(
                name=f"shared-{i}", pipeline=ParsePipeline(registry), cache=cache
            ).start()
            for i, cache in enumerate(cold_caches)
        ]
        try:
            cold = run(workers)
        finally:
            for worker in workers:
                worker.stop()
        # Both parsed a share of the corpus...
        parsed = [worker.counters["docs_parsed"] for worker in workers]
        assert sum(parsed) == len(documents)
        assert all(count > 0 for count in parsed)
        # ...and both flush into the same directory without clobbering.
        for cache in cold_caches:
            cache.flush()

        warm_caches = [ParseCache(shared) for _ in range(2)]
        workers = [
            WorkerDaemon(
                name=f"shared-{i}", pipeline=ParsePipeline(registry), cache=cache
            ).start()
            for i, cache in enumerate(warm_caches)
        ]
        try:
            warm = run(workers)
        finally:
            for worker in workers:
                worker.stop()
        assert warm.execution.extra["cluster_remote_cache_hits"] == len(documents)
        assert warm.execution.extra["cluster_remote_cache_misses"] == 0
        assert [r.to_json_dict() for r in warm.results] == [
            r.to_json_dict() for r in cold.results
        ]


# ---------------------------------------------------------------------- #
# The service and the CLI on top of the cluster
# ---------------------------------------------------------------------- #
class TestServiceAndCli:
    def test_parse_service_runs_on_a_remote_backend(self, registry, corpus_30):
        from repro.serve import ParseService, ServiceConfig

        documents = tuple(corpus_30)
        workers = start_workers(2, pipeline=ParsePipeline(registry))
        try:
            config = ServiceConfig(
                backend="remote",
                backend_options={"workers": addresses_of(workers)},
                max_active=3,
            )
            with ParseService(
                pipeline=ParsePipeline(registry, cache=ParseCache()), config=config
            ) as service:
                tickets = [
                    service.submit(
                        request_for_documents(
                            "pymupdf", documents, batch_size=5, cache="readwrite"
                        ),
                        client=f"client-{i}",
                    )
                    for i in range(3)
                ]
                reports = [ticket.result(timeout=120) for ticket in tickets]
        finally:
            for worker in workers:
                worker.stop()
        baseline = [
            r.to_json_dict() for r in reports[0].results
        ]
        for report in reports:
            assert report.n_succeeded == len(documents)
            assert [r.to_json_dict() for r in report.results] == baseline
            assert report.execution.backend == "remote"
        # One shared cache in front of one shared cluster: the corpus is
        # parsed once, later requests hit or coalesce.
        assert sum(r.cache.misses for r in reports) == len(documents)

    def test_cli_cluster_joins_existing_workers(self, registry, capsys):
        import json

        from repro.cli import main

        workers = start_workers(2, pipeline=ParsePipeline(registry))
        try:
            exit_code = main(
                [
                    "cluster",
                    "--workers-at",
                    addresses_of(workers),
                    "--documents",
                    "12",
                    "--batch-size",
                    "4",
                    "--seed",
                    "9",
                ]
            )
        finally:
            for worker in workers:
                worker.stop()
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_succeeded"] == 12
        assert payload["cluster"]["workers_seen"] == 2
        assert payload["cluster"]["shards_reassigned"] == 0

    def test_cli_cluster_unreachable_workers_exit_cleanly(self, capsys):
        from repro.cli import main

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(SystemExit, match="no cluster workers reachable"):
            main(
                [
                    "cluster",
                    "--workers-at",
                    f"127.0.0.1:{free_port}",
                    "--documents",
                    "4",
                ]
            )
