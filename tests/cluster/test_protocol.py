"""Tests of the cluster wire protocol: framing, specs, and placement."""

from __future__ import annotations

import socket

import pytest

from repro.cluster import protocol
from repro.cluster.protocol import (
    MessageChannel,
    ProtocolError,
    WorkerSpec,
    encode_message,
    rank_workers,
    shard_placement_key,
)
from repro.core.engine import RoutingDecision
from repro.parsers.base import ParseResult


@pytest.fixture()
def channel_pair():
    left_sock, right_sock = socket.socketpair()
    left = MessageChannel(left_sock)
    right = MessageChannel(right_sock)
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_round_trip(self, channel_pair):
        left, right = channel_pair
        message = {"type": "hello", "protocol": 1, "payload": {"α": "ünïcode"}}
        left.send(message)
        assert right.recv() == message

    def test_many_messages_in_order(self, channel_pair):
        left, right = channel_pair
        for i in range(50):
            left.send({"type": "heartbeat", "seq": i})
        received = [right.recv()["seq"] for _ in range(50)]
        assert received == list(range(50))

    def test_byte_counters_match(self, channel_pair):
        left, right = channel_pair
        left.send({"type": "hello"})
        right.recv()
        assert left.bytes_sent == right.bytes_received > 0

    def test_clean_eof_returns_none(self, channel_pair):
        left, right = channel_pair
        left.close()
        assert right.recv() is None

    def test_bad_length_prefix_raises(self, channel_pair):
        left, right = channel_pair
        left._sock.sendall(b"not-a-number\n{}\n")
        with pytest.raises(ProtocolError, match="length prefix"):
            right.recv()

    def test_truncated_body_raises(self, channel_pair):
        left, right = channel_pair
        frame = encode_message({"type": "hello", "blob": "x" * 100})
        left._sock.sendall(frame[:-30])
        left.close()
        with pytest.raises(ProtocolError, match="truncated"):
            right.recv()

    def test_oversized_length_rejected(self, channel_pair):
        left, right = channel_pair
        left._sock.sendall(b"999999999999\n")
        with pytest.raises(ProtocolError, match="out of bounds"):
            right.recv()

    def test_non_object_body_rejected(self, channel_pair):
        left, right = channel_pair
        body = b"[1, 2, 3]\n"
        left._sock.sendall(str(len(body)).encode() + b"\n" + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            right.recv()

    def test_send_after_close_raises(self, channel_pair):
        left, _ = channel_pair
        left.close()
        with pytest.raises(ProtocolError, match="closed"):
            left.send({"type": "hello"})

    def test_oversized_message_refused_at_send_time(self, channel_pair, monkeypatch):
        from repro.cluster.protocol import MessageTooLarge
        from repro.utils import wire

        # The framing lives in repro.utils.wire (cluster.protocol re-exports
        # it); channels read the module default at call time, so patch there.
        monkeypatch.setattr(wire, "MAX_MESSAGE_BYTES", 256)
        left, right = channel_pair
        with pytest.raises(MessageTooLarge, match="smaller batch_size"):
            left.send({"type": "submit_shard", "blob": "x" * 300})
        # Nothing hit the wire: the connection is still usable.
        left.send({"type": "heartbeat"})
        assert right.recv() == {"type": "heartbeat"}


class TestSpecAndResults:
    def test_worker_spec_round_trip(self):
        spec = WorkerSpec(parser="nougat", fingerprint="abc123", alpha=0.07, cache="read")
        assert WorkerSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_worker_spec_none_alpha_survives(self):
        spec = WorkerSpec(parser="pymupdf", fingerprint="f")
        rebuilt = WorkerSpec.from_json_dict(spec.to_json_dict())
        assert rebuilt.alpha is None

    def test_batch_result_round_trip(self):
        results = [
            ParseResult(parser_name="pymupdf", doc_id="d1", page_texts=["a", "b"]),
            ParseResult(
                parser_name="nougat",
                doc_id="d2",
                page_texts=[""],
                succeeded=False,
                error="boom",
            ),
        ]
        decisions = [
            RoutingDecision(
                doc_id="d2",
                chosen_parser="nougat",
                stage="routed_high_quality",
                predicted_improvement=0.4,
            )
        ]
        message = protocol.batch_result_message(
            "s000001", results, decisions, worker_id="w", elapsed_seconds=0.5
        )
        rebuilt_results, rebuilt_decisions = protocol.parse_batch_result(message)
        assert [r.to_json_dict() for r in rebuilt_results] == [
            r.to_json_dict() for r in results
        ]
        assert rebuilt_decisions == decisions


class TestPlacement:
    def test_placement_key_is_stable_and_order_sensitive(self):
        key = shard_placement_key(["h1", "h2", "h3"])
        assert key == shard_placement_key(["h1", "h2", "h3"])
        assert key != shard_placement_key(["h3", "h2", "h1"])

    def test_rank_workers_deterministic(self):
        workers = ["alpha", "beta", "gamma"]
        key = shard_placement_key(["h1"])
        assert rank_workers(key, workers) == rank_workers(key, list(reversed(workers)))

    def test_rank_workers_spreads_shards(self):
        workers = ["alpha", "beta", "gamma", "delta"]
        tops = {
            rank_workers(shard_placement_key([f"hash-{i}"]), workers)[0]
            for i in range(64)
        }
        assert tops == set(workers)  # no worker is systematically ignored

    def test_removing_a_worker_only_moves_its_own_shards(self):
        # The rendezvous property the coordinator's cache affinity relies
        # on: shards whose preferred worker survives keep it.
        workers = ["alpha", "beta", "gamma", "delta"]
        survivors = [worker for worker in workers if worker != "delta"]
        for i in range(64):
            key = shard_placement_key([f"hash-{i}"])
            before = rank_workers(key, workers)[0]
            after = rank_workers(key, survivors)[0]
            if before != "delta":
                assert after == before
