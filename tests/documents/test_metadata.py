"""Tests for metadata sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.documents import lexicon
from repro.documents.metadata import (
    DocumentMetadata,
    make_title,
    sample_domain,
    sample_metadata,
    sample_producer,
    sample_publisher,
    sample_year,
)


class TestSampling:
    def test_metadata_fields_valid(self):
        rng = np.random.default_rng(11)
        for _ in range(30):
            meta = sample_metadata(rng, n_pages=8)
            assert meta.publisher in lexicon.PUBLISHERS
            assert meta.domain in lexicon.DOMAINS
            assert meta.subcategory in lexicon.SUBCATEGORIES[meta.domain]
            assert meta.producer in lexicon.PRODUCERS
            assert meta.pdf_format in lexicon.PDF_FORMATS
            assert 1990 <= meta.year <= 2026
            assert meta.n_pages == 8
            assert 3 <= len(meta.keywords) <= 6

    def test_publisher_domain_affinity(self):
        rng = np.random.default_rng(2)
        domains = [sample_domain(rng, "biorxiv") for _ in range(300)]
        assert domains.count("biology") > 100

    def test_old_documents_more_likely_scanner_produced(self):
        rng = np.random.default_rng(3)
        old = [sample_producer(rng, 1998) for _ in range(400)]
        new = [sample_producer(rng, 2023) for _ in range(400)]
        assert old.count("scanner_firmware") > new.count("scanner_firmware")

    def test_year_mostly_recent(self):
        rng = np.random.default_rng(4)
        years = [sample_year(rng) for _ in range(500)]
        recent = sum(1 for y in years if y >= 2019)
        assert recent > 250

    def test_title_nonempty_and_capitalised(self):
        rng = np.random.default_rng(5)
        title = make_title(rng, "physics")
        assert title[0].isupper()
        assert len(title.split()) >= 4

    def test_publisher_distribution_uses_all(self):
        rng = np.random.default_rng(6)
        publishers = {sample_publisher(rng) for _ in range(500)}
        assert publishers == set(lexicon.PUBLISHERS)


class TestRoundTrip:
    def test_to_from_dict(self):
        rng = np.random.default_rng(8)
        meta = sample_metadata(rng, n_pages=5)
        restored = DocumentMetadata.from_dict(meta.to_dict())
        assert restored == meta
