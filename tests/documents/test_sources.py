"""Tests of the pluggable document-source protocol and its registry."""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.documents.corpus import CorpusConfig
from repro.documents.document import DocumentType
from repro.documents.sources import (
    CrawlDumpSource,
    DocumentSource,
    ExplicitSource,
    HtmlDirSource,
    MarkdownDirSource,
    SourceSpec,
    SyntheticSource,
    create_source,
    parse_source_arg,
    source_kinds,
    source_names,
    validate_source_spec,
)
from repro.documents.textgen import TextGenConfig

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "ingest"


class TestHtmlDirSource:
    def test_streams_in_stable_order_with_relative_doc_ids(self):
        source = HtmlDirSource(FIXTURES / "html")
        docs = list(source.iter_documents())
        assert [d.doc_id for d in docs] == ["alpha", "sub/beta"]
        assert [d.doc_id for d in source.iter_documents()] == [d.doc_id for d in docs]
        assert all(d.doc_type == DocumentType.HTML.value for d in docs)
        assert source.doc_type is DocumentType.HTML
        assert source.count_hint() == 2

    def test_extraction_keeps_structure_and_drops_script_style(self):
        (doc,) = [
            d
            for d in HtmlDirSource(FIXTURES / "html").iter_documents()
            if d.doc_id == "alpha"
        ]
        text = doc.text_layer.text()
        assert "Adaptive Parsing of Web Corpora" in text
        assert "Headings become section markers." in text
        assert "should never appear" not in text
        assert "font-family" not in text
        assert doc.metadata.title == "Adaptive Parsing of Web Corpora"

    def test_missing_directory_fails_at_iteration_not_construction(self, tmp_path):
        source = HtmlDirSource(tmp_path / "nowhere")
        assert source.count_hint() is None
        with pytest.raises(FileNotFoundError, match="does not exist"):
            list(source.iter_documents())

    def test_fingerprint_tracks_file_edits(self, tmp_path):
        shutil.copytree(FIXTURES / "html", tmp_path / "html")
        source = HtmlDirSource(tmp_path / "html")
        before = source.fingerprint()
        assert before == source.fingerprint()  # stable while untouched
        page = tmp_path / "html" / "alpha.html"
        page.write_text(page.read_text() + "<p>appended paragraph</p>\n")
        assert source.fingerprint() != before

    def test_spec_round_trip_rebuilds_an_equal_source(self):
        source = HtmlDirSource(FIXTURES / "html")
        spec = source.spec()
        assert spec.kind == "html-dir"
        assert spec.options == {"path": str(FIXTURES / "html")}  # default glob elided
        rebuilt = create_source(SourceSpec.from_json_dict(spec.to_json_dict()))
        assert rebuilt == source
        assert hash(rebuilt) == hash(source)

    def test_non_default_glob_survives_the_spec(self):
        source = HtmlDirSource(FIXTURES / "html", glob="*.html")
        spec = source.spec()
        assert spec.options["glob"] == "*.html"
        rebuilt = create_source(spec)
        assert [d.doc_id for d in rebuilt.iter_documents()] == ["alpha"]


class TestMarkdownDirSource:
    def test_streams_markdown_documents(self):
        source = MarkdownDirSource(FIXTURES / "markdown")
        docs = list(source.iter_documents())
        assert [d.doc_id for d in docs] == ["appendix", "notes"]
        assert all(d.doc_type == DocumentType.MARKDOWN.value for d in docs)
        assert source.doc_type is DocumentType.MARKDOWN
        (notes,) = [d for d in docs if d.doc_id == "notes"]
        assert notes.metadata.title == "Ingestion Notes"
        assert "one list item" in notes.text_layer.text()


class TestCrawlDumpSource:
    def test_mirrored_page_deduplicated_across_domains(self):
        source = CrawlDumpSource(FIXTURES / "crawl")
        docs = list(source.iter_documents())
        # Three files on disk, but the site-b mirror of site-a's page drops.
        assert len(source.paths()) == 3
        assert [d.doc_id for d in docs] == [
            "site-a.example/page1",
            "site-b.example/unique",
        ]

    def test_dedup_false_keeps_the_mirror(self):
        source = CrawlDumpSource(FIXTURES / "crawl", dedup=False)
        assert [d.doc_id for d in source.iter_documents()] == [
            "site-a.example/page1",
            "site-b.example/mirror",
            "site-b.example/unique",
        ]

    def test_domain_becomes_publisher_and_types_are_per_file(self):
        docs = {
            d.doc_id: d
            for d in CrawlDumpSource(FIXTURES / "crawl", dedup=False).iter_documents()
        }
        assert docs["site-a.example/page1"].metadata.publisher == "site-a.example"
        assert docs["site-b.example/unique"].metadata.publisher == "site-b.example"
        assert docs["site-a.example/page1"].doc_type == DocumentType.HTML.value
        assert docs["site-b.example/unique"].doc_type == DocumentType.MARKDOWN.value
        # Mixed formats: the source declares no single doc_type.
        assert CrawlDumpSource(FIXTURES / "crawl").doc_type is None

    def test_spec_records_only_non_default_options(self):
        assert "dedup" not in CrawlDumpSource(FIXTURES / "crawl").spec().options
        spec = CrawlDumpSource(FIXTURES / "crawl", dedup=False).spec()
        assert spec.options["dedup"] is False
        rebuilt = create_source(spec)
        assert isinstance(rebuilt, CrawlDumpSource) and rebuilt.dedup is False


class TestSyntheticAndExplicit:
    def test_synthetic_spec_is_lossless_including_textgen(self):
        config = CorpusConfig(
            n_documents=6,
            seed=9,
            min_pages=2,
            max_pages=3,
            scanned_fraction=0.5,
            textgen=TextGenConfig(min_words_per_sentence=4),
        )
        source = SyntheticSource(config)
        rebuilt = create_source(SourceSpec.from_json_dict(source.spec().to_json_dict()))
        assert isinstance(rebuilt, SyntheticSource)
        assert rebuilt.config == config
        assert rebuilt == source
        assert source.doc_type is DocumentType.PDF
        assert source.count_hint() == 6

    def test_synthetic_defaults_keep_the_spec_minimal(self):
        spec = SyntheticSource(CorpusConfig(n_documents=5, seed=3)).spec()
        assert spec.options == {"n_documents": 5, "seed": 3}

    def test_explicit_source_has_no_spec_and_infers_doc_type(self):
        pdfs = list(SyntheticSource(CorpusConfig(n_documents=2)).iter_documents())
        html = list(HtmlDirSource(FIXTURES / "html").iter_documents())
        assert ExplicitSource(pdfs).doc_type is DocumentType.PDF
        assert ExplicitSource(html).doc_type is DocumentType.HTML
        assert ExplicitSource(pdfs + html).doc_type is None  # mixed
        assert ExplicitSource(pdfs).spec() is None
        assert ExplicitSource(pdfs).count_hint() == 2
        with pytest.raises(ValueError, match="must not be empty"):
            ExplicitSource(())


class TestRegistryAndShorthand:
    def test_registry_lists_the_builtin_kinds(self):
        assert source_names() == [
            "crawl-dump",
            "html-dir",
            "markdown-dir",
            "simpdf-dir",
            "synthetic",
        ]
        assert [k.name for k in source_kinds()] == source_names()

    def test_shorthand_binds_the_primary_option(self):
        spec = parse_source_arg("synthetic:8?seed=3")
        assert spec == SourceSpec("synthetic", {"n_documents": 8, "seed": 3})
        source = create_source(spec)
        assert isinstance(source, SyntheticSource)
        assert (source.config.n_documents, source.config.seed) == (8, 3)

    def test_shorthand_coerces_booleans_but_keeps_paths_verbatim(self):
        spec = parse_source_arg("crawl-dump:dumps/2024?dedup=false")
        assert spec.options == {"path": "dumps/2024", "dedup": False}
        source = create_source(spec)
        assert isinstance(source, CrawlDumpSource) and source.dedup is False
        assert str(source.directory) == "dumps/2024"

    def test_shorthand_errors(self):
        with pytest.raises(ValueError, match="empty --source"):
            parse_source_arg("  ")
        with pytest.raises(ValueError, match="expected key=value"):
            parse_source_arg("html-dir:x?glob")
        with pytest.raises(ValueError, match="did you mean 'html-dir'"):
            parse_source_arg("html-dri:x")

    def test_validate_suggests_close_option_names(self):
        with pytest.raises(ValueError, match="did you mean 'glob'"):
            validate_source_spec(SourceSpec("html-dir", {"glbo": "*.html"}))
        with pytest.raises(ValueError, match="known:"):
            validate_source_spec(SourceSpec("no-such-kind", {}))

    def test_source_spec_json_is_strict(self):
        with pytest.raises(ValueError, match="unknown source-spec field"):
            SourceSpec.from_json_dict({"kind": "synthetic", "option": {}})
        with pytest.raises(ValueError, match="missing its 'kind'"):
            SourceSpec.from_json_dict({"options": {}})

    def test_create_source_passes_instances_through(self):
        source = HtmlDirSource(FIXTURES / "html")
        assert create_source(source) is source


class TestValueSemantics:
    def test_equality_is_kind_plus_fingerprint(self):
        a = HtmlDirSource(FIXTURES / "html")
        b = HtmlDirSource(FIXTURES / "html")
        assert a == b and hash(a) == hash(b)
        assert a != MarkdownDirSource(FIXTURES / "markdown")
        assert a.__eq__(object()) is NotImplemented

    def test_describe_reports_kind_type_and_count(self):
        info = HtmlDirSource(FIXTURES / "html").describe()
        assert info == {"kind": "html-dir", "doc_type": "html", "n_documents": 2}
        mixed = CrawlDumpSource(FIXTURES / "crawl").describe()
        assert "doc_type" not in mixed  # mixed-format source declares none

    def test_abstract_base_is_not_instantiable(self):
        with pytest.raises(TypeError):
            DocumentSource()  # iter_documents/fingerprint are abstract
