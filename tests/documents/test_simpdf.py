"""Tests for the SimPDF container format."""

from __future__ import annotations

import pytest

from repro.documents.simpdf import (
    SimPdfArchive,
    SimPdfReader,
    SimPdfWriter,
    deserialize_document,
    document_from_dict,
    document_to_dict,
    serialize_document,
)


class TestRoundTrip:
    def test_dict_round_trip(self, sample_document):
        restored = document_from_dict(document_to_dict(sample_document))
        assert restored.doc_id == sample_document.doc_id
        assert restored.ground_truth_text() == sample_document.ground_truth_text()
        assert restored.metadata == sample_document.metadata
        assert restored.text_layer.quality == sample_document.text_layer.quality
        assert restored.image_layer == sample_document.image_layer

    def test_bytes_round_trip(self, sample_document):
        blob = serialize_document(sample_document)
        assert blob.startswith(b"SIMPDF1")
        restored = deserialize_document(blob)
        assert restored.text_layer.page_texts == sample_document.text_layer.page_texts

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_document(b"NOTAPDF" + b"x" * 10)

    def test_compression_reduces_size(self, sample_document):
        import json

        raw = len(json.dumps(document_to_dict(sample_document)).encode("utf-8"))
        compressed = len(serialize_document(sample_document))
        assert compressed < raw


class TestReaderWriter:
    def test_write_and_read_directory(self, tmp_path, small_corpus):
        writer = SimPdfWriter(tmp_path / "docs")
        paths = writer.write_all(list(small_corpus)[:4])
        assert len(paths) == 4
        reader = SimPdfReader(tmp_path / "docs")
        docs = reader.read_all()
        assert {d.doc_id for d in docs} == {d.doc_id for d in list(small_corpus)[:4]}


class TestArchive:
    def test_archive_round_trip(self, tmp_path, small_corpus):
        docs = list(small_corpus)[:5]
        path = tmp_path / "corpus.simpdfarch"
        archive = SimPdfArchive.write(path, docs)
        assert len(archive) == 5
        assert archive.doc_ids() == [d.doc_id for d in docs]
        restored = archive.read(docs[2].doc_id)
        assert restored.ground_truth_text() == docs[2].ground_truth_text()

    def test_archive_iteration_order(self, tmp_path, small_corpus):
        docs = list(small_corpus)[:3]
        archive = SimPdfArchive.write(tmp_path / "a.arch", docs)
        assert [d.doc_id for d in archive] == [d.doc_id for d in docs]

    def test_archive_missing_document(self, tmp_path, small_corpus):
        archive = SimPdfArchive.write(tmp_path / "a.arch", list(small_corpus)[:2])
        with pytest.raises(KeyError):
            archive.read("does-not-exist")

    def test_archive_bad_magic(self, tmp_path):
        path = tmp_path / "bad.arch"
        path.write_bytes(b"garbage")
        with pytest.raises(ValueError):
            SimPdfArchive(path)

    def test_archive_size_reported(self, tmp_path, small_corpus):
        archive = SimPdfArchive.write(tmp_path / "a.arch", list(small_corpus)[:2])
        assert archive.size_bytes == (tmp_path / "a.arch").stat().st_size
