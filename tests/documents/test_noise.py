"""Tests for the text corruption channels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.documents import noise

SAMPLE = (
    "The gravitational force between two masses is directly proportional to the "
    "product of their masses and inversely proportional to the square of the distance."
)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestDeterminism:
    def test_same_seed_same_output(self):
        a = noise.ocr_channel(SAMPLE, 0.5, np.random.default_rng(3))
        b = noise.ocr_channel(SAMPLE, 0.5, np.random.default_rng(3))
        assert a == b


class TestIndividualChannels:
    def test_zero_rate_is_identity(self, rng):
        assert noise.inject_whitespace(SAMPLE, 0.0, rng) == SAMPLE
        assert noise.substitute_characters(SAMPLE, 0.0, rng) == SAMPLE
        assert noise.drop_words(SAMPLE, 0.0, rng) == SAMPLE
        assert noise.merge_words(SAMPLE, 0.0, rng) == SAMPLE

    def test_whitespace_injection_adds_spaces(self, rng):
        out = noise.inject_whitespace(SAMPLE, 1.0, rng)
        assert out.count(" ") > SAMPLE.count(" ")

    def test_scramble_preserves_word_boundaries(self, rng):
        out = noise.scramble_characters(SAMPLE, 1.0, rng)
        assert len(out.split(" ")) == len(SAMPLE.split(" "))

    def test_scramble_preserves_first_last_letters(self, rng):
        out = noise.scramble_characters("gravitational", 1.0, rng)
        assert out[0] == "g" and out[-1] == "l"
        assert sorted(out) == sorted("gravitational")

    def test_substitution_changes_characters(self, rng):
        out = noise.substitute_characters(SAMPLE, 0.5, rng)
        assert out != SAMPLE
        assert len(out) >= len(SAMPLE)  # confusions may expand (m -> rn)

    def test_case_corruption_changes_case_only(self, rng):
        out = noise.corrupt_case(SAMPLE, 1.0, rng)
        assert out.lower() == SAMPLE.lower()
        assert out != SAMPLE

    def test_drop_words_reduces_word_count(self, rng):
        out = noise.drop_words(SAMPLE, 0.5, rng)
        assert len(out.split()) < len(SAMPLE.split())

    def test_drop_words_never_empties_text(self, rng):
        out = noise.drop_words("single", 1.0, rng)
        assert out

    def test_merge_words_reduces_spaces(self, rng):
        out = noise.merge_words(SAMPLE, 1.0, rng)
        assert out.count(" ") < SAMPLE.count(" ")

    def test_swap_adjacent_words_preserves_multiset(self, rng):
        out = noise.swap_adjacent_words(SAMPLE, 0.8, rng)
        assert sorted(out.split()) == sorted(SAMPLE.split())

    def test_ligature_breaks(self, rng):
        out = noise.break_ligatures("the fine flow difference", 1.0, rng)
        assert "ﬁ" in out or "ﬂ" in out

    def test_hard_wrap_produces_bounded_lines(self, rng):
        out = noise.hard_wrap_lines(SAMPLE, width=30, rng=rng, hyphenate_rate=0.0)
        assert all(len(line) <= 31 for line in out.split("\n"))

    def test_scramble_layer_is_heavily_damaged(self, rng):
        out = noise.scramble_layer(SAMPLE, rng)
        matching = sum(1 for a, b in zip(SAMPLE.split(), out.split()) if a == b)
        assert matching < len(SAMPLE.split()) * 0.6


class TestOcrChannel:
    def test_severity_zero_is_nearly_clean(self, rng):
        out = noise.ocr_channel(SAMPLE, 0.0, rng)
        same = sum(1 for a, b in zip(SAMPLE.split(), out.split()) if a == b)
        assert same >= 0.85 * len(SAMPLE.split())

    def test_high_severity_degrades_more_than_low(self):
        low = noise.ocr_channel(SAMPLE, 0.1, np.random.default_rng(5))
        high = noise.ocr_channel(SAMPLE, 0.95, np.random.default_rng(5))
        low_same = sum(1 for a, b in zip(SAMPLE.split(), low.split()) if a == b)
        high_same = sum(1 for a, b in zip(SAMPLE.split(), high.split()) if a == b)
        assert high_same <= low_same

    def test_empty_text_passthrough(self, rng):
        assert noise.ocr_channel("", 0.5, rng) == ""

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=0, max_value=10**6))
    def test_output_never_empty_for_nonempty_input(self, severity, seed):
        out = noise.ocr_channel(SAMPLE, severity, np.random.default_rng(seed))
        assert out.strip()
