"""Tests for the benchmark augmentations (Tables 2 and 3 setups)."""

from __future__ import annotations

import pytest

from repro.documents.augment import (
    AugmentationConfig,
    degrade_image_layers,
    replace_text_layers_with_ocr,
    strip_text_layers,
)
from repro.documents.document import TextLayerQuality


class TestConfigValidation:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            AugmentationConfig(affected_fraction=1.2)

    def test_invalid_tool(self):
        with pytest.raises(ValueError):
            AugmentationConfig(ocr_tool="abbyy")


class TestImageDegradation:
    def test_affects_requested_fraction(self, small_corpus):
        config = AugmentationConfig(affected_fraction=0.5, seed=9)
        augmented = degrade_image_layers(small_corpus, config)
        n_scanned_before = sum(d.image_layer.is_scanned for d in small_corpus)
        n_scanned_after = sum(d.image_layer.is_scanned for d in augmented)
        assert n_scanned_after >= n_scanned_before
        assert n_scanned_after >= len(small_corpus) // 2

    def test_text_layer_untouched(self, small_corpus):
        config = AugmentationConfig(affected_fraction=1.0, seed=9)
        augmented = degrade_image_layers(small_corpus, config)
        for before, after in zip(small_corpus, augmented):
            assert before.text_layer.page_texts == after.text_layer.page_texts

    def test_ground_truth_untouched(self, small_corpus):
        augmented = degrade_image_layers(small_corpus, AugmentationConfig(affected_fraction=1.0))
        for before, after in zip(small_corpus, augmented):
            assert before.ground_truth_text() == after.ground_truth_text()

    def test_deterministic(self, small_corpus):
        config = AugmentationConfig(affected_fraction=0.3, seed=5)
        a = degrade_image_layers(small_corpus, config)
        b = degrade_image_layers(small_corpus, config)
        assert [d.image_layer.is_scanned for d in a] == [d.image_layer.is_scanned for d in b]

    def test_zero_fraction_is_identity(self, small_corpus):
        augmented = degrade_image_layers(small_corpus, AugmentationConfig(affected_fraction=0.0))
        assert [d.image_layer for d in augmented] == [d.image_layer for d in small_corpus]


class TestTextLayerReplacement:
    def test_affected_layers_marked_ocr_derived(self, small_corpus):
        config = AugmentationConfig(affected_fraction=1.0, seed=2)
        augmented = replace_text_layers_with_ocr(small_corpus, config)
        assert all(d.text_layer.quality is TextLayerQuality.OCR_DERIVED for d in augmented)
        assert all(d.text_layer.producer.startswith("replaced-") for d in augmented)

    def test_partial_replacement_count(self, small_corpus):
        config = AugmentationConfig(affected_fraction=0.25, seed=2)
        augmented = replace_text_layers_with_ocr(small_corpus, config)
        replaced = sum(d.text_layer.producer.startswith("replaced-") for d in augmented)
        assert replaced == round(0.25 * len(small_corpus))

    def test_replacement_degrades_layer_fidelity(self, small_corpus):
        config = AugmentationConfig(affected_fraction=1.0, seed=2, ocr_tool="grobid")
        augmented = replace_text_layers_with_ocr(small_corpus, config)
        for before, after in zip(small_corpus, augmented):
            if before.text_layer.quality is TextLayerQuality.CLEAN:
                assert after.text_layer.n_characters <= before.text_layer.n_characters * 1.1

    def test_page_alignment_preserved(self, small_corpus):
        augmented = replace_text_layers_with_ocr(
            small_corpus, AugmentationConfig(affected_fraction=1.0)
        )
        for doc in augmented:
            assert doc.text_layer.n_pages == doc.n_pages


class TestStripTextLayers:
    def test_stripped_layers_empty(self, small_corpus):
        stripped = strip_text_layers(small_corpus, fraction=1.0)
        assert all(d.text_layer.quality is TextLayerQuality.MISSING for d in stripped)
        assert all(d.text_layer.n_characters == 0 for d in stripped)

    def test_fraction_zero_identity(self, small_corpus):
        stripped = strip_text_layers(small_corpus, fraction=0.0)
        assert all(
            a.text_layer.quality == b.text_layer.quality
            for a, b in zip(small_corpus, stripped)
        )
