"""Tests for the document data model."""

from __future__ import annotations

import pytest

from repro.documents.document import (
    ImageLayer,
    PageContent,
    PageElement,
    SciDocument,
    TextLayer,
    TextLayerQuality,
    total_pages,
)
from repro.documents.metadata import DocumentMetadata


def make_metadata(n_pages: int = 2) -> DocumentMetadata:
    return DocumentMetadata(
        title="A robust analysis of manifolds",
        publisher="arxiv",
        domain="mathematics",
        subcategory="topology",
        year=2022,
        pdf_format="1.7",
        producer="pdftex",
        n_pages=n_pages,
        keywords=("manifold", "topology"),
    )


def make_document(n_pages: int = 2) -> SciDocument:
    pages = [
        PageContent(
            index=i,
            elements=(
                PageElement(kind="heading", text=f"Section {i}"),
                PageElement(kind="paragraph", text="The robust framework demonstrates results."),
                PageElement(kind="equation", text="x = y + 1", latex="x = y + 1"),
            ),
        )
        for i in range(n_pages)
    ]
    layer = TextLayer(
        quality=TextLayerQuality.CLEAN,
        page_texts=[p.ground_truth_text() for p in pages],
        producer="pdftex",
    )
    return SciDocument(
        doc_id="doc-0",
        metadata=make_metadata(n_pages),
        pages=pages,
        text_layer=layer,
        image_layer=ImageLayer(),
        seed=1,
    )


class TestPageElement:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PageElement(kind="poster", text="x")

    def test_word_count(self):
        el = PageElement(kind="paragraph", text="one two three")
        assert el.n_words == 3


class TestPageContent:
    def test_ground_truth_joins_elements(self):
        doc = make_document()
        text = doc.pages[0].ground_truth_text()
        assert "Section 0" in text and "framework" in text

    def test_elements_of_kind(self):
        page = make_document().pages[0]
        assert len(page.elements_of_kind("equation")) == 1
        assert page.elements_of_kind("table") == ()

    def test_equation_fraction(self):
        page = make_document().pages[0]
        assert page.equation_fraction == pytest.approx(1 / 3)


class TestTextLayer:
    def test_usability(self):
        assert TextLayerQuality.CLEAN.is_usable
        assert TextLayerQuality.NOISY.is_usable
        assert not TextLayerQuality.MISSING.is_usable
        assert not TextLayerQuality.SCRAMBLED.is_usable

    def test_first_page_and_character_count(self):
        doc = make_document()
        assert doc.text_layer.first_page_text().startswith("Section 0")
        assert doc.text_layer.n_characters > 0


class TestImageLayer:
    def test_pristine_has_zero_degradation(self):
        assert ImageLayer().degradation_score() == pytest.approx(0.0, abs=1e-9)

    def test_degradation_monotone_in_blur(self):
        mild = ImageLayer(is_scanned=True, blur_sigma=0.5)
        harsh = ImageLayer(is_scanned=True, blur_sigma=2.5)
        assert harsh.degradation_score() > mild.degradation_score()

    def test_degradation_bounded(self):
        worst = ImageLayer(
            dpi=50, rotation_deg=45, blur_sigma=10, contrast=0.1, noise_level=2.0,
            jpeg_quality=5, is_scanned=True,
        )
        assert 0.0 <= worst.degradation_score() <= 1.0


class TestSciDocument:
    def test_page_count_consistency_enforced(self):
        doc = make_document()
        bad_layer = TextLayer(quality=TextLayerQuality.CLEAN, page_texts=["only one"], producer="x")
        with pytest.raises(ValueError):
            SciDocument(
                doc_id="bad",
                metadata=doc.metadata,
                pages=doc.pages,
                text_layer=bad_layer,
                image_layer=ImageLayer(),
            )

    def test_requires_at_least_one_page(self):
        doc = make_document()
        with pytest.raises(ValueError):
            SciDocument(
                doc_id="bad",
                metadata=doc.metadata,
                pages=[],
                text_layer=TextLayer(TextLayerQuality.CLEAN, [], "x"),
                image_layer=ImageLayer(),
            )

    def test_ground_truth_text_covers_all_pages(self):
        doc = make_document(3)
        text = doc.ground_truth_text()
        assert "Section 0" in text and "Section 2" in text
        assert doc.n_pages == 3
        assert doc.n_words > 0

    def test_with_layers_returns_copies(self):
        doc = make_document()
        scanned = doc.with_image_layer(ImageLayer(is_scanned=True))
        assert scanned.image_layer.is_scanned and not doc.image_layer.is_scanned
        new_layer = TextLayer(TextLayerQuality.MISSING, ["", ""], "x")
        stripped = doc.with_text_layer(new_layer)
        assert stripped.text_layer.quality is TextLayerQuality.MISSING
        assert doc.text_layer.quality is TextLayerQuality.CLEAN

    def test_total_pages_helper(self):
        docs = [make_document(2), make_document(3)]
        assert total_pages(docs) == 5

    def test_iter_elements_order(self):
        doc = make_document(2)
        kinds = [el.kind for el in doc.iter_elements()]
        assert kinds[:3] == ["heading", "paragraph", "equation"]
        assert len(kinds) == 6
