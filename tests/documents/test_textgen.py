"""Tests for the scientific text generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.documents import lexicon
from repro.documents.textgen import (
    ScientificTextGenerator,
    TextGenConfig,
    generate_generic_sentences,
)


@pytest.fixture()
def generator() -> ScientificTextGenerator:
    return ScientificTextGenerator("chemistry", np.random.default_rng(5))


class TestSentences:
    def test_sentence_is_nonempty_and_terminated(self, generator):
        sentence = generator.sentence()
        assert sentence.endswith(".")
        assert len(sentence.split()) >= 5

    def test_sentence_length_respects_config(self):
        config = TextGenConfig(min_words_per_sentence=8, max_words_per_sentence=12)
        gen = ScientificTextGenerator("physics", np.random.default_rng(0), config)
        for _ in range(20):
            words = gen.sentence().split()
            assert len(words) <= 12

    def test_paragraph_has_multiple_sentences(self, generator):
        paragraph = generator.paragraph(4)
        assert paragraph.count(".") >= 4

    def test_determinism_given_seed(self):
        a = ScientificTextGenerator("biology", np.random.default_rng(9)).paragraph(3)
        b = ScientificTextGenerator("biology", np.random.default_rng(9)).paragraph(3)
        assert a == b

    def test_unknown_domain_rejected(self):
        with pytest.raises(KeyError):
            ScientificTextGenerator("astrology", np.random.default_rng(0))


class TestStructuredElements:
    def test_equation_contains_latex_commands(self, generator):
        latex = generator.equation_latex()
        assert "\\" in latex

    def test_equation_element_kind_and_latex(self, generator):
        element = generator.equation_element()
        assert element.kind == "equation"
        assert element.latex == element.text

    def test_smiles_string_characters(self, generator):
        smiles = generator.smiles_string()
        assert len(smiles) >= 3
        assert all(c in "CNOSPFIclnos0123456789()[]=#+-@Na" for c in smiles)

    def test_table_element_has_rows(self, generator):
        table = generator.table_element()
        assert table.kind == "table"
        assert table.text.count("\n") >= 3
        assert "|" in table.text

    def test_reference_entry_format(self, generator):
        ref = generator.reference_entry_element(4)
        assert ref.kind == "reference_entry"
        assert ref.text.startswith("[4]")

    def test_citation_block_contains_citation(self, generator):
        block = generator.citation_block_element()
        assert "[" in block.text or "et al." in block.text


class TestPages:
    def test_first_page_structure(self, generator):
        page = generator.first_page("A Title")
        kinds = [el.kind for el in page.elements]
        assert kinds[0] == "heading"
        assert "paragraph" in kinds

    def test_document_pages_count(self, generator):
        pages = generator.document_pages("Title", 6)
        assert len(pages) == 6
        assert pages[0].index == 0
        assert pages[-1].elements[0].text == "References"

    def test_document_pages_single_page(self, generator):
        pages = generator.document_pages("Title", 1)
        assert len(pages) == 1

    def test_invalid_page_count(self, generator):
        with pytest.raises(ValueError):
            generator.document_pages("Title", 0)

    def test_domain_element_mix_differs(self):
        math_gen = ScientificTextGenerator("mathematics", np.random.default_rng(3))
        med_gen = ScientificTextGenerator("medicine", np.random.default_rng(3))
        math_pages = math_gen.document_pages("T", 10)
        med_pages = med_gen.document_pages("T", 10)
        math_eq = sum(len(p.elements_of_kind("equation")) for p in math_pages)
        med_eq = sum(len(p.elements_of_kind("equation")) for p in med_pages)
        assert math_eq > med_eq


class TestGenericSentences:
    def test_count_and_shape(self):
        sentences = generate_generic_sentences(np.random.default_rng(1), 10)
        assert len(sentences) == 10
        assert all(s.endswith(".") for s in sentences)

    def test_vocabulary_is_non_scientific(self):
        sentences = " ".join(generate_generic_sentences(np.random.default_rng(1), 50)).lower()
        scientific_hits = sum(1 for term in lexicon.DOMAIN_TERMS["chemistry"] if term in sentences)
        assert scientific_hits <= 3
