"""Tests for corpus construction and splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.documents.corpus import (
    Corpus,
    CorpusConfig,
    benchmark_splits,
    build_corpus,
    build_document,
    build_text_layer,
    sample_text_layer_quality,
)
from repro.documents.document import ImageLayer, TextLayerQuality


class TestCorpusConfig:
    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_documents=0)
        with pytest.raises(ValueError):
            CorpusConfig(min_pages=5, max_pages=3)
        with pytest.raises(ValueError):
            CorpusConfig(scanned_fraction=1.5)


class TestBuildDocument:
    def test_deterministic_per_index(self):
        config = CorpusConfig(n_documents=3, seed=50, min_pages=3, max_pages=5)
        a = build_document(1, config)
        b = build_document(1, config)
        assert a.doc_id == b.doc_id
        assert a.ground_truth_text() == b.ground_truth_text()
        assert a.text_layer.page_texts == b.text_layer.page_texts

    def test_independent_of_other_documents(self):
        config = CorpusConfig(n_documents=10, seed=50, min_pages=3, max_pages=5)
        direct = build_document(4, config)
        in_corpus = build_corpus(config)[4]
        assert direct.ground_truth_text() == in_corpus.ground_truth_text()

    def test_page_counts_within_bounds(self):
        config = CorpusConfig(n_documents=10, seed=1, min_pages=4, max_pages=7)
        for doc in build_corpus(config):
            assert 4 <= doc.n_pages <= 7

    def test_scanned_documents_do_not_have_clean_layers(self):
        config = CorpusConfig(n_documents=40, seed=3, scanned_fraction=0.5)
        for doc in build_corpus(config):
            if doc.image_layer.is_scanned:
                assert doc.text_layer.quality in (
                    TextLayerQuality.OCR_DERIVED,
                    TextLayerQuality.MISSING,
                    TextLayerQuality.SCRAMBLED,
                )


class TestTextLayerConstruction:
    def test_missing_layer_is_empty(self, sample_document, rng):
        layer = build_text_layer(
            sample_document.pages, TextLayerQuality.MISSING, "x", ImageLayer(), rng
        )
        assert all(t == "" for t in layer.page_texts)

    def test_clean_layer_close_to_ground_truth(self, sample_document, rng):
        layer = build_text_layer(
            sample_document.pages, TextLayerQuality.CLEAN, "pdftex", ImageLayer(), rng
        )
        gt_words = set(sample_document.pages[0].ground_truth_text().lower().split())
        layer_words = set(layer.page_texts[0].lower().split())
        # Most ground-truth words survive in a clean embedded layer.
        assert len(gt_words & layer_words) > 0.6 * len(gt_words)

    def test_scrambled_layer_differs_heavily(self, sample_document, rng):
        layer = build_text_layer(
            sample_document.pages, TextLayerQuality.SCRAMBLED, "x", ImageLayer(), rng
        )
        gt = sample_document.pages[0].ground_truth_text()
        scrambled = layer.page_texts[0]
        same = sum(1 for a, b in zip(gt.split(), scrambled.split()) if a == b)
        assert same < 0.5 * len(gt.split())

    def test_quality_sampling_respects_producer(self):
        rng = np.random.default_rng(0)
        scanner = [sample_text_layer_quality("scanner_firmware", rng) for _ in range(200)]
        latex = [sample_text_layer_quality("pdftex", rng) for _ in range(200)]
        assert sum(q is TextLayerQuality.CLEAN for q in latex) > 150
        assert sum(q is TextLayerQuality.OCR_DERIVED for q in scanner) > 80


class TestCorpusOperations:
    def test_len_iter_getitem(self, small_corpus):
        assert len(small_corpus) == 12
        assert small_corpus[0].doc_id == next(iter(small_corpus)).doc_id

    def test_by_id(self, small_corpus):
        doc = small_corpus[3]
        assert small_corpus.by_id(doc.doc_id).doc_id == doc.doc_id
        with pytest.raises(KeyError):
            small_corpus.by_id("missing")

    def test_filter_and_subset(self, small_corpus):
        born_digital = small_corpus.filter(lambda d: d.is_born_digital)
        assert all(d.is_born_digital for d in born_digital)
        subset = small_corpus.subset([0, 2])
        assert len(subset) == 2

    def test_split_fractions(self, small_corpus):
        splits = small_corpus.split({"a": 0.5, "b": 0.5})
        assert len(splits["a"]) + len(splits["b"]) == len(small_corpus)
        all_ids = {d.doc_id for d in splits["a"]} | {d.doc_id for d in splits["b"]}
        assert len(all_ids) == len(small_corpus)

    def test_split_rejects_excess_fractions(self, small_corpus):
        with pytest.raises(ValueError):
            small_corpus.split({"a": 0.9, "b": 0.3})

    def test_benchmark_splits_disjoint(self, small_corpus):
        splits = benchmark_splits(small_corpus)
        ids = [d.doc_id for split in splits.values() for d in split]
        assert len(ids) == len(set(ids)) == len(small_corpus)

    def test_described_summary(self, small_corpus):
        summary = small_corpus.described()
        assert summary["n_documents"] == 12
        assert sum(summary["domains"].values()) == 12

    def test_map_documents(self, small_corpus):
        mapped = small_corpus.map_documents(lambda d: d.with_image_layer(ImageLayer(is_scanned=True)))
        assert all(d.image_layer.is_scanned for d in mapped)
        assert not all(d.image_layer.is_scanned for d in small_corpus)
