"""Tests for the LaTeX/table rendering transforms."""

from __future__ import annotations

import numpy as np

from repro.documents.rendering import (
    latex_ocr_garble,
    latex_to_embedded_glyphs,
    latex_to_prose,
    table_reading_order,
)

LATEX = "\\frac{\\partial u}{\\partial t} = \\nabla^2 u + \\lambda u"


class TestEmbeddedGlyphs:
    def test_commands_removed(self):
        out = latex_to_embedded_glyphs(LATEX)
        assert "\\" not in out
        assert "{" not in out and "}" not in out

    def test_glyphs_preserved(self):
        out = latex_to_embedded_glyphs(LATEX)
        assert "∂" in out and "∇" in out and "λ" in out

    def test_with_rng_still_deterministic(self):
        a = latex_to_embedded_glyphs(LATEX, np.random.default_rng(1))
        b = latex_to_embedded_glyphs(LATEX, np.random.default_rng(1))
        assert a == b


class TestProse:
    def test_no_latex_syntax_remains(self):
        out = latex_to_prose(LATEX)
        assert "\\" not in out
        assert "=" not in out

    def test_words_substituted(self):
        out = latex_to_prose(LATEX)
        assert "partial" in out and "lambda" in out and "equals" in out


class TestOcrGarble:
    def test_greek_becomes_latin_at_high_severity(self):
        rng = np.random.default_rng(0)
        out = latex_ocr_garble("\\lambda + \\sigma", severity=1.0, rng=rng)
        assert "λ" not in out or "σ" not in out

    def test_deterministic(self):
        a = latex_ocr_garble(LATEX, 0.5, np.random.default_rng(4))
        b = latex_ocr_garble(LATEX, 0.5, np.random.default_rng(4))
        assert a == b


class TestTableReadingOrder:
    def test_separators_dropped_with_probability_one(self):
        table = "a | b | c\n1 | 2 | 3"
        out = table_reading_order(table, drop_separator_prob=1.0, rng=np.random.default_rng(0))
        assert " | " not in out
        assert "a b c" in out

    def test_separators_kept_with_probability_zero(self):
        table = "a | b | c"
        out = table_reading_order(table, drop_separator_prob=0.0, rng=np.random.default_rng(0))
        assert out == table
