"""Tests for the edit-distance implementations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.levenshtein import (
    levenshtein_distance,
    levenshtein_distance_reference,
    normalized_similarity,
)

short_text = st.text(alphabet="abcde ", max_size=30)


class TestKnownDistances:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("hyperthyroidism", "hypothyroidism", 2),
            ("pH", "Ph", 2),
        ],
    )
    def test_examples(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    def test_symmetry(self):
        assert levenshtein_distance("abcdef", "azced") == levenshtein_distance("azced", "abcdef")


class TestAgainstReference:
    @settings(max_examples=150, deadline=None)
    @given(short_text, short_text)
    def test_matches_reference_implementation(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance_reference(a, b)

    @settings(max_examples=60, deadline=None)
    @given(short_text, short_text)
    def test_banded_upper_bounds_and_large_band_exact(self, a, b):
        exact = levenshtein_distance_reference(a, b)
        wide = levenshtein_distance(a, b, band=60)
        assert wide == exact
        narrow = levenshtein_distance(a, b, band=2)
        assert narrow >= exact


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(short_text, short_text)
    def test_bounds(self, a, b):
        d = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=50, deadline=None)
    @given(short_text)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @settings(max_examples=50, deadline=None)
    @given(short_text, short_text, short_text)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(a, b) + levenshtein_distance(b, c)


class TestNormalizedSimilarity:
    def test_identical(self):
        assert normalized_similarity("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert normalized_similarity("", "") == 1.0

    def test_one_empty(self):
        assert normalized_similarity("abc", "") == 0.0

    def test_range(self):
        value = normalized_similarity("hyperthyroidism", "hypothyroidism")
        assert 0.8 < value < 0.95

    def test_long_strings_fast(self):
        a = "the quick brown fox jumps over the lazy dog " * 50
        b = a.replace("quick", "qvick")
        assert normalized_similarity(a, b) > 0.97
