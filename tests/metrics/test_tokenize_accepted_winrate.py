"""Tests for tokenisation, accepted tokens, win-rate bookkeeping and bundles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.accepted_tokens import accepted_token_rate, accepted_tokens
from repro.metrics.bundle import evaluate_parse
from repro.metrics.tokenize import clipped_ngram_matches, ngrams, normalize_text, word_tokenize
from repro.metrics.winrate import (
    PairwiseOutcome,
    WinRateTally,
    consensus_rate,
    normalized_win_rates,
)


class TestTokenize:
    def test_normalisation_collapses_whitespace(self):
        assert normalize_text("a  b\n\nc") == "a b c"

    def test_lowercasing_optional(self):
        assert normalize_text("AbC", lowercase=False) == "AbC"

    def test_word_tokenize(self):
        assert word_tokenize("Hello, World!  twice") == ["hello,", "world!", "twice"]

    def test_empty(self):
        assert word_tokenize("") == []

    def test_ngrams_counts(self):
        grams = ngrams(["a", "b", "a", "b"], 2)
        assert grams[("a", "b")] == 2
        assert grams[("b", "a")] == 1

    def test_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_clipping(self):
        matches, total = clipped_ngram_matches(["a", "a", "a"], ["a"], 1)
        assert matches == 1 and total == 3


class TestAcceptedTokens:
    def test_all_above_threshold(self):
        assert accepted_token_rate([0.9, 0.8], [100, 200], threshold=0.5) == 1.0

    def test_none_above_threshold(self):
        assert accepted_token_rate([0.1, 0.2], [100, 200], threshold=0.5) == 0.0

    def test_token_weighting(self):
        rate = accepted_token_rate([0.9, 0.1], [100, 300], threshold=0.5)
        assert rate == pytest.approx(0.25)

    def test_absolute_count(self):
        assert accepted_tokens([0.9, 0.1], [100, 300], threshold=0.5) == 100

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accepted_token_rate([0.9], [100, 200])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=20))
    def test_rate_in_unit_interval(self, scores):
        counts = [10] * len(scores)
        assert 0.0 <= accepted_token_rate(scores, counts) <= 1.0


class TestWinRate:
    def test_winner_must_be_participant(self):
        with pytest.raises(ValueError):
            PairwiseOutcome("d", "a", "b", winner="c")

    def test_tally_basic(self):
        tally = WinRateTally()
        tally.add(PairwiseOutcome("d1", "a", "b", "a"))
        tally.add(PairwiseOutcome("d2", "a", "b", "b"))
        tally.add(PairwiseOutcome("d3", "a", "b", None))
        assert tally.win_rate("a") == pytest.approx(0.5)
        assert tally.win_rate("b") == pytest.approx(0.5)
        assert tally.decisiveness() == pytest.approx(2 / 3)

    def test_normalized_win_rates_cover_all_parsers(self):
        outcomes = [
            PairwiseOutcome("d1", "a", "b", "a"),
            PairwiseOutcome("d2", "b", "c", "c"),
        ]
        rates = normalized_win_rates(outcomes)
        assert set(rates) == {"a", "b", "c"}
        assert rates["b"] == 0.0

    def test_unseen_parser_zero(self):
        tally = WinRateTally()
        assert tally.win_rate("nobody") == 0.0

    def test_consensus(self):
        judgements = {
            ("p1", "a", "b"): ["a", "a"],
            ("p2", "a", "b"): ["a", "b"],
            ("p3", "a", "b"): ["b"],  # single judgement: excluded
        }
        assert consensus_rate(judgements) == pytest.approx(0.5)

    def test_consensus_no_repeats(self):
        assert consensus_rate({("p", "a", "b"): ["a"]}) == 1.0


class TestBundle:
    def test_perfect_parse(self):
        pages = ["the robust framework demonstrates a significant result " * 5] * 2
        bundle = evaluate_parse(pages, pages)
        assert bundle.coverage == 1.0
        assert bundle.bleu == pytest.approx(1.0)
        assert bundle.rouge == pytest.approx(1.0)
        assert bundle.car == pytest.approx(1.0)
        assert bundle.n_ground_truth_tokens > 0

    def test_dropped_page_lowers_coverage_and_bleu(self):
        pages = ["the robust framework demonstrates a significant result " * 5] * 2
        parsed = [pages[0], ""]
        bundle = evaluate_parse(pages, parsed)
        assert bundle.coverage == pytest.approx(0.5)
        assert bundle.bleu < 1.0

    def test_as_dict_keys(self):
        pages = ["some text here"]
        bundle = evaluate_parse(pages, pages)
        assert set(bundle.as_dict()) == {"coverage", "bleu", "rouge", "car", "n_ground_truth_tokens"}
