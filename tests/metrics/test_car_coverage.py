"""Tests for character accuracy rate and page coverage."""

from __future__ import annotations

import pytest

from repro.metrics.car import character_accuracy_rate, page_character_accuracy
from repro.metrics.coverage import dropped_pages, page_coverage_rate


class TestPageCharacterAccuracy:
    def test_identical_pages(self):
        assert page_character_accuracy("abc def", "abc def") == pytest.approx(1.0)

    def test_empty_parse(self):
        assert page_character_accuracy("abc", "") == 0.0

    def test_empty_ground_truth(self):
        assert page_character_accuracy("", "") == 1.0
        assert page_character_accuracy("", "junk") == 0.0

    def test_small_corruption_high_accuracy(self):
        gt = "the quick brown fox jumps over the lazy dog"
        parsed = gt.replace("quick", "qu1ck")
        assert page_character_accuracy(gt, parsed) > 0.95

    def test_whitespace_normalisation(self):
        gt = "a b  c\n d"
        parsed = "a b c d"
        assert page_character_accuracy(gt, parsed) == pytest.approx(1.0)


class TestDocumentCar:
    def test_missing_page_penalised(self):
        gt_pages = ["page one text here", "page two text here"]
        parsed = ["page one text here"]
        car = character_accuracy_rate(gt_pages, parsed)
        assert 0.4 < car < 0.6

    def test_weighting_by_page_length(self):
        gt_pages = ["x" * 1000, "y" * 10]
        parsed = ["x" * 1000, ""]
        assert character_accuracy_rate(gt_pages, parsed) > 0.95

    def test_empty_document(self):
        assert character_accuracy_rate([], []) == 1.0

    def test_truncation_cap_applies(self):
        gt = ["a" * 10_000]
        parsed = ["a" * 10_000]
        assert character_accuracy_rate(gt, parsed, max_chars=500) == pytest.approx(1.0)


class TestCoverage:
    def test_full_coverage(self):
        pages = ["content " * 10] * 4
        assert page_coverage_rate(pages, pages) == 1.0

    def test_dropped_page_detected(self):
        gt = ["content " * 10, "more content " * 10]
        parsed = ["content " * 10, ""]
        assert page_coverage_rate(gt, parsed) == pytest.approx(0.5)
        assert dropped_pages(gt, parsed) == [1]

    def test_short_fragment_counts_as_dropped(self):
        gt = ["a rather long ground truth page with many words"]
        parsed = ["a"]
        assert page_coverage_rate(gt, parsed) == 0.0

    def test_missing_trailing_pages(self):
        gt = ["page"] * 3
        parsed = ["page"]
        assert page_coverage_rate(gt, parsed) == pytest.approx(1 / 3)

    def test_empty_ground_truth(self):
        assert page_coverage_rate([], []) == 1.0
