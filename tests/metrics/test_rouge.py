"""Tests for ROUGE."""

from __future__ import annotations

import pytest

from repro.metrics.rouge import rouge_l, rouge_n

REFERENCE = "the adaptive parser selects the most promising parser for each document"
CANDIDATE = "the adaptive parser selects a parser for each document quickly"


class TestRougeN:
    def test_identity(self):
        scores = rouge_n(REFERENCE, REFERENCE, n=1)
        assert scores["f1"] == pytest.approx(1.0)

    def test_empty_candidate(self):
        assert rouge_n("", REFERENCE, n=1)["f1"] == 0.0

    def test_partial_overlap(self):
        scores = rouge_n(CANDIDATE, REFERENCE, n=1)
        assert 0.5 < scores["f1"] < 1.0
        assert 0.0 <= scores["precision"] <= 1.0
        assert 0.0 <= scores["recall"] <= 1.0

    def test_bigram_stricter_than_unigram(self):
        uni = rouge_n(CANDIDATE, REFERENCE, n=1)["f1"]
        bi = rouge_n(CANDIDATE, REFERENCE, n=2)["f1"]
        assert bi <= uni

    def test_order_insensitive_for_unigrams(self):
        shuffled = " ".join(reversed(REFERENCE.split()))
        assert rouge_n(shuffled, REFERENCE, n=1)["f1"] == pytest.approx(1.0)


class TestRougeL:
    def test_identity(self):
        assert rouge_l(REFERENCE, REFERENCE)["f1"] == pytest.approx(1.0)

    def test_order_sensitivity(self):
        shuffled = " ".join(reversed(REFERENCE.split()))
        assert rouge_l(shuffled, REFERENCE)["f1"] < rouge_l(REFERENCE, REFERENCE)["f1"]

    def test_subsequence_recall(self):
        candidate = "the adaptive parser selects the document"
        scores = rouge_l(candidate, REFERENCE)
        assert scores["recall"] == pytest.approx(6 / len(REFERENCE.split()))

    def test_truncation_bound_respected(self):
        long_text = "word " * 10000
        scores = rouge_l(long_text, long_text, max_tokens=500)
        assert scores["f1"] == pytest.approx(1.0)

    def test_empty_inputs(self):
        assert rouge_l("", REFERENCE)["f1"] == 0.0
        assert rouge_l(REFERENCE, "")["f1"] == 0.0
