"""Tests for BLEU."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.bleu import BleuStatistics, bleu_score, bleu_statistics, corpus_bleu

REFERENCE = (
    "the gravitational force between two masses is directly proportional to the product "
    "of their masses and inversely proportional to the square of the distance between them"
)
SCRAMBLED = (
    "the gravitational force inversely masses the proportional distance between two products "
    "and is directly proportional to the square of objects"
)

words = st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta", "eps"]), min_size=1, max_size=40)


class TestBasicProperties:
    def test_identity_is_one(self):
        assert bleu_score(REFERENCE, REFERENCE) == pytest.approx(1.0)

    def test_empty_candidate_is_zero(self):
        assert bleu_score("", REFERENCE) == 0.0

    def test_empty_reference_is_zero(self):
        assert bleu_score(REFERENCE, "") == 0.0

    def test_range(self):
        assert 0.0 <= bleu_score(SCRAMBLED, REFERENCE) <= 1.0

    def test_scrambled_text_scores_lower_than_identity(self):
        assert bleu_score(SCRAMBLED, REFERENCE) < 0.6

    def test_paper_example_scores_moderately(self):
        # The paper quotes BLEU ≈ 0.32 for this pair; the exact value depends
        # on smoothing/normalisation choices, but it must be mid-range: clearly
        # above garbage, clearly below a faithful parse.
        score = bleu_score(SCRAMBLED, REFERENCE)
        assert 0.1 < score < 0.6

    def test_case_insensitive(self):
        assert bleu_score(REFERENCE.upper(), REFERENCE) == pytest.approx(1.0)

    def test_word_dropping_reduces_score(self):
        words_list = REFERENCE.split()
        truncated = " ".join(words_list[: len(words_list) // 2])
        assert bleu_score(truncated, REFERENCE) < bleu_score(REFERENCE, REFERENCE)

    @settings(max_examples=50, deadline=None)
    @given(words, words)
    def test_always_in_unit_interval(self, cand, ref):
        assert 0.0 <= bleu_score(" ".join(cand), " ".join(ref)) <= 1.0


class TestStatistics:
    def test_statistics_addition(self):
        s1 = bleu_statistics("a b c", "a b c")
        s2 = bleu_statistics("d e f", "d e f g")
        combined = s1 + s2
        assert combined.candidate_length == s1.candidate_length + s2.candidate_length
        assert combined.matches[0] == s1.matches[0] + s2.matches[0]

    def test_mismatched_orders_rejected(self):
        s1 = bleu_statistics("a b", "a b", max_n=2)
        s2 = bleu_statistics("a b", "a b", max_n=4)
        with pytest.raises(ValueError):
            _ = s1 + s2

    def test_brevity_penalty_applied(self):
        stats = BleuStatistics(matches=(5, 4, 3, 2), totals=(5, 4, 3, 2), candidate_length=5, reference_length=10)
        assert stats.score() < 1.0


class TestCorpusBleu:
    def test_matches_single_segment(self):
        single = bleu_score(SCRAMBLED, REFERENCE)
        corpus = corpus_bleu([SCRAMBLED], [REFERENCE])
        assert corpus == pytest.approx(single)

    def test_pooling_differs_from_mean(self):
        candidates = [REFERENCE, "completely unrelated words here"]
        references = [REFERENCE, REFERENCE]
        pooled = corpus_bleu(candidates, references)
        assert 0.0 < pooled < 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            corpus_bleu(["a"], ["a", "b"])

    def test_empty_corpus(self):
        assert corpus_bleu([], []) == 0.0
