"""Tests of token accounting and goodput."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.tokens import (
    TokenAccount,
    accepted_token_counts,
    account_records,
    goodput_table,
)

from tests.datasets.conftest import make_record


class TestAccountRecords:
    def test_totals(self):
        records = [
            make_record(doc_id="a", text="w " * 100, quality=0.9, cpu_seconds=1.0),
            make_record(doc_id="b", text="w " * 50, quality=0.1, cpu_seconds=2.0, gpu_seconds=3.0),
        ]
        account = account_records(records, threshold=0.35)
        assert account.n_documents == 2
        assert account.n_tokens == 150
        assert account.n_accepted_tokens == 100
        assert account.cpu_seconds == pytest.approx(3.0)
        assert account.gpu_seconds == pytest.approx(3.0)

    def test_unknown_quality_never_accepted(self):
        account = account_records([make_record(quality=None, text="w " * 40)])
        assert account.n_accepted_tokens == 0
        assert account.n_tokens == 40

    def test_threshold_boundary_accepted(self):
        account = account_records([make_record(quality=0.35, text="w " * 10)], threshold=0.35)
        assert account.n_accepted_tokens == 10

    def test_empty(self):
        account = account_records([])
        assert account.n_documents == 0
        assert account.acceptance_rate == 0.0
        assert account.goodput_per_cpu_hour() == 0.0


class TestTokenAccount:
    def test_acceptance_rate(self):
        account = TokenAccount(n_documents=2, n_tokens=200, n_accepted_tokens=150)
        assert account.acceptance_rate == pytest.approx(0.75)

    def test_goodput_per_cpu_hour(self):
        account = TokenAccount(n_tokens=100, n_accepted_tokens=100, cpu_seconds=3600.0)
        assert account.goodput_per_cpu_hour() == pytest.approx(100.0)

    def test_goodput_per_gpu_hour_zero_without_gpu_time(self):
        account = TokenAccount(n_accepted_tokens=100, cpu_seconds=10.0)
        assert account.goodput_per_gpu_hour() == 0.0

    def test_goodput_per_node_hour_uses_bottleneck_resource(self):
        # 32 CPU-core-hours of work == 1 node-hour; 8 GPU-hours == 2 node-hours.
        account = TokenAccount(
            n_accepted_tokens=1000,
            cpu_seconds=32 * 3600.0,
            gpu_seconds=8 * 3600.0,
        )
        assert account.goodput_per_node_hour(cpu_cores=32, gpus=4) == pytest.approx(500.0)

    def test_goodput_per_node_hour_invalid_shape(self):
        with pytest.raises(ValueError):
            TokenAccount().goodput_per_node_hour(cpu_cores=0)

    def test_merge(self):
        a = TokenAccount(n_documents=1, n_tokens=10, n_accepted_tokens=5, cpu_seconds=1.0)
        b = TokenAccount(n_documents=2, n_tokens=20, n_accepted_tokens=20, gpu_seconds=2.0)
        merged = a.merged(b)
        assert merged.n_documents == 3
        assert merged.n_tokens == 30
        assert merged.n_accepted_tokens == 25
        assert merged.cpu_seconds == pytest.approx(1.0)
        assert merged.gpu_seconds == pytest.approx(2.0)

    def test_merge_rejects_mismatched_thresholds(self):
        with pytest.raises(ValueError):
            TokenAccount(threshold=0.3).merged(TokenAccount(threshold=0.5))

    def test_as_dict_shape(self):
        payload = TokenAccount(n_documents=1, n_tokens=10, n_accepted_tokens=10).as_dict()
        assert {"n_documents", "n_tokens", "n_accepted_tokens", "acceptance_rate"} <= set(payload)

    @given(
        tokens=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=30),
        qualities=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_accepted_never_exceeds_total(self, tokens, qualities):
        n = min(len(tokens), len(qualities))
        records = [
            make_record(doc_id=f"d{i}", text="w " * tokens[i], quality=qualities[i])
            for i in range(n)
        ]
        account = account_records(records)
        assert 0 <= account.n_accepted_tokens <= account.n_tokens
        assert 0.0 <= account.acceptance_rate <= 1.0


class TestMergeAssociativity:
    @given(
        counts=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_merge_is_associative(self, counts):
        accounts = [
            TokenAccount(n_documents=1, n_tokens=total, n_accepted_tokens=min(total, accepted))
            for total, accepted in counts
        ]
        left = accounts[0].merged(accounts[1]).merged(accounts[2])
        right = accounts[0].merged(accounts[1].merged(accounts[2]))
        assert left == right


class TestHelpers:
    def test_accepted_token_counts(self):
        assert accepted_token_counts([0.9, 0.1, None], [10, 20, 30], threshold=0.5) == 10

    def test_accepted_token_counts_length_mismatch(self):
        with pytest.raises(ValueError):
            accepted_token_counts([0.9], [10, 20])

    def test_goodput_table_rows(self):
        accounts = {
            "pymupdf": TokenAccount(n_documents=3, n_tokens=300, n_accepted_tokens=200, cpu_seconds=10),
            "nougat": TokenAccount(n_documents=3, n_tokens=300, n_accepted_tokens=290, gpu_seconds=100),
        }
        table = goodput_table(accounts)
        assert len(table.rows) == 2
        assert table.column("Parser") == ["pymupdf", "nougat"]
