"""Tests of JSONL serialisation, sharding, and the manifest."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.jsonl import (
    JsonlShardManifest,
    ShardedJsonlWriter,
    iter_jsonl,
    read_jsonl,
    write_jsonl,
)


class TestWriteReadJsonl:
    def test_roundtrip(self, tmp_path):
        records = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = tmp_path / "data.jsonl"
        written = write_jsonl(path, records)
        assert written == 2
        assert read_jsonl(path) == records

    def test_unicode_preserved(self, tmp_path):
        records = [{"text": "schrödinger ∂ψ/∂t — ±0.5 µm"}]
        path = tmp_path / "unicode.jsonl"
        write_jsonl(path, records)
        assert read_jsonl(path) == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n', encoding="utf-8")
        assert read_jsonl(path) == [{"a": 1}, {"a": 2}]

    def test_invalid_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\nnot-json\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(path)

    def test_iter_jsonl_streams_all_records(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        write_jsonl(path, [{"i": i} for i in range(25)])
        assert [r["i"] for r in iter_jsonl(path)] == list(range(25))

    @given(
        records=st.lists(
            st.dictionaries(
                keys=st.text(min_size=1, max_size=8),
                values=st.one_of(st.integers(), st.text(max_size=20), st.booleans(), st.none()),
                max_size=4,
            ),
            max_size=20,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("jsonl") / "prop.jsonl"
        write_jsonl(path, records)
        assert read_jsonl(path) == records


class TestShardedWriter:
    def test_rolls_over_on_record_limit(self, tmp_path):
        writer = ShardedJsonlWriter(tmp_path, max_records_per_shard=3)
        with writer:
            for i in range(10):
                writer.write({"i": i})
        manifest = writer.manifest
        assert manifest.n_records == 10
        assert [s.n_records for s in manifest.shards] == [3, 3, 3, 1]

    def test_rolls_over_on_byte_limit(self, tmp_path):
        # ~1 KiB per record with a 4 KiB shard cap: at most 4 records per shard.
        writer = ShardedJsonlWriter(
            tmp_path, max_records_per_shard=1000, max_mb_per_shard=4 / 1024
        )
        payload = "x" * 1000
        with writer:
            for i in range(9):
                writer.write({"i": i, "payload": payload})
        assert all(s.n_bytes <= 4 * 1024 + 1100 for s in writer.manifest.shards)
        assert writer.manifest.n_records == 9
        assert len(writer.manifest.shards) >= 3

    def test_manifest_written_and_loadable(self, tmp_path):
        with ShardedJsonlWriter(tmp_path, max_records_per_shard=5) as writer:
            writer.write_many({"i": i} for i in range(7))
        loaded = JsonlShardManifest.load(tmp_path)
        assert loaded.n_records == 7
        assert [r["i"] for r in loaded.iter_records()] == list(range(7))

    def test_close_is_idempotent(self, tmp_path):
        writer = ShardedJsonlWriter(tmp_path)
        writer.write({"i": 1})
        first = writer.close()
        second = writer.close()
        assert first is second
        assert first.n_records == 1

    def test_write_after_close_raises(self, tmp_path):
        writer = ShardedJsonlWriter(tmp_path)
        writer.write({"i": 1})
        writer.close()
        with pytest.raises(RuntimeError, match="closed"):
            writer.write({"i": 2})

    def test_extra_manifest_metadata(self, tmp_path):
        writer = ShardedJsonlWriter(tmp_path)
        writer.write({"i": 1})
        writer.close(extra={"campaign": "test-run"})
        manifest = JsonlShardManifest.load(tmp_path)
        assert manifest.extra["campaign"] == "test-run"

    def test_empty_writer_produces_empty_manifest(self, tmp_path):
        with ShardedJsonlWriter(tmp_path) as writer:
            pass
        manifest = JsonlShardManifest.load(tmp_path)
        assert manifest.n_records == 0
        assert manifest.shards == []

    def test_invalid_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedJsonlWriter(tmp_path, max_records_per_shard=0)
        with pytest.raises(ValueError):
            ShardedJsonlWriter(tmp_path, max_mb_per_shard=0.0)

    def test_manifest_json_structure(self, tmp_path):
        with ShardedJsonlWriter(tmp_path, max_records_per_shard=2) as writer:
            writer.write_many({"i": i} for i in range(3))
        payload = json.loads((tmp_path / "manifest.json").read_text(encoding="utf-8"))
        assert payload["n_records"] == 3
        assert len(payload["shards"]) == 2
        assert all({"path", "n_records", "n_bytes"} <= set(s) for s in payload["shards"])
