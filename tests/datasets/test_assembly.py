"""Integration tests of the end-to-end dataset builder."""

from __future__ import annotations

import pytest

from repro.datasets.assembly import DatasetBuildConfig, DatasetBuilder, load_dataset
from repro.datasets.quality import FilterPipeline, LengthFilter
from repro.parsers.registry import default_registry


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestDatasetBuilder:
    def test_build_writes_shards_and_manifest(self, registry, small_corpus, tmp_path):
        builder = DatasetBuilder(
            registry.get("pymupdf"),
            DatasetBuildConfig(output_dir=str(tmp_path), min_tokens=10),
        )
        report = builder.build(small_corpus)
        assert report.n_documents == len(small_corpus)
        assert report.manifest is not None
        assert report.manifest.n_records == report.n_final
        loaded = load_dataset(tmp_path)
        assert {r.doc_id for r in loaded} == {r.doc_id for r in report.final_records}

    def test_records_have_reference_quality(self, registry, small_corpus):
        builder = DatasetBuilder(registry.get("pymupdf"), DatasetBuildConfig(min_tokens=10))
        report = builder.build(small_corpus)
        assert all(r.quality_source == "reference" for r in report.records)
        assert all(r.quality is not None for r in report.records)

    def test_no_ground_truth_means_unknown_quality(self, registry, small_corpus):
        builder = DatasetBuilder(
            registry.get("pymupdf"),
            DatasetBuildConfig(min_tokens=10, evaluate_against_ground_truth=False),
        )
        report = builder.build(small_corpus)
        assert all(r.quality is None for r in report.records)

    def test_in_memory_build_skips_writing(self, registry, small_corpus):
        builder = DatasetBuilder(registry.get("pymupdf"), DatasetBuildConfig(min_tokens=10))
        report = builder.build(small_corpus)
        assert report.manifest is None

    def test_retention_and_stage_counts_are_consistent(self, registry, small_corpus):
        builder = DatasetBuilder(registry.get("pymupdf"), DatasetBuildConfig(min_tokens=10))
        report = builder.build(small_corpus)
        assert report.filter_report.n_input == report.n_documents
        assert report.n_final <= report.filter_report.n_accepted <= report.n_documents
        assert 0.0 <= report.retention_rate <= 1.0
        summary = report.summary()
        assert summary["n_after_dedup"] == report.n_final

    def test_low_quality_parser_retains_less(self, registry, small_corpus):
        """pypdf's noisier output should not retain more accepted tokens than PyMuPDF."""
        config = DatasetBuildConfig(min_tokens=10, quality_threshold=0.35)
        good = DatasetBuilder(registry.get("pymupdf"), config).build(small_corpus)
        bad = DatasetBuilder(registry.get("pypdf"), config).build(small_corpus)
        assert bad.token_account.n_accepted_tokens <= good.token_account.n_accepted_tokens

    def test_custom_filter_pipeline_is_respected(self, registry, small_corpus):
        pipeline = FilterPipeline([LengthFilter(min_tokens=10_000_000, max_tokens=None)])
        builder = DatasetBuilder(
            registry.get("pymupdf"),
            DatasetBuildConfig(min_tokens=10),
            filter_pipeline=pipeline,
        )
        report = builder.build(small_corpus)
        assert report.n_final == 0
        assert report.filter_report.rejections_by_filter["length"] == report.n_documents

    def test_dedup_disabled_keeps_filter_survivors(self, registry, small_corpus):
        builder = DatasetBuilder(
            registry.get("pymupdf"), DatasetBuildConfig(min_tokens=10, dedup=False)
        )
        report = builder.build(small_corpus)
        assert report.n_final == report.filter_report.n_accepted
        assert report.dedup_report.dropped == []

    def test_build_from_results_matches_build(self, registry, small_corpus):
        parser = registry.get("pymupdf")
        results = parser.parse_many(list(small_corpus))
        config = DatasetBuildConfig(min_tokens=10)
        from_results = DatasetBuilder(parser, config).build_from_results(small_corpus, results)
        direct = DatasetBuilder(parser, config).build(small_corpus)
        assert {r.doc_id for r in from_results.final_records} == {
            r.doc_id for r in direct.final_records
        }

    def test_build_from_results_length_mismatch(self, registry, small_corpus):
        parser = registry.get("pymupdf")
        results = parser.parse_many(list(small_corpus))[:-1]
        with pytest.raises(ValueError, match="equal length"):
            DatasetBuilder(parser).build_from_results(small_corpus, results)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DatasetBuildConfig(quality_threshold=2.0)
        with pytest.raises(ValueError):
            DatasetBuildConfig(min_tokens=-1)
        with pytest.raises(ValueError):
            DatasetBuildConfig(dedup_similarity=0.0)


class TestAdaParseDataset:
    def test_engine_dataset_goodput_beats_expensive_parser_per_compute(self, registry, small_corpus):
        """AdaParse-style routing produces comparable accepted tokens at far less GPU time
        than running the ViT parser on everything."""
        from repro.core.engine import build_default_engine

        engine = build_default_engine(train_corpus=small_corpus, variant="ft", registry=registry)
        config = DatasetBuildConfig(min_tokens=10)
        engine_report = DatasetBuilder(engine, config).build(small_corpus)
        nougat_report = DatasetBuilder(registry.get("nougat"), config).build(small_corpus)
        assert engine_report.token_account.gpu_seconds < nougat_report.token_account.gpu_seconds
        assert engine_report.token_account.n_accepted_tokens > 0
