"""Tests of exact and near-duplicate detection (MinHash + LSH)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.dedup import (
    LshIndex,
    MinHasher,
    NearDuplicateDetector,
    content_fingerprint,
    exact_duplicate_groups,
    jaccard_similarity,
    normalize_for_dedup,
    word_shingles,
)

from tests.datasets.conftest import make_record

BASE_TEXT = (
    "Adaptive parsing routes each document to the parser most likely to produce "
    "accurate text while respecting a strict compute budget across the campaign. "
    "Simple documents are handled by fast extraction and difficult documents are "
    "escalated to the vision transformer that reads rendered page images directly."
)


class TestNormalisation:
    def test_case_and_whitespace_folded(self):
        assert normalize_for_dedup("  Hello \n WORLD \t") == "hello world"

    def test_idempotent(self):
        once = normalize_for_dedup("A  b\nC")
        assert normalize_for_dedup(once) == once

    def test_fingerprint_invariant_to_formatting(self):
        assert content_fingerprint("Hello   world") == content_fingerprint("hello\nworld")

    def test_fingerprint_differs_for_different_content(self):
        assert content_fingerprint("alpha beta") != content_fingerprint("alpha gamma")


class TestExactDuplicates:
    def test_groups_only_real_duplicates(self):
        texts = ["a b c", "A  b\nc", "different text", "a b c"]
        groups = exact_duplicate_groups(texts)
        assert len(groups) == 1
        assert sorted(groups[0]) == [0, 1, 3]

    def test_no_duplicates(self):
        assert exact_duplicate_groups(["one", "two", "three"]) == []


class TestShingles:
    def test_shingle_count(self):
        text = " ".join(f"w{i}" for i in range(10))
        assert len(word_shingles(text, k=5)) == 6

    def test_short_text_produces_single_shingle(self):
        assert len(word_shingles("only three words", k=5)) == 1

    def test_empty_text(self):
        assert word_shingles("", k=5) == set()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            word_shingles("a b c", k=0)

    def test_jaccard_bounds(self):
        a = word_shingles(BASE_TEXT)
        assert jaccard_similarity(a, a) == 1.0
        assert jaccard_similarity(a, set()) == 0.0
        assert jaccard_similarity(set(), set()) == 1.0


class TestMinHash:
    def test_identical_sets_have_identical_signatures(self):
        hasher = MinHasher(n_hashes=64)
        shingles = word_shingles(BASE_TEXT)
        assert np.array_equal(hasher.signature(shingles), hasher.signature(set(shingles)))

    def test_signature_length(self):
        hasher = MinHasher(n_hashes=48)
        assert hasher.signature(word_shingles(BASE_TEXT)).shape == (48,)

    def test_estimate_close_to_true_jaccard(self):
        hasher = MinHasher(n_hashes=256)
        words = BASE_TEXT.split()
        text_a = " ".join(words)
        # Replace the second half: overlap of shingles drops well below 1.
        text_b = " ".join(words[: len(words) // 2] + ["replacement"] * (len(words) // 2))
        shingles_a, shingles_b = word_shingles(text_a), word_shingles(text_b)
        truth = jaccard_similarity(shingles_a, shingles_b)
        estimate = MinHasher.estimate_similarity(
            hasher.signature(shingles_a), hasher.signature(shingles_b)
        )
        assert abs(truth - estimate) < 0.15

    def test_mismatched_signature_lengths_rejected(self):
        with pytest.raises(ValueError):
            MinHasher.estimate_similarity(np.zeros(8, dtype=np.int64), np.zeros(16, dtype=np.int64))

    @given(overlap=st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_estimate_tracks_overlap_monotonically_on_average(self, overlap):
        """More shared words ⇒ the MinHash estimate should not behave wildly."""
        hasher = MinHasher(n_hashes=128)
        shared = [f"shared{i}" for i in range(overlap)]
        a = word_shingles(" ".join(shared + [f"a{i}" for i in range(30 - overlap + 5)]), k=3)
        b = word_shingles(" ".join(shared + [f"b{i}" for i in range(30 - overlap + 5)]), k=3)
        truth = jaccard_similarity(a, b)
        estimate = MinHasher.estimate_similarity(hasher.signature(a), hasher.signature(b))
        assert 0.0 <= estimate <= 1.0
        assert abs(truth - estimate) < 0.35


class TestLshIndex:
    def test_near_identical_texts_become_candidates(self):
        hasher = MinHasher()
        index = LshIndex()
        variant = BASE_TEXT.replace("difficult", "hard")
        index.add("a", hasher.signature(word_shingles(BASE_TEXT)))
        index.add("b", hasher.signature(word_shingles(variant)))
        index.add("c", hasher.signature(word_shingles("completely unrelated short note " * 10)))
        pairs = index.candidate_pairs()
        assert ("a", "b") in pairs
        assert ("a", "c") not in pairs and ("b", "c") not in pairs

    def test_duplicate_key_rejected(self):
        hasher = MinHasher()
        index = LshIndex()
        signature = hasher.signature(word_shingles(BASE_TEXT))
        index.add("a", signature)
        with pytest.raises(KeyError):
            index.add("a", signature)

    def test_invalid_band_configuration(self):
        with pytest.raises(ValueError):
            LshIndex(n_hashes=96, n_bands=7)

    def test_wrong_signature_length_rejected(self):
        index = LshIndex(n_hashes=32, n_bands=8)
        with pytest.raises(ValueError):
            index.add("a", np.zeros(16, dtype=np.int64))


class TestNearDuplicateDetector:
    def test_exact_duplicates_collapse_to_best_quality(self):
        records = [
            make_record(doc_id="low", text=BASE_TEXT, quality=0.4),
            make_record(doc_id="high", text=BASE_TEXT, quality=0.9),
            make_record(doc_id="other", text="entirely different content " * 20, quality=0.5),
        ]
        report = NearDuplicateDetector().find_duplicates(records)
        kept_ids = {r.doc_id for r in report.kept}
        assert kept_ids == {"high", "other"}
        assert {r.doc_id for r in report.dropped} == {"low"}
        assert report.duplicate_rate == pytest.approx(1 / 3)

    def test_near_duplicates_detected(self):
        variant = BASE_TEXT.replace("campaign", "run")
        records = [
            make_record(doc_id="orig", text=BASE_TEXT * 2, quality=0.8),
            make_record(doc_id="copy", text=(BASE_TEXT * 2).replace("campaign", "run"), quality=0.7),
            make_record(doc_id="unrelated", text="unrelated material " * 50, quality=0.9),
        ]
        report = NearDuplicateDetector(similarity_threshold=0.7).find_duplicates(records)
        assert {r.doc_id for r in report.dropped} == {"copy"}
        assert len(report.clusters) == 1
        assert variant  # silence unused warning

    def test_distinct_documents_all_kept(self, small_corpus):
        records = [
            make_record(doc_id=doc.doc_id, text="\n".join(doc.ground_truth_pages()), quality=0.9)
            for doc in small_corpus
        ]
        report = NearDuplicateDetector().find_duplicates(records)
        assert len(report.kept) == len(records)
        assert report.dropped == []

    def test_unknown_quality_ranks_below_known(self):
        records = [
            make_record(doc_id="unknown", text=BASE_TEXT, quality=None),
            make_record(doc_id="known", text=BASE_TEXT, quality=0.2),
        ]
        report = NearDuplicateDetector().find_duplicates(records)
        assert {r.doc_id for r in report.kept} == {"known"}

    def test_duplicate_doc_ids_rejected(self):
        records = [make_record(doc_id="same"), make_record(doc_id="same")]
        with pytest.raises(ValueError, match="duplicate doc_id"):
            NearDuplicateDetector().find_duplicates(records)

    def test_empty_input(self):
        report = NearDuplicateDetector().find_duplicates([])
        assert report.n_input == 0
        assert report.summary()["n_clusters"] == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            NearDuplicateDetector(similarity_threshold=0.0)
