"""Tests of the record-level quality filters and the filter pipeline."""

from __future__ import annotations

import pytest

from repro.datasets.quality import (
    FilterDecision,
    FilterPipeline,
    JunkTextFilter,
    LengthFilter,
    ParseSucceededFilter,
    QualityThresholdFilter,
)

from tests.datasets.conftest import make_record

# A clean scientific passage; includes vocabulary from the corpus lexicon so
# that the CLS I "recognisable vocabulary" rule sees genuine scientific terms.
CLEAN_TEXT = (
    "The gravitational force between two masses is directly proportional to the "
    "product of their masses and inversely proportional to the square of the distance "
    "between them. We analyse the operator spectrum and establish a convergence "
    "theorem whose proof follows from a compactness lemma on the underlying manifold. "
    "The eigenvalue estimate refines earlier measurements reported in the literature."
) * 3

SCRAMBLED_TEXT = "xqzt kpw bnm " * 120


class TestParseSucceededFilter:
    def test_accepts_successful_parse(self):
        assert ParseSucceededFilter().decide(make_record(text=CLEAN_TEXT)).accepted

    def test_rejects_failed_parse(self):
        decision = ParseSucceededFilter().decide(make_record(succeeded=False))
        assert not decision.accepted
        assert "failed" in decision.reason

    def test_rejects_empty_text(self):
        decision = ParseSucceededFilter().decide(make_record(text="   \n  "))
        assert not decision.accepted
        assert "empty" in decision.reason


class TestLengthFilter:
    def test_accepts_within_window(self):
        record = make_record(text=" ".join(["word"] * 100))
        assert LengthFilter(min_tokens=50, max_tokens=200).decide(record).accepted

    def test_rejects_too_short(self):
        record = make_record(text="just a few words here")
        decision = LengthFilter(min_tokens=50).decide(record)
        assert not decision.accepted
        assert "too short" in decision.reason

    def test_rejects_too_long(self):
        record = make_record(text=" ".join(["word"] * 300))
        decision = LengthFilter(min_tokens=1, max_tokens=200).decide(record)
        assert not decision.accepted
        assert "too long" in decision.reason

    def test_no_upper_bound_when_max_is_none(self):
        record = make_record(text=" ".join(["word"] * 10_000))
        assert LengthFilter(min_tokens=1, max_tokens=None).decide(record).accepted

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            LengthFilter(min_tokens=-1)
        with pytest.raises(ValueError):
            LengthFilter(min_tokens=100, max_tokens=10)


class TestJunkTextFilter:
    def test_accepts_clean_scientific_text(self):
        assert JunkTextFilter().decide(make_record(text=CLEAN_TEXT)).accepted

    def test_rejects_scrambled_text(self):
        decision = JunkTextFilter().decide(make_record(text=SCRAMBLED_TEXT))
        assert not decision.accepted
        assert decision.reason  # carries the CLS I reasons


class TestQualityThresholdFilter:
    def test_accepts_above_threshold(self):
        assert QualityThresholdFilter(0.35).decide(make_record(quality=0.6)).accepted

    def test_rejects_below_threshold(self):
        decision = QualityThresholdFilter(0.35).decide(make_record(quality=0.1))
        assert not decision.accepted
        assert "below threshold" in decision.reason

    def test_boundary_value_is_accepted(self):
        assert QualityThresholdFilter(0.35).decide(make_record(quality=0.35)).accepted

    def test_unknown_quality_kept_by_default(self):
        assert QualityThresholdFilter(0.35).decide(make_record(quality=None)).accepted

    def test_unknown_quality_rejected_when_required(self):
        decision = QualityThresholdFilter(0.35, require_known=True).decide(
            make_record(quality=None)
        )
        assert not decision.accepted

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            QualityThresholdFilter(1.5)


class TestFilterPipeline:
    def test_first_rejection_wins_and_is_attributed(self):
        pipeline = FilterPipeline([ParseSucceededFilter(), LengthFilter(min_tokens=50)])
        decision, name = pipeline.decide(make_record(succeeded=False))
        assert not decision.accepted
        assert name == "parse_succeeded"

    def test_accept_returns_empty_filter_name(self):
        pipeline = FilterPipeline([LengthFilter(min_tokens=1)])
        decision, name = pipeline.decide(make_record(text=CLEAN_TEXT))
        assert decision.accepted
        assert name == ""

    def test_apply_partitions_and_counts(self):
        pipeline = FilterPipeline.default(quality_threshold=0.35, min_tokens=20)
        records = [
            make_record(doc_id="good", text=CLEAN_TEXT, quality=0.8),
            make_record(doc_id="short", text="tiny", quality=0.8),
            make_record(doc_id="lowq", text=CLEAN_TEXT, quality=0.05),
            make_record(doc_id="failed", text=CLEAN_TEXT, succeeded=False),
        ]
        report = pipeline.apply(records)
        assert report.n_input == 4
        assert [r.doc_id for r in report.accepted] == ["good"]
        assert report.rejections_by_filter["length"] == 1
        assert report.rejections_by_filter["quality_threshold"] == 1
        assert report.rejections_by_filter["parse_succeeded"] == 1
        assert report.acceptance_rate == pytest.approx(0.25)

    def test_rejection_reasons_lookup(self):
        pipeline = FilterPipeline([LengthFilter(min_tokens=50)])
        report = pipeline.apply([make_record(doc_id="short", text="too short")])
        reasons = report.rejection_reasons("length")
        assert len(reasons) == 1
        assert "too short" in reasons[0]

    def test_empty_input(self):
        report = FilterPipeline.default().apply([])
        assert report.n_input == 0
        assert report.acceptance_rate == 0.0
        assert report.summary()["n_accepted"] == 0

    def test_summary_shape(self):
        report = FilterPipeline.default().apply([make_record(text=CLEAN_TEXT)])
        summary = report.summary()
        assert {"n_input", "n_accepted", "acceptance_rate", "rejections_by_filter"} <= set(summary)


class TestFilterDecision:
    def test_constructors(self):
        assert FilterDecision.accept().accepted
        rejected = FilterDecision.reject("because")
        assert not rejected.accepted
        assert rejected.reason == "because"
