"""Shared fixtures for the dataset-assembly tests."""

from __future__ import annotations

import pytest

from repro.datasets.records import ParsedRecord


def make_record(
    doc_id: str = "doc-0",
    text: str = "The gravitational force between two masses follows an inverse square law.",
    parser_name: str = "pymupdf",
    quality: float | None = 0.8,
    n_pages: int = 2,
    cpu_seconds: float = 0.4,
    gpu_seconds: float = 0.0,
    succeeded: bool = True,
    **metadata: object,
) -> ParsedRecord:
    """Construct a record with sensible defaults for tests."""
    tokens = len(text.split())
    return ParsedRecord(
        doc_id=doc_id,
        text=text,
        parser_name=parser_name,
        n_pages=n_pages,
        n_tokens=tokens,
        quality=quality,
        quality_source="reference" if quality is not None else "unknown",
        cpu_seconds=cpu_seconds,
        gpu_seconds=gpu_seconds,
        succeeded=succeeded,
        metadata=dict(metadata),
    )


@pytest.fixture()
def sample_record() -> ParsedRecord:
    return make_record()


@pytest.fixture()
def small_corpus():
    from repro.documents.corpus import CorpusConfig, build_corpus

    return build_corpus(CorpusConfig(n_documents=10, seed=31, min_pages=2, max_pages=5))
