"""Tests of the parsed-record model and its construction from parses."""

from __future__ import annotations

import pytest

from repro.datasets.records import ParsedRecord, record_from_parse
from repro.metrics.bundle import evaluate_parse
from repro.parsers.base import ParseResult, ResourceUsage

from tests.datasets.conftest import make_record


class TestParsedRecord:
    def test_roundtrip_through_json_dict(self, sample_record):
        payload = sample_record.to_json_dict()
        restored = ParsedRecord.from_json_dict(payload)
        assert restored == sample_record

    def test_json_dict_is_plain_json_types(self, sample_record):
        import json

        # Must serialise without a custom encoder.
        encoded = json.dumps(sample_record.to_json_dict())
        assert sample_record.doc_id in encoded

    def test_rejects_invalid_quality_source(self):
        with pytest.raises(ValueError, match="quality_source"):
            make_record().__class__(
                doc_id="x",
                text="t",
                parser_name="p",
                n_pages=1,
                n_tokens=1,
                quality_source="guessed",
            )

    def test_rejects_out_of_range_quality(self):
        with pytest.raises(ValueError, match="quality"):
            make_record(quality=1.5)

    def test_compute_seconds_sums_cpu_and_gpu(self):
        record = make_record(cpu_seconds=1.5, gpu_seconds=2.5)
        assert record.compute_seconds == pytest.approx(4.0)

    def test_has_known_quality(self):
        assert make_record(quality=0.5).has_known_quality
        assert not make_record(quality=None).has_known_quality

    def test_from_json_dict_defaults_missing_optionals(self):
        minimal = {
            "doc_id": "d",
            "text": "some text",
            "parser_name": "pypdf",
            "n_pages": 1,
            "n_tokens": 2,
        }
        record = ParsedRecord.from_json_dict(minimal)
        assert record.quality is None
        assert record.quality_source == "unknown"
        assert record.succeeded is True
        assert record.metadata == {}


class TestRecordFromParse:
    def _parse_result(self, document, page_texts=None):
        pages = page_texts if page_texts is not None else document.ground_truth_pages()
        return ParseResult(
            parser_name="pymupdf",
            doc_id=document.doc_id,
            page_texts=list(pages),
            usage=ResourceUsage(cpu_seconds=0.3, gpu_seconds=0.1),
        )

    def test_reference_quality_from_bundle(self, small_corpus):
        document = small_corpus[0]
        result = self._parse_result(document)
        bundle = evaluate_parse(document.ground_truth_pages(), result.page_texts)
        record = record_from_parse(document, result, bundle=bundle)
        assert record.quality_source == "reference"
        assert record.quality == pytest.approx(min(1.0, bundle.bleu))
        assert record.doc_id == document.doc_id
        assert record.n_tokens > 0

    def test_predicted_quality_used_without_bundle(self, small_corpus):
        document = small_corpus[0]
        result = self._parse_result(document)
        record = record_from_parse(document, result, predicted_quality=0.42)
        assert record.quality_source == "predicted"
        assert record.quality == pytest.approx(0.42)

    def test_unknown_quality_when_nothing_given(self, small_corpus):
        document = small_corpus[1]
        record = record_from_parse(document, self._parse_result(document))
        assert record.quality is None
        assert record.quality_source == "unknown"

    def test_predicted_quality_is_clipped(self, small_corpus):
        document = small_corpus[2]
        record = record_from_parse(document, self._parse_result(document), predicted_quality=1.7)
        assert record.quality == pytest.approx(1.0)
        record = record_from_parse(document, self._parse_result(document), predicted_quality=-0.2)
        assert record.quality == pytest.approx(0.0)

    def test_metadata_provenance_is_copied(self, small_corpus):
        document = small_corpus[3]
        record = record_from_parse(document, self._parse_result(document))
        assert record.metadata["publisher"] == document.metadata.publisher
        assert record.metadata["domain"] == document.metadata.domain
        assert record.metadata["year"] == document.metadata.year

    def test_resource_usage_is_carried_over(self, small_corpus):
        document = small_corpus[4]
        record = record_from_parse(document, self._parse_result(document))
        assert record.cpu_seconds == pytest.approx(0.3)
        assert record.gpu_seconds == pytest.approx(0.1)
