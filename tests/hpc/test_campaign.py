"""Integration tests of the executor, campaigns, and the profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FT_VARIANT_CONFIG, LLM_VARIANT_CONFIG
from repro.hpc.campaign import CampaignConfig, ParsingCampaign, node_sweep
from repro.hpc.profiler import profile_gpus
from repro.hpc.resources import GpuDevice
from repro.hpc.events import DiscreteEventSimulator
from repro.hpc.workload import WorkloadModel
from repro.parsers.registry import default_registry


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestCampaignBasics:
    def test_all_documents_processed(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=2, docs_per_archive=16))
        result = campaign.run_parser(registry.get("pymupdf"), n_documents=100)
        assert result.n_documents == 100
        assert sum(s.documents_completed for s in result.node_stats) == 100
        assert result.total_time_s > 0
        assert result.throughput_docs_per_s > 0

    def test_gpu_parser_uses_gpus(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        result = campaign.run_parser(registry.get("nougat"), n_documents=40)
        assert result.gpu_utilization > 0.3
        assert result.cpu_utilization < 0.3

    def test_cpu_parser_does_not_touch_gpus(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        result = campaign.run_parser(registry.get("pymupdf"), n_documents=100)
        assert result.gpu_utilization == 0.0

    def test_deterministic(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=2))
        a = campaign.run_parser(registry.get("tesseract"), n_documents=60)
        b = campaign.run_parser(registry.get("tesseract"), n_documents=60)
        assert a.total_time_s == pytest.approx(b.total_time_s)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_nodes=0)
        with pytest.raises(ValueError):
            CampaignConfig(docs_per_archive=0)


class TestCalibration:
    def test_single_node_throughput_ordering(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        throughput = {
            name: campaign.run_parser(registry.get(name), n_documents=150).throughput_docs_per_s
            for name in ("pymupdf", "pypdf", "tesseract", "nougat", "marker")
        }
        assert throughput["pymupdf"] > throughput["pypdf"] > throughput["tesseract"]
        assert throughput["tesseract"] > throughput["nougat"] > throughput["marker"]
        # Paper: extraction is roughly two orders of magnitude faster than ViT parsing.
        assert throughput["pymupdf"] / throughput["nougat"] > 50

    def test_warm_start_reduces_model_loads_and_time(self, registry):
        warm = ParsingCampaign(CampaignConfig(n_nodes=1, warm_start=True))
        cold = ParsingCampaign(CampaignConfig(n_nodes=1, warm_start=False))
        warm_result = warm.run_parser(registry.get("nougat"), n_documents=30)
        cold_result = cold.run_parser(registry.get("nougat"), n_documents=30)
        assert warm_result.model_loads < cold_result.model_loads
        assert warm_result.total_time_s < cold_result.total_time_s

    def test_adaparse_between_extraction_and_vit(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        adaparse = campaign.run_adaparse(registry, FT_VARIANT_CONFIG, 150, engine_name="adaparse_ft")
        nougat = campaign.run_parser(registry.get("nougat"), n_documents=150)
        pymupdf = campaign.run_parser(registry.get("pymupdf"), n_documents=150)
        assert nougat.throughput_docs_per_s < adaparse.throughput_docs_per_s < pymupdf.throughput_docs_per_s
        # Paper: AdaParse ≈ an order of magnitude faster than the ViT parser alone.
        assert adaparse.throughput_docs_per_s / nougat.throughput_docs_per_s > 5

    def test_adaparse_ft_faster_than_llm(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        ft = campaign.run_adaparse(registry, FT_VARIANT_CONFIG, 200, engine_name="adaparse_ft")
        llm = campaign.run_adaparse(registry, LLM_VARIANT_CONFIG, 200, engine_name="adaparse_llm")
        assert ft.throughput_docs_per_s >= llm.throughput_docs_per_s


class TestScalingShapes:
    def test_nougat_scales_with_nodes(self, registry):
        results = node_sweep(registry.get("nougat"), [1, 4], docs_per_node=40)
        assert results[1].throughput_docs_per_s > 2.5 * results[0].throughput_docs_per_s

    def test_marker_scaling_saturates(self, registry):
        results = node_sweep(registry.get("marker"), [1, 16], docs_per_node=20)
        speedup = results[1].throughput_docs_per_s / results[0].throughput_docs_per_s
        assert speedup < 8  # far below the 16× ideal: the coordination stage binds

    def test_extraction_hits_filesystem_plateau(self, registry):
        results = node_sweep(registry.get("pymupdf"), [8, 64], docs_per_node=150)
        speedup = results[1].throughput_docs_per_s / results[0].throughput_docs_per_s
        assert speedup < 6  # far below the 8× ideal: shared-FS delivery binds


class TestProfiler:
    def test_profile_from_campaign(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        result = campaign.run_parser(registry.get("nougat"), n_documents=30)
        assert result.gpu_profile is not None
        means = result.gpu_profile.per_gpu_means()
        assert len(means) == 4
        assert all(0.0 <= v <= 1.0 for v in means.values())
        rows = result.gpu_profile.series()
        assert rows and {"gpu", "t_start", "t_end", "utilization"} <= set(rows[0])

    def test_binned_utilization_bounds(self):
        sim = DiscreteEventSimulator()
        gpu = GpuDevice(sim, "g")
        gpu.record_busy(0.0, 10.0)
        profile = profile_gpus([gpu], horizon=10.0, n_bins=5)
        np.testing.assert_allclose(profile.timelines[0].utilization, 1.0)
        assert profile.mean_utilization() == pytest.approx(1.0)
