"""Tests for the discrete-event engine and capacity resources."""

from __future__ import annotations

import pytest

from repro.hpc.events import DiscreteEventSimulator
from repro.hpc.resources import CapacityResource, GpuDevice, NodeResources


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = DiscreteEventSimulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]
        assert sim.now == pytest.approx(2.0)

    def test_ties_broken_by_schedule_order(self):
        sim = DiscreteEventSimulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_nested_scheduling(self):
        sim = DiscreteEventSimulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(3.0, lambda: times.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 4.0]

    def test_negative_delay_rejected(self):
        sim = DiscreteEventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until(self):
        sim = DiscreteEventSimulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1

    def test_cannot_schedule_in_past(self):
        sim = DiscreteEventSimulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()


class TestCapacityResource:
    def test_grants_up_to_capacity_then_queues(self):
        sim = DiscreteEventSimulator()
        resource = CapacityResource(sim, capacity=2)
        granted = []
        for i in range(4):
            resource.acquire(lambda i=i: granted.append(i))
        sim.run()
        assert granted == [0, 1]
        assert resource.queue_length == 2
        resource.release()
        sim.run()
        assert granted == [0, 1, 2]

    def test_release_without_acquire_rejected(self):
        sim = DiscreteEventSimulator()
        resource = CapacityResource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_utilization_accounting(self):
        sim = DiscreteEventSimulator()
        resource = CapacityResource(sim, capacity=1)

        def hold():
            sim.schedule(10.0, resource.release)

        resource.acquire(hold)
        sim.run()
        assert resource.utilization(over_time=10.0) == pytest.approx(1.0, abs=1e-6)

    def test_mean_wait_positive_under_contention(self):
        sim = DiscreteEventSimulator()
        resource = CapacityResource(sim, capacity=1)

        def task():
            sim.schedule(5.0, resource.release)

        resource.acquire(task)
        resource.acquire(task)
        sim.run()
        assert resource.mean_wait() > 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CapacityResource(DiscreteEventSimulator(), capacity=0)


class TestNodeAndGpu:
    def test_round_robin_gpu_assignment(self):
        sim = DiscreteEventSimulator()
        node = NodeResources(sim, "node0", cpu_cores=4, n_gpus=2)
        picks = [node.any_gpu().gpu_id for _ in range(4)]
        assert picks == ["node0/gpu0", "node0/gpu1", "node0/gpu0", "node0/gpu1"]

    def test_gpu_busy_interval_recording(self):
        sim = DiscreteEventSimulator()
        gpu = GpuDevice(sim, "g0")
        gpu.record_busy(0.0, 5.0, "compute")
        gpu.record_busy(5.0, 5.0, "zero-length ignored")
        assert len(gpu.intervals) == 1
        assert gpu.utilization(over_time=10.0) == pytest.approx(0.5)

    def test_node_without_gpus(self):
        sim = DiscreteEventSimulator()
        node = NodeResources(sim, "node0", cpu_cores=4, n_gpus=0)
        with pytest.raises(RuntimeError):
            node.any_gpu()
        assert node.gpu_utilizations() == []
