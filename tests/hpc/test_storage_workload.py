"""Tests for the shared-filesystem model and the workload builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FT_VARIANT_CONFIG
from repro.hpc.events import DiscreteEventSimulator
from repro.hpc.storage import NodeLocalStore, SharedFilesystem, SharedFilesystemConfig
from repro.hpc.workload import WorkloadModel, make_archives
from repro.parsers.registry import default_registry


class TestSharedFilesystem:
    def test_read_completes_after_transfer_time(self):
        sim = DiscreteEventSimulator()
        fs = SharedFilesystem(sim, SharedFilesystemConfig(per_stream_bandwidth_mb_s=100, request_latency_s=0.0))
        done = []
        fs.read(200.0, lambda: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(2.0)
        assert fs.bytes_read == 200.0

    def test_contention_queues_beyond_stream_capacity(self):
        config = SharedFilesystemConfig(
            per_stream_bandwidth_mb_s=100, max_concurrent_streams=2, request_latency_s=0.0
        )
        sim = DiscreteEventSimulator()
        fs = SharedFilesystem(sim, config)
        completion_times = []
        for _ in range(4):
            fs.read(100.0, lambda: completion_times.append(sim.now))
        sim.run()
        assert completion_times[:2] == [pytest.approx(1.0)] * 2
        assert completion_times[2:] == [pytest.approx(2.0)] * 2

    def test_write_accounting(self):
        sim = DiscreteEventSimulator()
        fs = SharedFilesystem(sim)
        fs.write(10.0, lambda: None)
        sim.run()
        assert fs.bytes_written == 10.0

    def test_negative_size_rejected(self):
        fs = SharedFilesystem(DiscreteEventSimulator())
        with pytest.raises(ValueError):
            fs.read(-1.0, lambda: None)


class TestNodeLocalStore:
    def test_stage_and_evict(self):
        store = NodeLocalStore(capacity_mb=100)
        assert store.stage(60)
        assert not store.stage(60)
        store.evict(30)
        assert store.stage(60)
        assert store.peak_mb == pytest.approx(90)

    def test_evict_returns_freed_and_counts(self):
        store = NodeLocalStore(capacity_mb=100)
        store.stage(50)
        assert store.evict(20) == pytest.approx(20)
        assert store.evict(30) == pytest.approx(30)
        assert store.evictions == 2
        assert store.used_mb == pytest.approx(0.0)

    def test_over_eviction_warns_instead_of_silently_clamping(self):
        store = NodeLocalStore(capacity_mb=100)
        store.stage(10)
        with pytest.warns(RuntimeWarning, match="over-eviction"):
            freed = store.evict(25)
        assert freed == pytest.approx(10)
        assert store.used_mb == pytest.approx(0.0)
        assert store.evictions == 1

    def test_negative_eviction_rejected(self):
        store = NodeLocalStore(capacity_mb=100)
        with pytest.raises(ValueError):
            store.evict(-1)


class TestWorkloadModel:
    def test_tasks_for_parser(self, registry):
        model = WorkloadModel(seed=3)
        tasks = model.tasks_for_parser(registry.get("nougat"), 50)
        assert len(tasks) == 50
        assert all(t.needs_gpu for t in tasks)
        assert all(t.cpu_seconds >= 0 and t.gpu_seconds > 0 for t in tasks)
        assert all(t.input_mb > 0 for t in tasks)

    def test_tasks_deterministic(self, registry):
        model = WorkloadModel(seed=3)
        a = model.tasks_for_parser(registry.get("pymupdf"), 10)
        b = model.tasks_for_parser(registry.get("pymupdf"), 10)
        assert [t.cpu_seconds for t in a] == [t.cpu_seconds for t in b]

    def test_adaparse_mix_respects_alpha(self, registry):
        model = WorkloadModel(seed=5)
        tasks = model.tasks_for_adaparse(
            registry.get("pymupdf"), registry.get("nougat"), FT_VARIANT_CONFIG, 200
        )
        routed = sum(1 for t in tasks if t.gpu_seconds > FT_VARIANT_CONFIG.selection_gpu_seconds)
        assert routed == int(np.floor(FT_VARIANT_CONFIG.alpha * 200))

    def test_tasks_from_results(self, registry, tiny_corpus):
        parser = registry.get("pymupdf")
        results = parser.parse_many(list(tiny_corpus))
        model = WorkloadModel()
        tasks = model.tasks_from_results(results, [d.n_pages for d in tiny_corpus])
        assert len(tasks) == len(tiny_corpus)
        assert all(t.cpu_seconds > 0 for t in tasks)


class TestArchives:
    def test_make_archives_chunks(self, registry):
        tasks = WorkloadModel().tasks_for_parser(registry.get("pymupdf"), 25)
        archives = make_archives(tasks, docs_per_archive=10)
        assert [a.n_documents for a in archives] == [10, 10, 5]
        assert sum(a.size_mb for a in archives) == pytest.approx(sum(t.input_mb for t in tasks))

    def test_invalid_archive_size(self):
        with pytest.raises(ValueError):
            make_archives([], docs_per_archive=0)
