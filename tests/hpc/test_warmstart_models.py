"""Tests of model-identity-aware warm starting and the AdaParse task mix.

Warm starting must be keyed on the *model* a GPU phase needs, not on the name
of the engine submitting the task: the AdaParse (LLM) variant keeps both the
selector LLM and the ViT parser resident, and neither may silently skip the
other's load time.
"""

from __future__ import annotations

import pytest

from repro.core.config import FT_VARIANT_CONFIG, LLM_VARIANT_CONFIG
from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.hpc.workload import SELECTOR_MODEL_LOAD_SECONDS, ParseTask, WorkloadModel
from repro.parsers.registry import default_registry


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def gpu_task(doc_id: str, gpu_model: str | None, load_seconds: float = 5.0) -> ParseTask:
    return ParseTask(
        doc_id=doc_id,
        parser_name="engine",
        cpu_seconds=0.05,
        gpu_seconds=0.5,
        model_load_seconds=load_seconds,
        gpu_model=gpu_model,
        input_mb=0.5,
        output_mb=0.01,
    )


class TestWarmStartModelIdentity:
    def _campaign(self, warm: bool) -> ParsingCampaign:
        return ParsingCampaign(CampaignConfig(n_nodes=1, gpus_per_node=1, warm_start=warm))

    def test_same_model_loaded_once_when_warm(self):
        tasks = [gpu_task(f"d{i}", gpu_model="vit") for i in range(6)]
        result = self._campaign(warm=True).run_tasks("engine", tasks)
        assert result.model_loads == 1

    def test_same_model_reloaded_every_task_when_cold(self):
        tasks = [gpu_task(f"d{i}", gpu_model="vit") for i in range(6)]
        result = self._campaign(warm=False).run_tasks("engine", tasks)
        assert result.model_loads == 6

    def test_distinct_models_each_pay_their_load_once(self):
        # Alternating selector/ViT tasks under one engine name: two loads total,
        # not one (engine-name keying) and not six (per-task reloads).
        tasks = [
            gpu_task(f"d{i}", gpu_model="selector" if i % 2 == 0 else "vit") for i in range(6)
        ]
        result = self._campaign(warm=True).run_tasks("engine", tasks)
        assert result.model_loads == 2

    def test_gpu_model_defaults_to_parser_name(self):
        tasks = [gpu_task(f"d{i}", gpu_model=None) for i in range(4)]
        result = self._campaign(warm=True).run_tasks("engine", tasks)
        assert result.model_loads == 1


class TestAdaParseTaskMix:
    def test_ft_variant_routes_alpha_fraction_to_gpu(self, registry):
        workload = WorkloadModel(seed=3)
        tasks = workload.tasks_for_adaparse(
            registry.get("pymupdf"), registry.get("nougat"), FT_VARIANT_CONFIG, 200,
            engine_name="adaparse_ft",
        )
        gpu_tasks = [t for t in tasks if t.needs_gpu]
        assert len(gpu_tasks) == int(FT_VARIANT_CONFIG.alpha * 200)
        assert all(t.gpu_model == "nougat" for t in gpu_tasks)
        assert all(t.gpu_model is None for t in tasks if not t.needs_gpu)

    def test_llm_variant_charges_selector_inference_everywhere(self, registry):
        workload = WorkloadModel(seed=3)
        tasks = workload.tasks_for_adaparse(
            registry.get("pymupdf"), registry.get("nougat"), LLM_VARIANT_CONFIG, 200,
            engine_name="adaparse_llm",
        )
        assert all(t.needs_gpu for t in tasks)
        routed = [t for t in tasks if t.gpu_model == "nougat"]
        selector_only = [t for t in tasks if t.gpu_model == "adaparse_llm-selector"]
        assert len(routed) == int(LLM_VARIANT_CONFIG.alpha * 200)
        assert len(routed) + len(selector_only) == 200
        assert all(
            t.model_load_seconds == pytest.approx(SELECTOR_MODEL_LOAD_SECONDS)
            for t in selector_only
        )
        # Routed documents still pay the ViT model load, never the selector's.
        assert all(t.model_load_seconds > SELECTOR_MODEL_LOAD_SECONDS for t in routed)

    def test_ft_variant_is_at_least_as_fast_as_llm_variant(self, registry):
        """Regression test for the Figure 5 ordering: skipping LLM inference
        (the FT variant) must not simulate slower than running it."""
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        ft = campaign.run_adaparse(registry, FT_VARIANT_CONFIG, 200, engine_name="adaparse_ft")
        llm = campaign.run_adaparse(registry, LLM_VARIANT_CONFIG, 200, engine_name="adaparse_llm")
        assert ft.throughput_docs_per_s >= llm.throughput_docs_per_s
        # Both sit well above an all-Nougat campaign.
        nougat = campaign.run_parser(registry.get("nougat"), n_documents=200)
        assert llm.throughput_docs_per_s > 2 * nougat.throughput_docs_per_s
