"""Tests of fault injection, retry, and quarantine in the executor/campaign."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.campaign import CampaignConfig, ParsingCampaign
from repro.hpc.faults import AttemptOutcome, FaultInjector, FaultModel, RetryPolicy
from repro.hpc.workload import ParseTask
from repro.parsers.registry import default_registry


def make_task(doc_id: str = "doc-0", gpu: float = 0.0) -> ParseTask:
    return ParseTask(
        doc_id=doc_id,
        parser_name="pymupdf",
        cpu_seconds=0.2,
        gpu_seconds=gpu,
        input_mb=1.0,
        output_mb=0.01,
    )


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultModel(corrupted_document_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(transient_failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultModel(straggler_multiplier=0.5)

    def test_injects_anything(self):
        assert not FaultModel().injects_anything
        assert FaultModel(transient_failure_rate=0.1).injects_anything
        assert FaultModel(corrupted_document_rate=0.1).injects_anything
        assert FaultModel(straggler_rate=0.1).injects_anything


class TestRetryPolicy:
    def test_min_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        assert RetryPolicy(max_attempts=1).max_attempts == 1


class TestFaultInjector:
    def test_no_faults_means_always_success(self):
        injector = FaultInjector(FaultModel())
        for attempt in range(1, 5):
            outcome = injector.attempt_outcome(make_task(), attempt)
            assert outcome.succeeded
            assert outcome.runtime_multiplier == 1.0

    def test_decisions_are_deterministic(self):
        model = FaultModel(corrupted_document_rate=0.3, transient_failure_rate=0.3, straggler_rate=0.3)
        a = FaultInjector(model)
        b = FaultInjector(model)
        for i in range(20):
            task = make_task(doc_id=f"doc-{i}")
            assert a.attempt_outcome(task, 1) == b.attempt_outcome(task, 1)

    def test_corrupted_documents_fail_on_every_attempt(self):
        model = FaultModel(corrupted_document_rate=0.5, seed=3)
        injector = FaultInjector(model)
        corrupted = [
            make_task(doc_id=f"doc-{i}")
            for i in range(50)
            if injector.document_is_corrupted(make_task(doc_id=f"doc-{i}"))
        ]
        assert corrupted, "expected some corrupted documents at a 50% rate"
        for task in corrupted:
            for attempt in (1, 2, 3):
                assert injector.attempt_outcome(task, attempt).is_permanent

    def test_transient_failures_eventually_succeed(self):
        model = FaultModel(transient_failure_rate=0.4, seed=5)
        injector = FaultInjector(model)
        for i in range(30):
            task = make_task(doc_id=f"doc-{i}")
            outcomes = [injector.attempt_outcome(task, attempt) for attempt in range(1, 12)]
            assert any(o.succeeded for o in outcomes)

    def test_corrupted_rate_roughly_matches(self):
        model = FaultModel(corrupted_document_rate=0.2, seed=11)
        injector = FaultInjector(model)
        n = 500
        hits = sum(injector.document_is_corrupted(make_task(doc_id=f"d{i}")) for i in range(n))
        assert 0.1 < hits / n < 0.3

    def test_straggler_multiplier_applied(self):
        model = FaultModel(straggler_rate=1.0, straggler_multiplier=5.0)
        outcome = FaultInjector(model).attempt_outcome(make_task(), 1)
        assert outcome.runtime_multiplier == pytest.approx(5.0)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultModel()).attempt_outcome(make_task(), 0)

    def test_expected_attempts(self):
        assert FaultInjector(FaultModel(transient_failure_rate=0.5)).expected_attempts() == pytest.approx(2.0)
        assert FaultInjector(FaultModel()).expected_attempts() == pytest.approx(1.0)

    @given(rate=st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_outcomes_are_always_valid(self, rate):
        injector = FaultInjector(FaultModel(transient_failure_rate=rate, straggler_rate=rate))
        outcome = injector.attempt_outcome(make_task(), 1)
        assert isinstance(outcome, AttemptOutcome)
        assert outcome.outcome in ("success", "transient_failure", "permanent_failure")
        assert outcome.runtime_multiplier >= 1.0


class TestFaultTolerantCampaign:
    @pytest.fixture(scope="class")
    def registry(self):
        return default_registry()

    def test_fault_free_campaign_completes_everything(self, registry):
        campaign = ParsingCampaign(CampaignConfig(n_nodes=1))
        result = campaign.run_parser(registry.get("pymupdf"), n_documents=64)
        assert result.documents_completed == 64
        assert result.documents_failed == 0
        assert result.attempts_retried == 0
        assert result.completion_rate == pytest.approx(1.0)

    def test_transient_failures_are_retried_to_completion(self, registry):
        config = CampaignConfig(
            n_nodes=1,
            fault_model=FaultModel(transient_failure_rate=0.2, seed=7),
            retry=RetryPolicy(max_attempts=8),
        )
        result = ParsingCampaign(config).run_parser(registry.get("pymupdf"), n_documents=80)
        assert result.documents_completed == 80
        assert result.documents_failed == 0
        assert result.attempts_retried > 0
        assert result.wasted_compute_seconds > 0

    def test_corrupted_documents_are_quarantined_not_retried_forever(self, registry):
        config = CampaignConfig(
            n_nodes=1,
            fault_model=FaultModel(corrupted_document_rate=0.15, seed=9),
            retry=RetryPolicy(max_attempts=3),
        )
        result = ParsingCampaign(config).run_parser(registry.get("pymupdf"), n_documents=100)
        assert result.documents_failed > 0
        assert result.documents_completed + result.documents_failed == 100
        assert result.completion_rate < 1.0

    def test_no_retries_when_max_attempts_is_one(self, registry):
        config = CampaignConfig(
            n_nodes=1,
            fault_model=FaultModel(transient_failure_rate=0.3, seed=13),
            retry=RetryPolicy(max_attempts=1),
        )
        result = ParsingCampaign(config).run_parser(registry.get("pymupdf"), n_documents=60)
        assert result.attempts_retried == 0
        assert result.documents_failed > 0

    def test_faults_reduce_throughput(self, registry):
        clean = ParsingCampaign(CampaignConfig(n_nodes=1)).run_parser(
            registry.get("tesseract"), n_documents=48
        )
        faulty = ParsingCampaign(
            CampaignConfig(
                n_nodes=1,
                fault_model=FaultModel(transient_failure_rate=0.3, straggler_rate=0.2, seed=3),
                retry=RetryPolicy(max_attempts=5),
            )
        ).run_parser(registry.get("tesseract"), n_documents=48)
        assert faulty.throughput_docs_per_s < clean.throughput_docs_per_s
        assert faulty.documents_completed == 48

    def test_with_nodes_preserves_fault_configuration(self, registry):
        config = CampaignConfig(
            n_nodes=1, fault_model=FaultModel(transient_failure_rate=0.1), retry=RetryPolicy(max_attempts=2)
        )
        scaled = ParsingCampaign(config).with_nodes(4)
        assert scaled.config.fault_model == config.fault_model
        assert scaled.config.retry == config.retry
        assert scaled.config.n_nodes == 4
