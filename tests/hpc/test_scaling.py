"""Tests of the resource-scaling policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FT_VARIANT_CONFIG, LLM_VARIANT_CONFIG, AdaParseConfig
from repro.hpc.scaling import (
    adaparse_single_node_rate,
    estimate_single_node_rate,
    nodes_for_deadline,
    recommended_nodes,
    scaling_efficiency,
)
from repro.parsers.registry import default_registry


@pytest.fixture(scope="module")
def registry():
    return default_registry()


class TestSingleNodeRates:
    def test_extraction_much_faster_than_vit(self, registry):
        pymupdf = estimate_single_node_rate(registry.get("pymupdf"))
        nougat = estimate_single_node_rate(registry.get("nougat"))
        assert pymupdf > 50 * nougat

    def test_adaparse_rate_between_extraction_and_vit(self, registry):
        pymupdf = registry.get("pymupdf")
        nougat = registry.get("nougat")
        rate = adaparse_single_node_rate(pymupdf, nougat, FT_VARIANT_CONFIG)
        assert estimate_single_node_rate(nougat) < rate < estimate_single_node_rate(pymupdf)

    def test_adaparse_rate_close_to_paper_ratio(self, registry):
        """At α = 5 % the AdaParse mix should sit an order of magnitude above Nougat
        (the paper reports ≈17×)."""
        rate = adaparse_single_node_rate(
            registry.get("pymupdf"), registry.get("nougat"), LLM_VARIANT_CONFIG
        )
        nougat = estimate_single_node_rate(registry.get("nougat"))
        assert 5 < rate / nougat < 60

    def test_rate_decreases_with_alpha(self, registry):
        pymupdf, nougat = registry.get("pymupdf"), registry.get("nougat")
        low = adaparse_single_node_rate(pymupdf, nougat, AdaParseConfig(alpha=0.02))
        high = adaparse_single_node_rate(pymupdf, nougat, AdaParseConfig(alpha=0.5))
        assert low > high


class TestNodesForDeadline:
    def test_single_node_suffices_for_small_campaign(self):
        estimate = nodes_for_deadline(n_documents=1000, single_node_rate=10.0, deadline_hours=1.0)
        assert estimate.n_nodes == 1
        assert estimate.meets_deadline

    def test_more_nodes_needed_for_tight_deadline(self):
        loose = nodes_for_deadline(n_documents=1_000_000, single_node_rate=10.0, deadline_hours=48.0)
        tight = nodes_for_deadline(n_documents=1_000_000, single_node_rate=10.0, deadline_hours=4.0)
        assert tight.n_nodes > loose.n_nodes
        assert tight.meets_deadline

    def test_infeasible_deadline_reports_not_met(self):
        estimate = nodes_for_deadline(
            n_documents=10_000_000, single_node_rate=1.0, deadline_hours=0.1, max_nodes=16
        )
        assert estimate.n_nodes == 16
        assert not estimate.meets_deadline

    def test_efficiency_curve_inflates_node_count(self):
        perfect = nodes_for_deadline(
            n_documents=500_000, single_node_rate=10.0, deadline_hours=2.0
        )
        degraded = nodes_for_deadline(
            n_documents=500_000,
            single_node_rate=10.0,
            deadline_hours=2.0,
            efficiency_curve={1: 1.0, 8: 0.8, 64: 0.4},
        )
        assert degraded.n_nodes >= perfect.n_nodes

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            nodes_for_deadline(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            nodes_for_deadline(10, 0.0, 1.0)
        with pytest.raises(ValueError):
            nodes_for_deadline(10, 1.0, 0.0)
        with pytest.raises(ValueError):
            nodes_for_deadline(10, 1.0, 1.0, max_nodes=0)

    @given(
        n_documents=st.integers(min_value=100, max_value=10_000_000),
        rate=st.floats(min_value=0.1, max_value=500.0),
        deadline=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_estimate_is_consistent(self, n_documents, rate, deadline):
        estimate = nodes_for_deadline(n_documents, rate, deadline, max_nodes=256)
        assert 1 <= estimate.n_nodes <= 256
        assert estimate.expected_hours > 0
        assert estimate.expected_node_hours == pytest.approx(
            estimate.expected_hours * estimate.n_nodes
        )
        if estimate.meets_deadline:
            assert estimate.expected_hours <= deadline + 1e-9


class TestScalingEfficiency:
    def test_perfect_linear_scaling(self):
        efficiency = scaling_efficiency([1, 2, 4], [10.0, 20.0, 40.0])
        assert efficiency == {1: 1.0, 2: 1.0, 4: 1.0}

    def test_saturation_reduces_efficiency(self):
        efficiency = scaling_efficiency([1, 16, 128], [10.0, 150.0, 300.0])
        assert efficiency[1] == pytest.approx(1.0)
        assert efficiency[16] == pytest.approx(150.0 / 160.0)
        assert efficiency[128] < 0.3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            scaling_efficiency([1, 2], [10.0])

    def test_recommended_nodes_picks_knee(self):
        node_counts = [1, 2, 4, 8, 16, 32]
        throughputs = [10.0, 19.0, 38.0, 70.0, 90.0, 95.0]
        assert recommended_nodes(node_counts, throughputs, efficiency_floor=0.8) == 8
        assert recommended_nodes(node_counts, throughputs, efficiency_floor=0.5) == 16

    def test_recommended_nodes_falls_back_to_smallest(self):
        # Nothing clears a floor of 1.0 except the base point itself; a curve
        # that degrades immediately recommends the smallest measured count.
        assert recommended_nodes([2, 4], [10.0, 11.0], efficiency_floor=0.99) == 2

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValueError):
            recommended_nodes([1, 2], [1.0, 2.0], efficiency_floor=0.0)

    def test_empty_sweep(self):
        assert scaling_efficiency([], []) == {}
