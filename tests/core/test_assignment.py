"""Tests of the generalized multi-parser budget assignment solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import (
    AssignmentPlan,
    cost_matrix_for_documents,
    exhaustive_assignment,
    greedy_assignment,
    lagrangian_assignment,
    plan_campaign_assignment,
)
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.registry import default_registry


def small_problem():
    """Three documents, three parsers: cheap/medium/expensive columns."""
    accuracy = np.array(
        [
            [0.40, 0.55, 0.90],
            [0.80, 0.82, 0.85],
            [0.10, 0.60, 0.65],
        ]
    )
    costs = np.array(
        [
            [1.0, 3.0, 10.0],
            [1.0, 3.0, 10.0],
            [1.0, 3.0, 10.0],
        ]
    )
    return accuracy, costs


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            greedy_assignment(np.zeros((2, 2)), np.zeros((2, 3)), budget=10.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            greedy_assignment(np.zeros((1, 2)), np.array([[-1.0, 1.0]]), budget=10.0)

    def test_one_dimensional_input_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            greedy_assignment(np.zeros(3), np.zeros(3), budget=1.0)

    def test_parser_name_length_checked(self):
        accuracy, costs = small_problem()
        with pytest.raises(ValueError, match="parser_names"):
            greedy_assignment(accuracy, costs, budget=10.0, parser_names=["a", "b"])

    def test_empty_problem(self):
        plan = greedy_assignment(np.zeros((0, 2)), np.zeros((0, 2)), budget=5.0)
        assert plan.n_documents == 0
        assert plan.feasible


class TestGreedyAssignment:
    def test_everything_cheap_when_budget_is_tight(self):
        accuracy, costs = small_problem()
        plan = greedy_assignment(accuracy, costs, budget=3.0)
        assert plan.total_cost <= 3.0
        assert plan.chosen_parsers() == ["parser-0"] * 3

    def test_upgrades_highest_gain_per_cost_first(self):
        accuracy, costs = small_problem()
        # Budget 14 allows one expensive upgrade (doc 0, +0.5 gain for +9 cost)
        # or two medium upgrades; greedy prefers doc 2's medium upgrade
        # (+0.5 for +2) and then doc 0's medium upgrade (+0.15 for +2).
        plan = greedy_assignment(accuracy, costs, budget=14.0)
        assert plan.feasible
        chosen = plan.chosen_parsers()
        assert chosen[2] != "parser-0"  # the obviously valuable upgrade happened
        assert plan.total_cost <= 14.0

    def test_unlimited_budget_takes_best_parser_everywhere(self):
        accuracy, costs = small_problem()
        plan = greedy_assignment(accuracy, costs, budget=1e9)
        rows = np.arange(3)
        assert np.allclose(
            accuracy[rows, plan.assignment], accuracy.max(axis=1)
        )

    def test_infeasible_budget_falls_back_to_cheapest(self):
        accuracy, costs = small_problem()
        plan = greedy_assignment(accuracy, costs, budget=1.0)
        assert not plan.feasible
        assert plan.chosen_parsers() == ["parser-0"] * 3

    def test_accuracy_tie_breaks_to_cheaper_parser(self):
        # Two parsers with identical accuracy: spending more buys nothing,
        # so the (exact, tiny-instance) plan must pick the cheaper one.
        accuracy = np.array([[0.9, 0.9, 0.5]])
        costs = np.array([[100.0, 50.0, 1.0]])
        plan = greedy_assignment(accuracy, costs, budget=200.0)
        assert plan.chosen_parsers() == ["parser-1"]
        assert plan.total_cost == pytest.approx(50.0)

    def test_free_upgrade_taken(self):
        # Second parser is both better and no more expensive.
        accuracy = np.array([[0.2, 0.9]])
        costs = np.array([[1.0, 1.0]])
        plan = greedy_assignment(accuracy, costs, budget=1.0)
        assert plan.chosen_parsers() == ["parser-1"]

    def test_two_parser_uniform_cost_reduces_to_alpha_rule(self):
        """With uniform costs the greedy picks the top-k improvement documents,
        exactly like the Appendix C two-parser rule."""
        rng = np.random.default_rng(7)
        n = 40
        default_acc = rng.uniform(0.3, 0.7, size=n)
        improvement = rng.uniform(-0.1, 0.3, size=n)
        accuracy = np.stack([default_acc, default_acc + improvement], axis=1)
        costs = np.stack([np.full(n, 1.0), np.full(n, 21.0)], axis=1)
        alpha = 0.1
        budget = n * 1.0 + alpha * n * 20.0  # room for exactly 10% upgrades
        plan = greedy_assignment(accuracy, costs, budget)
        upgraded = np.flatnonzero(plan.assignment == 1)
        k = int(np.floor(alpha * n))
        expected = set(np.argsort(improvement)[::-1][:k][improvement[np.argsort(improvement)[::-1][:k]] > 0])
        assert set(upgraded.tolist()) == expected


class TestLagrangianAssignment:
    def test_feasible_and_reasonable(self):
        accuracy, costs = small_problem()
        plan = lagrangian_assignment(accuracy, costs, budget=14.0)
        assert plan.feasible
        cheapest_accuracy = accuracy[:, 0].sum()
        assert plan.total_accuracy >= cheapest_accuracy

    def test_unlimited_budget_matches_best(self):
        accuracy, costs = small_problem()
        plan = lagrangian_assignment(accuracy, costs, budget=1e9)
        assert plan.total_accuracy == pytest.approx(accuracy.max(axis=1).sum())

    def test_infeasible_budget_returns_cheapest(self):
        accuracy, costs = small_problem()
        plan = lagrangian_assignment(accuracy, costs, budget=0.5)
        assert not plan.feasible
        assert plan.total_cost == pytest.approx(3.0)


class TestAgainstExhaustiveOracle:
    @given(
        n_docs=st.integers(min_value=1, max_value=5),
        n_parsers=st.integers(min_value=2, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        budget_scale=st.floats(min_value=0.1, max_value=1.2),
    )
    @settings(max_examples=40, deadline=None)
    def test_solvers_are_feasible_and_close_to_optimal(self, n_docs, n_parsers, seed, budget_scale):
        rng = np.random.default_rng(seed)
        accuracy = rng.uniform(0.0, 1.0, size=(n_docs, n_parsers))
        costs = rng.uniform(0.1, 5.0, size=(n_docs, n_parsers))
        min_cost = costs.min(axis=1).sum()
        max_cost = costs.max(axis=1).sum()
        budget = min_cost + budget_scale * (max_cost - min_cost)
        optimum = exhaustive_assignment(accuracy, costs, budget)
        greedy = greedy_assignment(accuracy, costs, budget)
        lagrangian = lagrangian_assignment(accuracy, costs, budget)
        assert greedy.feasible and lagrangian.feasible
        assert greedy.total_cost <= budget + 1e-9
        assert lagrangian.total_cost <= budget + 1e-9
        # Both heuristics must stay within a modest gap of the true optimum.
        assert greedy.total_accuracy >= optimum.total_accuracy - 0.35
        assert lagrangian.total_accuracy >= optimum.total_accuracy - 0.35
        # And never beat it (sanity of the oracle).
        assert greedy.total_accuracy <= optimum.total_accuracy + 1e-9
        assert lagrangian.total_accuracy <= optimum.total_accuracy + 1e-9

    def test_heuristic_paths_with_exact_shortcut_disabled(self, monkeypatch):
        """The heuristics themselves (not the tiny-instance exact shortcut)
        must keep their invariants: feasibility, budget respect, never beating
        the oracle, and never doing worse than the all-cheapest baseline."""
        from repro.core import assignment as assignment_module

        monkeypatch.setattr(assignment_module, "_EXACT_ENUMERATION_LIMIT", 0)
        for seed in range(30):
            rng = np.random.default_rng(seed)
            n_docs = int(rng.integers(1, 6))
            n_parsers = int(rng.integers(2, 4))
            accuracy = rng.uniform(0.0, 1.0, size=(n_docs, n_parsers))
            costs = rng.uniform(0.1, 5.0, size=(n_docs, n_parsers))
            min_cost = costs.min(axis=1).sum()
            max_cost = costs.max(axis=1).sum()
            budget = min_cost + float(rng.uniform(0.1, 1.2)) * (max_cost - min_cost)
            optimum = exhaustive_assignment(accuracy, costs, budget)
            baseline = accuracy[np.arange(n_docs), np.argmin(costs, axis=1)].sum()
            for solver in (greedy_assignment, lagrangian_assignment):
                plan = solver(accuracy, costs, budget)
                assert plan.feasible
                assert plan.total_cost <= budget + 1e-9
                assert plan.total_accuracy <= optimum.total_accuracy + 1e-9
                assert plan.total_accuracy >= baseline - 1e-9

    def test_exhaustive_guard_on_problem_size(self):
        with pytest.raises(ValueError, match="limited"):
            exhaustive_assignment(np.zeros((11, 2)), np.ones((11, 2)), budget=1.0)


class TestAssignmentPlan:
    def test_fraction_by_parser(self):
        plan = AssignmentPlan(
            assignment=np.array([0, 0, 1, 2]),
            parser_names=["a", "b", "c"],
            total_accuracy=1.0,
            total_cost=1.0,
            budget=2.0,
            feasible=True,
        )
        fractions = plan.fraction_by_parser()
        assert fractions == {"a": 0.5, "b": 0.25, "c": 0.25}

    def test_summary_shape(self):
        accuracy, costs = small_problem()
        plan = greedy_assignment(accuracy, costs, budget=5.0)
        summary = plan.summary()
        assert {"n_documents", "total_accuracy", "total_cost", "budget", "feasible"} <= set(summary)


class TestCampaignPlanning:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_corpus(CorpusConfig(n_documents=12, seed=91, min_pages=2, max_pages=6))

    def test_cost_matrix_shape_and_ordering(self, corpus):
        registry = default_registry()
        matrix, names = cost_matrix_for_documents(list(corpus), registry)
        assert matrix.shape == (len(corpus), len(registry))
        assert names == registry.names
        # ViT parsers cost more than extraction on every document.
        nougat = names.index("nougat")
        pymupdf = names.index("pymupdf")
        assert np.all(matrix[:, nougat] > matrix[:, pymupdf])

    def test_plan_campaign_assignment_respects_budget(self, corpus):
        registry = default_registry()
        documents = list(corpus)
        rng = np.random.default_rng(3)
        predicted = rng.uniform(0.2, 0.9, size=(len(documents), len(registry)))
        costs, _ = cost_matrix_for_documents(documents, registry)
        budget = costs.min(axis=1).sum() * 3.0
        for method in ("greedy", "lagrangian"):
            plan = plan_campaign_assignment(
                documents, predicted, registry, budget_seconds=budget, method=method
            )
            assert plan.feasible
            assert plan.total_cost <= budget + 1e-6

    def test_unknown_method_rejected(self, corpus):
        registry = default_registry()
        documents = list(corpus)
        predicted = np.zeros((len(documents), len(registry)))
        with pytest.raises(ValueError, match="unknown assignment method"):
            plan_campaign_assignment(documents, predicted, registry, 10.0, method="simplex")
