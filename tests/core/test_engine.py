"""Integration tests of the AdaParse engines and the training pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AdaParseConfig
from repro.core.engine import RoutingSummary
from repro.core.training import AdaParseTrainer, TrainerSettings
from repro.documents.augment import strip_text_layers
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.metrics.bleu import bleu_score
from repro.ml.pretrain import PretrainConfig
from repro.ml.quality_model import FineTuneConfig
from repro.ml.transformer import TransformerConfig
from repro.parsers.registry import default_registry


@pytest.fixture(scope="module")
def training_corpus():
    return build_corpus(CorpusConfig(n_documents=24, seed=314, min_pages=3, max_pages=7))


@pytest.fixture(scope="module")
def fast_settings() -> TrainerSettings:
    return TrainerSettings(
        label_pages=2,
        encoder_config=TransformerConfig(
            vocab_size=512, max_length=48, d_model=24, n_heads=2, n_layers=1, d_ff=32, lora_rank=2
        ),
        finetune_config=FineTuneConfig(n_epochs=2, lora_only=False),
        pretrain=False,
        pretrain_config=PretrainConfig(n_sentences=50, n_epochs=1),
        fasttext_config=__import__("repro.ml.fasttext", fromlist=["FastTextConfig"]).FastTextConfig(
            embedding_dim=24, n_buckets=1 << 11, n_epochs=8
        ),
    )


@pytest.fixture(scope="module")
def trained_ft(training_corpus, fast_settings):
    trainer = AdaParseTrainer(default_registry(), fast_settings)
    return trainer.train_ft(training_corpus)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaParseConfig(alpha=1.5)
        with pytest.raises(ValueError):
            AdaParseConfig(batch_size=0)
        with pytest.raises(ValueError):
            AdaParseConfig(improvement_margin=-0.1)

    def test_with_alpha(self):
        config = AdaParseConfig().with_alpha(0.2)
        assert config.alpha == 0.2
        assert config.default_parser == "pymupdf"


class TestEngineRouting:
    def test_budget_respected(self, trained_ft, training_corpus):
        documents = list(training_corpus)
        results, decisions = trained_ft.parse_with_telemetry(documents)
        assert len(results) == len(documents)
        summary = RoutingSummary(decisions=decisions)
        assert summary.fraction_routed() <= trained_ft.config.alpha + 1e-9

    def test_alpha_zero_never_routes(self, trained_ft, training_corpus):
        engine = type(trained_ft)(
            registry=trained_ft.registry,
            selector=trained_ft.selector,
            config=trained_ft.config.with_alpha(0.0),
            validator=trained_ft.validator,
            improvement_classifier=trained_ft.improvement_classifier,
        )
        _, decisions = engine.parse_with_telemetry(list(training_corpus))
        assert RoutingSummary(decisions=decisions).fraction_routed() == 0.0

    def test_results_follow_document_order(self, trained_ft, training_corpus):
        documents = list(training_corpus)
        results = trained_ft.parse_many(documents)
        assert [r.doc_id for r in results] == [d.doc_id for d in documents]
        assert all(r.parser_name == trained_ft.name for r in results)

    def test_missing_text_layer_routes_to_nougat(self, trained_ft, training_corpus):
        # Single-document parse() routes without a batch α constraint, unlike
        # parse_with_telemetry, whose per-batch cap floor(α·1) would be 0.
        stripped = strip_text_layers(training_corpus, fraction=1.0)
        doc = stripped[0]
        # parse() returns no telemetry since last_summary's removal; the
        # single-document routing path is asserted through _route_single.
        result, (decision,) = trained_ft._route_single(doc)
        assert decision.stage == "cls1_invalid"
        assert decision.chosen_parser == "nougat"
        assert result.text.strip()  # Nougat recovers text despite the missing layer

    def test_usage_includes_selection_overhead(self, trained_ft, training_corpus):
        doc = training_corpus[0]
        engine_result = trained_ft.parse(doc)
        default_result = trained_ft.registry.get("pymupdf").parse(doc)
        assert engine_result.usage.cpu_seconds >= default_result.usage.cpu_seconds

    def test_quality_not_worse_than_default_on_average(self, trained_ft, training_corpus):
        documents = list(training_corpus)
        engine_results = trained_ft.parse_many(documents)
        default = trained_ft.registry.get("pymupdf")
        engine_bleu, default_bleu = [], []
        for doc, result in zip(documents, engine_results):
            gt = doc.ground_truth_text()
            engine_bleu.append(bleu_score(result.text, gt))
            default_bleu.append(bleu_score(default.parse(doc).text, gt))
        assert np.mean(engine_bleu) >= np.mean(default_bleu) - 0.01

    def test_counts_by_stage_consistent(self, trained_ft, training_corpus):
        _, decisions = trained_ft.parse_with_telemetry(list(training_corpus))
        counts = RoutingSummary(decisions=decisions).counts_by_stage()
        assert sum(counts.values()) == len(training_corpus)


class TestTrainerLLM:
    def test_train_llm_with_dpo(self, training_corpus, fast_settings):
        from repro.ml.dpo import PreferencePair

        trainer = AdaParseTrainer(default_registry(), fast_settings)
        pairs = [
            PreferencePair("d1", "clean robust catalyst analysis text", "c l e a n rbsout ctaalyst"),
            PreferencePair("d2", "the framework demonstrates results", "teh frmaework dmonstrtes"),
        ]
        engine = trainer.train_llm(training_corpus, preference_pairs=pairs)
        assert trainer.artifacts is not None
        assert trainer.artifacts.dpo_trainer is not None
        results, decisions = engine.parse_with_telemetry(list(training_corpus)[:6])
        assert len(results) == 6
        summary = RoutingSummary(decisions=decisions)
        assert summary.fraction_routed() <= engine.config.alpha + 1e-9

    def test_unknown_parser_names_rejected(self, trained_ft):
        with pytest.raises(KeyError):
            type(trained_ft)(
                registry=trained_ft.registry.subset(["pymupdf"]),
                selector=trained_ft.selector,
                config=trained_ft.config,
            )
