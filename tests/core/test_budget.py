"""Tests for the α-constrained budget optimiser (Appendix C)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.budget import (
    alpha_for_budget,
    budget_for_alpha,
    optimality_gap,
    select_within_budget,
)

improvement_lists = st.lists(
    st.floats(min_value=-0.5, max_value=0.8, allow_nan=False), min_size=0, max_size=200
)


class TestAlphaForBudget:
    def test_closed_form(self):
        # 100 documents, default costs 1 s, expensive costs 11 s, budget 150 s:
        # α ≤ (150 − 100) / (100 · 10) = 0.05
        assert alpha_for_budget(150, 100, 1.0, 11.0) == pytest.approx(0.05)

    def test_budget_below_default_cost_gives_zero(self):
        assert alpha_for_budget(50, 100, 1.0, 11.0) == 0.0

    def test_budget_above_all_expensive_gives_one(self):
        assert alpha_for_budget(10_000, 100, 1.0, 11.0) == 1.0

    def test_round_trip_with_budget_for_alpha(self):
        total = budget_for_alpha(0.05, 100, 1.0, 11.0)
        assert alpha_for_budget(total, 100, 1.0, 11.0) == pytest.approx(0.05)

    def test_cheap_expensive_parser(self):
        assert alpha_for_budget(10, 100, 1.0, 0.5) == 1.0

    def test_invalid_document_count(self):
        with pytest.raises(ValueError):
            alpha_for_budget(10, 0, 1.0, 2.0)


class TestSelectWithinBudget:
    def test_selects_top_improvements(self):
        improvements = [0.1, 0.5, 0.0, 0.4, 0.2]
        plan = select_within_budget(improvements, alpha=0.4)
        assert plan.n_expensive == 2
        assert plan.route_expensive[1] and plan.route_expensive[3]

    def test_alpha_zero_routes_nothing(self):
        plan = select_within_budget([0.5, 0.9], alpha=0.0)
        assert plan.n_expensive == 0

    def test_margin_excludes_small_gains(self):
        plan = select_within_budget([0.01, 0.02, 0.9], alpha=1.0, margin=0.05)
        assert plan.n_expensive == 1

    def test_per_batch_cap(self):
        improvements = [0.9] * 10 + [0.0] * 10
        plan = select_within_budget(improvements, alpha=0.2, batch_size=10)
        # 20 % per batch of 10 → 2 in the first batch, 0 in the second (no gain).
        assert plan.route_expensive[:10].sum() == 2
        assert plan.route_expensive[10:].sum() == 0

    def test_empty_input(self):
        plan = select_within_budget([], alpha=0.5)
        assert plan.n_expensive == 0
        assert plan.expensive_fraction == 0.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            select_within_budget([0.1], alpha=1.5)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            select_within_budget([0.1], alpha=0.5, batch_size=0)

    def test_infinite_scores_prioritised(self):
        improvements = np.array([0.3, np.inf, 0.5, 0.1])
        plan = select_within_budget(improvements, alpha=0.25)
        assert plan.route_expensive[1]

    @settings(max_examples=60, deadline=None)
    @given(improvement_lists, st.floats(min_value=0, max_value=1))
    def test_fraction_never_exceeds_alpha(self, improvements, alpha):
        plan = select_within_budget(improvements, alpha=alpha)
        assert plan.n_expensive <= int(np.floor(alpha * len(improvements)))

    @settings(max_examples=60, deadline=None)
    @given(improvement_lists, st.floats(min_value=0, max_value=1), st.integers(min_value=1, max_value=32))
    def test_batched_fraction_never_exceeds_alpha_per_batch(self, improvements, alpha, batch_size):
        plan = select_within_budget(improvements, alpha=alpha, batch_size=batch_size)
        routed = plan.route_expensive
        for start in range(0, len(improvements), batch_size):
            chunk = routed[start : start + batch_size]
            assert chunk.sum() <= int(np.floor(alpha * len(chunk)))

    @settings(max_examples=40, deadline=None)
    @given(improvement_lists, st.floats(min_value=0, max_value=1))
    def test_never_routes_non_positive_improvements(self, improvements, alpha):
        plan = select_within_budget(improvements, alpha=alpha, margin=0.0)
        scores = np.asarray(improvements)
        if plan.n_expensive:
            assert scores[plan.route_expensive].min() > 0


class TestOptimalityGap:
    def test_gap_zero_for_global_batch(self):
        improvements = np.linspace(0, 1, 100)
        assert optimality_gap(improvements, alpha=0.1, batch_size=100) == pytest.approx(0.0)

    def test_gap_small_for_large_batches(self):
        rng = np.random.default_rng(0)
        improvements = rng.random(1024)
        gap = optimality_gap(improvements, alpha=0.05, batch_size=256)
        assert 0.0 <= gap < 0.15

    def test_gap_larger_for_tiny_batches(self):
        rng = np.random.default_rng(1)
        improvements = rng.random(1024)
        tiny = optimality_gap(improvements, alpha=0.05, batch_size=8)
        large = optimality_gap(improvements, alpha=0.05, batch_size=512)
        assert tiny >= large
