"""Tests for the three classification stages (CLS I, II, III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cls1 import (
    ValidationClassifier,
    ValidationConfig,
    calibrate_validation_threshold,
)
from repro.core.cls2 import ImprovementClassifier, ImprovementLabeling
from repro.core.cls3 import ParserSelector
from repro.documents.metadata import sample_metadata
from repro.ml.fasttext import FastTextConfig
from repro.ml.quality_model import ParserQualityPredictor

VALID_TEXT = (
    "The robust framework demonstrates a significant result in the catalyst analysis. "
    "Moreover, the systematic experiment validates the adaptive mechanism across the "
    "polymerization dataset with respect to the measured yield and observed variance. "
) * 4
_scramble_rng = np.random.default_rng(99)
SCRAMBLED_TEXT = __import__("repro.documents.noise", fromlist=["scramble_layer"]).scramble_layer(
    VALID_TEXT, _scramble_rng
)
WHITESPACE_TEXT = " ".join(list("the robust framework demonstrates a significant result")) * 10


class TestValidationClassifier:
    def test_valid_text_accepted(self):
        verdict = ValidationClassifier().validate(VALID_TEXT, n_pages=1)
        assert verdict.is_valid
        assert verdict.reasons == ()

    def test_empty_text_rejected(self):
        verdict = ValidationClassifier().validate("", n_pages=3)
        assert not verdict.is_valid
        assert "too short" in verdict.reasons[0]

    def test_scrambled_text_rejected(self):
        assert not ValidationClassifier().is_valid(SCRAMBLED_TEXT)

    def test_whitespace_injected_text_rejected(self):
        assert not ValidationClassifier().is_valid(WHITESPACE_TEXT)

    def test_too_few_words_per_page(self):
        verdict = ValidationClassifier().validate(VALID_TEXT, n_pages=100)
        assert not verdict.is_valid

    def test_batch_interface(self):
        verdicts = ValidationClassifier().validate_batch([VALID_TEXT, ""])
        assert verdicts[0].is_valid and not verdicts[1].is_valid

    def test_custom_thresholds(self):
        lenient = ValidationClassifier(ValidationConfig(min_characters=1, min_words_per_page=0,
                                                        min_alpha_ratio=0.0, max_whitespace_ratio=1.0,
                                                        max_vowel_free_word_ratio=1.0,
                                                        max_single_char_word_ratio=1.0,
                                                        max_non_ascii_ratio=1.0,
                                                        min_lexicon_hit_ratio=0.0))
        assert lenient.is_valid(WHITESPACE_TEXT)

    def test_calibration_returns_config(self):
        texts = [VALID_TEXT] * 20 + [SCRAMBLED_TEXT] * 5
        accuracies = np.array([0.8] * 20 + [0.05] * 5)
        config = calibrate_validation_threshold(texts, accuracies)
        assert isinstance(config, ValidationConfig)
        assert ValidationClassifier(config).is_valid(VALID_TEXT)


class TestImprovementClassifier:
    def _dataset(self, n=60, seed=4):
        rng = np.random.default_rng(seed)
        metadatas = [sample_metadata(rng, n_pages=6) for _ in range(n)]
        accuracies = np.zeros((n, 2))
        labels_informative = []
        for i, meta in enumerate(metadatas):
            # Scanner-produced or old documents improve with the better parser.
            improvable = meta.producer in ("scanner_firmware", "legacy_distiller") or meta.year < 2008
            accuracies[i, 0] = 0.4 if improvable else 0.8
            accuracies[i, 1] = 0.75
            labels_informative.append(improvable)
        return metadatas, accuracies

    def test_labeling_rule(self):
        labeling = ImprovementLabeling(default_parser="pymupdf", margin=0.05)
        labels = labeling.labels(["pymupdf", "nougat"], np.array([[0.8, 0.7], [0.3, 0.7]]))
        np.testing.assert_array_equal(labels, [0, 1])

    def test_fit_and_predict(self):
        metadatas, accuracies = self._dataset()
        clf = ImprovementClassifier()
        clf.fit(metadatas, ["pymupdf", "nougat"], accuracies)
        probs = clf.improvement_probability(metadatas)
        assert probs.shape == (len(metadatas),)
        assert np.all((probs >= 0) & (probs <= 1))
        assert clf.accuracy(metadatas, ["pymupdf", "nougat"], accuracies) > 0.7

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ImprovementClassifier().improvement_probability([])

    def test_likely_mask(self):
        metadatas, accuracies = self._dataset()
        clf = ImprovementClassifier().fit(metadatas, ["pymupdf", "nougat"], accuracies)
        mask = clf.improvement_likely(metadatas, threshold=0.5)
        assert mask.dtype == bool


class TestParserSelector:
    def _predictor(self) -> ParserQualityPredictor:
        predictor = ParserQualityPredictor(
            ["pymupdf", "nougat", "marker"],
            backend="fasttext",
            fasttext_config=FastTextConfig(embedding_dim=16, n_buckets=1 << 10, n_epochs=10),
        )
        texts = [VALID_TEXT[:200], SCRAMBLED_TEXT[:200]] * 6
        targets = np.array([[0.9, 0.7, 0.6], [0.2, 0.7, 0.6]] * 6)
        predictor.fit(texts, targets)
        return predictor

    def test_candidate_restriction(self):
        selector = ParserSelector(self._predictor(), candidate_parsers=["pymupdf", "nougat"])
        decisions = selector.decide([VALID_TEXT[:200], SCRAMBLED_TEXT[:200]])
        assert all(d.best_parser in ("pymupdf", "nougat") for d in decisions)
        assert decisions[1].best_parser == "nougat"
        assert decisions[1].improvement_over_default > 0

    def test_improvement_scores_sign(self):
        selector = ParserSelector(self._predictor(), candidate_parsers=["pymupdf", "nougat"])
        scores = selector.improvement_scores([VALID_TEXT[:200], SCRAMBLED_TEXT[:200]], "nougat")
        assert scores[1] > scores[0]

    def test_unknown_parsers_rejected(self):
        predictor = self._predictor()
        with pytest.raises(KeyError):
            ParserSelector(predictor, default_parser="acrobat")
        with pytest.raises(KeyError):
            ParserSelector(predictor, candidate_parsers=["acrobat"])
        selector = ParserSelector(predictor)
        with pytest.raises(KeyError):
            selector.improvement_scores(["x"], "acrobat")

    def test_empty_batch(self):
        selector = ParserSelector(self._predictor())
        assert selector.decide([]) == []
