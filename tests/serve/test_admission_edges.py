"""Starvation and tie-break edges of :class:`FairShareAdmission`.

The policy's promise is *no starvation at equal priority*: a greedy
client cannot monopolise the service, ties rotate toward the
least-served client, and within one client submissions stay FIFO.
These tests drive the pure policy through service-shaped episodes
(admit → run → complete, with cancellations interleaved) and assert the
promise holds at the edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve import FairShareAdmission


@dataclass
class FakeTicket:
    priority: int
    client: str
    seq: int


def tickets_for(clients: list[str], per_client: int, priority: int = 0):
    """Interleaved submissions: client order preserved inside each client."""
    queue = []
    seq = 0
    for round_index in range(per_client):
        for client in clients:
            queue.append(FakeTicket(priority=priority, client=client, seq=seq))
            seq += 1
    return queue


class TestEqualPriorityRotation:
    def test_many_equal_clients_rotate_least_served_first(self):
        policy = FairShareAdmission()
        clients = [f"c{i}" for i in range(5)]
        queue = tickets_for(clients, per_client=4)
        served: dict[str, int] = {}
        picks: list[FakeTicket] = []
        # Service-shaped loop: one slot, every admitted ticket completes
        # before the next pick (active is empty at each decision point).
        while queue:
            pick = policy.select(queue, {}, served)
            queue.remove(pick)
            served[pick.client] = served.get(pick.client, 0) + 1
            picks.append(pick)
        # Every window of 5 consecutive picks serves 5 distinct clients —
        # the least-served rotation never lets a client lap another.
        for start in range(0, len(picks), 5):
            window = picks[start : start + 5]
            assert len({ticket.client for ticket in window}) == 5
        # FIFO stability inside each client.
        for client in clients:
            seqs = [ticket.seq for ticket in picks if ticket.client == client]
            assert seqs == sorted(seqs)

    def test_order_snapshot_matches_incremental_selects(self):
        policy = FairShareAdmission()
        queue = tickets_for(["a", "b", "c"], per_client=3)
        snapshot = policy.order(list(queue))
        # order() simulates admissions that all stay active; replay that
        # same discipline with incremental select() calls.
        active: dict[str, int] = {}
        remaining = list(queue)
        replayed = []
        while remaining:
            pick = policy.select(remaining, active, {})
            remaining.remove(pick)
            active[pick.client] = active.get(pick.client, 0) + 1
            replayed.append(pick)
        assert snapshot == replayed


class TestGreedyClient:
    def test_one_greedy_client_cannot_starve_a_late_quiet_one(self):
        policy = FairShareAdmission()
        queue = [FakeTicket(0, "greedy", seq) for seq in range(10)]
        # The quiet client arrives after the greedy burst is queued.
        queue.append(FakeTicket(0, "quiet", 10))
        served: dict[str, int] = {}
        order = []
        while queue:
            pick = policy.select(queue, {}, served)
            queue.remove(pick)
            served[pick.client] = served.get(pick.client, 0) + 1
            order.append(pick)
        # The greedy client wins the first slot (FIFO on a clean slate),
        # but the quiet client is served immediately after — not eleventh.
        assert order[0].client == "greedy"
        assert order[1].client == "quiet"
        greedy_seqs = [ticket.seq for ticket in order if ticket.client == "greedy"]
        assert greedy_seqs == sorted(greedy_seqs)

    def test_greedy_concurrency_yields_to_idle_client(self):
        policy = FairShareAdmission()
        queue = [
            FakeTicket(0, "greedy", 0),
            FakeTicket(0, "greedy", 1),
            FakeTicket(0, "idle", 2),
        ]
        # The greedy client already occupies two slots; the idle client
        # occupies none — it must win the next slot despite a later seq.
        pick = policy.select(queue, {"greedy": 2}, {"greedy": 2})
        assert pick.client == "idle"


class TestInterleavedCancels:
    def test_cancellations_do_not_break_rotation_or_fifo(self):
        policy = FairShareAdmission()
        queue = tickets_for(["a", "b", "c"], per_client=4)
        cancelled = {("a", 3), ("b", 4), ("c", 8), ("a", 9)}
        served: dict[str, int] = {}
        order = []
        step = 0
        while queue:
            # Interleave cancellations with admissions, like clients
            # withdrawing queued tickets mid-run.
            if step == 2:
                queue = [
                    ticket
                    for ticket in queue
                    if (ticket.client, ticket.seq) not in cancelled
                ]
            if not queue:
                break
            pick = policy.select(queue, {}, served)
            queue.remove(pick)
            served[pick.client] = served.get(pick.client, 0) + 1
            order.append(pick)
            step += 1
        # No cancelled ticket was admitted.
        assert all((t.client, t.seq) not in cancelled for t in order)
        # FIFO within each client holds over the survivors.
        for client in ("a", "b", "c"):
            seqs = [ticket.seq for ticket in order if ticket.client == client]
            assert seqs == sorted(seqs)
        # After the cancels, served counts stay within one of each other
        # until a client's queue runs dry (least-served rotation).
        assert max(served.values()) - min(served.values()) <= 1

    def test_cancel_of_next_in_line_promotes_same_clients_next_ticket(self):
        policy = FairShareAdmission()
        queue = [
            FakeTicket(0, "a", 0),
            FakeTicket(0, "a", 1),
            FakeTicket(0, "b", 2),
        ]
        first = policy.select(queue, {}, {})
        assert (first.client, first.seq) == ("a", 0)
        queue.remove(first)  # cancelled instead of run
        second = policy.select(queue, {}, {})
        # "a" has not actually been served, so its next ticket still wins
        # the FIFO tie against "b".
        assert (second.client, second.seq) == ("a", 1)
