"""Wire-level tests of ProgressEvent: real-socket JSON round trips.

The gateway streams ``ProgressEvent`` values to remote clients as NDJSON
frames; these tests pin the schema contract at the byte level — what a
client's ``from_json_dict`` rebuilds from actual wire bytes — including
forward compatibility (old clients must survive fields and kinds a newer
server adds).
"""

from __future__ import annotations

import socket

import pytest

from repro.serve.events import EventKind, ProgressEvent
from repro.utils.wire import MessageChannel


@pytest.fixture()
def channel_pair():
    left_sock, right_sock = socket.socketpair()
    left = MessageChannel(left_sock)
    right = MessageChannel(right_sock)
    yield left, right
    left.close()
    right.close()


class TestEventWireRoundTrip:
    def test_event_survives_a_real_socket(self, channel_pair):
        left, right = channel_pair
        event = ProgressEvent(
            kind=EventKind.BATCH.value,
            ticket_id="t0001",
            seq=3,
            timestamp=1723100000.25,
            payload={"documents_done": 8, "n_documents": 16, "batches_done": 2},
        )
        left.send({"type": "event", "event": event.to_json_dict()})
        message = right.recv()
        rebuilt = ProgressEvent.from_json_dict(message["event"])
        assert rebuilt == event
        assert rebuilt.terminal is False

    def test_terminal_events_round_trip_terminality(self, channel_pair):
        left, right = channel_pair
        for kind in ("completed", "failed", "cancelled"):
            event = ProgressEvent(kind=kind, ticket_id="t0002", seq=9)
            left.send({"type": "event", "event": event.to_json_dict()})
            rebuilt = ProgressEvent.from_json_dict(right.recv()["event"])
            assert rebuilt.terminal is True
            assert rebuilt.kind == kind

    def test_unknown_top_level_fields_are_tolerated(self, channel_pair):
        """A newer server may add fields to the event schema; an old
        client's from_json_dict must ignore them, not crash."""
        left, right = channel_pair
        payload = ProgressEvent(
            kind="completed", ticket_id="t0003", seq=4, payload={"summary": {}}
        ).to_json_dict()
        payload["gpu_seconds"] = 1.25  # hypothetical future field
        payload["shard"] = {"worker": "w-9"}
        left.send({"type": "event", "event": payload})
        rebuilt = ProgressEvent.from_json_dict(right.recv()["event"])
        assert rebuilt.ticket_id == "t0003"
        assert rebuilt.seq == 4
        assert rebuilt.terminal is True

    def test_unknown_kind_is_nonterminal_not_fatal(self, channel_pair):
        """A newer server may stream new intermediate kinds; an old client
        must keep consuming the stream rather than raising."""
        left, right = channel_pair
        payload = {
            "kind": "checkpointed",  # hypothetical future kind
            "ticket_id": "t0004",
            "seq": 5,
            "timestamp": 0.0,
            "payload": {"shards_done": 3},
        }
        left.send({"type": "event", "event": payload})
        rebuilt = ProgressEvent.from_json_dict(right.recv()["event"])
        assert rebuilt.kind == "checkpointed"
        assert rebuilt.terminal is False

    def test_missing_optional_fields_default(self):
        rebuilt = ProgressEvent.from_json_dict(
            {"kind": "queued", "ticket_id": "t0005", "seq": 0}
        )
        assert rebuilt.timestamp == 0.0
        assert rebuilt.payload == {}
