"""Tests of the parse service: admission, events, cross-request dedup.

Covers the fair-share admission policy (pure-function unit tests), the
ticket lifecycle and event-stream contract, the concurrency hammer (N
concurrent requests sharing one cache, with single-flight asserted via
the coalesced/miss counters), priorities, cancellation, failure
reporting, and the serve/submit CLI smoke paths.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass

import pytest

from repro.cache import ParseCache
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.base import Parser, ParserCost
from repro.parsers.registry import ParserRegistry
from repro.pipeline import ParsePipeline, ParseRequest, request_for_documents
from repro.serve import (
    FairShareAdmission,
    ParseService,
    ServiceConfig,
    ServiceError,
    TicketState,
)


class SnailParser(Parser):
    """Deterministic parser double slow enough for requests to overlap."""

    name = "snail"
    version = "1.0"
    cost = ParserCost(cpu_seconds_per_page=0.01)

    def __init__(self, sleep_seconds: float = 0.03) -> None:
        self.sleep_seconds = sleep_seconds

    def _parse_pages(self, document, rng):
        time.sleep(self.sleep_seconds)
        return [f"{document.doc_id}:p{i}" for i in range(document.n_pages)]


@pytest.fixture()
def snail_pipeline():
    registry = ParserRegistry()
    registry.register(SnailParser())
    return ParsePipeline(registry=registry, cache=ParseCache())


@pytest.fixture(scope="module")
def corpus_16():
    return build_corpus(CorpusConfig(n_documents=16, seed=5, min_pages=1, max_pages=2))


# ---------------------------------------------------------------------- #
# Admission policy (pure units)
# ---------------------------------------------------------------------- #
@dataclass
class FakeTicket:
    priority: int
    client: str
    seq: int


class TestFairShareAdmission:
    def test_priority_wins(self):
        policy = FairShareAdmission()
        queued = [FakeTicket(0, "a", 0), FakeTicket(5, "b", 1), FakeTicket(1, "c", 2)]
        assert policy.select(queued, {}, {}).client == "b"

    def test_fifo_within_a_client(self):
        policy = FairShareAdmission()
        queued = [FakeTicket(0, "a", 3), FakeTicket(0, "a", 1), FakeTicket(0, "a", 2)]
        assert policy.select(queued, {}, {}).seq == 1

    def test_least_active_client_first(self):
        policy = FairShareAdmission()
        queued = [FakeTicket(0, "busy", 0), FakeTicket(0, "idle", 1)]
        assert policy.select(queued, {"busy": 2}, {}).client == "idle"

    def test_least_served_breaks_active_ties(self):
        policy = FairShareAdmission()
        queued = [FakeTicket(0, "chatty", 0), FakeTicket(0, "quiet", 1)]
        assert policy.select(queued, {}, {"chatty": 10, "quiet": 1}).client == "quiet"

    def test_order_interleaves_clients(self):
        # One chatty client queues four, a quiet one queues two: the full
        # admission order alternates rather than draining the burst first.
        policy = FairShareAdmission()
        queued = [FakeTicket(0, "a", i) for i in range(4)] + [
            FakeTicket(0, "b", 10),
            FakeTicket(0, "b", 11),
        ]
        order = [t.client for t in policy.order(queued)]
        assert order[:4] == ["a", "b", "a", "b"]

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            FairShareAdmission().select([], {}, {})


# ---------------------------------------------------------------------- #
# Ticket lifecycle and events
# ---------------------------------------------------------------------- #
class TestTicketLifecycle:
    def test_event_stream_shape(self, snail_pipeline, corpus_16):
        documents = list(corpus_16)
        with ParseService(
            pipeline=snail_pipeline,
            config=ServiceConfig(backend_options={"n_jobs": 2}),
        ) as service:
            ticket = service.submit(
                request_for_documents("snail", documents, batch_size=4)
            )
            report = ticket.result(timeout=60)
        kinds = [event.kind for event in ticket.events(timeout=1)]
        assert kinds[0] == "queued"
        assert kinds[1] == "started"
        assert kinds[-1] == "completed"
        assert kinds.count("batch") == 4  # 16 docs / batch_size 4
        # batch events carry monotonically growing progress
        batches = [e for e in ticket.events(timeout=1) if e.kind == "batch"]
        done = [e.payload["documents_done"] for e in batches]
        assert done == sorted(done) and done[-1] == len(documents)
        # events replay identically for a second consumer, with gapless seq
        seqs = [e.seq for e in ticket.events(timeout=1)]
        assert seqs == list(range(len(seqs)))
        assert ticket.state is TicketState.COMPLETED
        assert report.n_documents == len(documents)
        assert report.execution.extra.get("shared_backend") is True

    def test_event_json_round_trip(self, snail_pipeline, corpus_16):
        from repro.serve import ProgressEvent

        with ParseService(pipeline=snail_pipeline) as service:
            ticket = service.submit(
                request_for_documents("snail", list(corpus_16)[:4], batch_size=2)
            )
            ticket.result(timeout=60)
        for event in ticket.events(timeout=1):
            rebuilt = ProgressEvent.from_json_dict(
                json.loads(json.dumps(event.to_json_dict()))
            )
            assert rebuilt == event

    def test_failure_is_reported_not_swallowed(self, snail_pipeline, corpus_16):
        # A request rehydrated from JSON that referenced explicit documents
        # refuses to replay (the documents were not serialised): the service
        # must surface that as a FAILED ticket, not hang or swallow it.
        original = request_for_documents("snail", list(corpus_16)[:4])
        rehydrated = ParseRequest.from_json_dict(original.to_json_dict())
        with ParseService(pipeline=snail_pipeline) as service:
            ticket = service.submit(rehydrated)
            with pytest.raises(ValueError, match="not serialised"):
                ticket.result(timeout=60)
        assert ticket.state is TicketState.FAILED
        terminal = list(ticket.events(timeout=1))[-1]
        assert terminal.kind == "failed"
        assert "not serialised" in terminal.payload["error"]
        assert service.describe()["failed"] == 1

    def test_cancel_queued_ticket(self, snail_pipeline, corpus_16):
        documents = list(corpus_16)
        # One slot: the second submission waits in the queue and can be
        # withdrawn before it starts.
        with ParseService(
            pipeline=snail_pipeline, config=ServiceConfig(max_active=1)
        ) as service:
            first = service.submit(request_for_documents("snail", documents))
            second = service.submit(request_for_documents("snail", documents))
            assert service.cancel(second) is True
            assert service.cancel(second) is False  # already gone
            first.result(timeout=60)
        assert second.state is TicketState.CANCELLED
        with pytest.raises(ServiceError, match="cancelled"):
            second.result(timeout=1)
        assert [e.kind for e in second.events(timeout=1)] == ["queued", "cancelled"]

    def test_closed_service_refuses_submissions(self, snail_pipeline):
        service = ParseService(pipeline=snail_pipeline)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit(ParseRequest(parser="pymupdf", n_documents=2))
        service.close()  # idempotent: the second close is a no-op

    def test_raising_event_sink_does_not_break_the_lifecycle(
        self, snail_pipeline, corpus_16
    ):
        """A broken sink (e.g. the CLI's stdout pipe closed by `| head`)
        must not strand tickets in RUNNING or wedge close()/drain()."""

        def broken_sink(event) -> None:
            raise BrokenPipeError("stdout went away")

        with ParseService(pipeline=snail_pipeline, event_sink=broken_sink) as service:
            ticket = service.submit(
                request_for_documents("snail", list(corpus_16)[:4], batch_size=2)
            )
            report = ticket.result(timeout=60)
        assert ticket.state is TicketState.COMPLETED
        assert report.n_documents == 4
        # The internal event stream is intact even though the sink failed.
        assert [e.kind for e in ticket.events(timeout=1)][-1] == "completed"

    def test_reentrant_event_sink_does_not_deadlock(self, snail_pipeline, corpus_16):
        """The sink runs outside the service lock, so it may call back into
        the service (describe) without deadlocking."""
        observed: list[int] = []

        def nosy_sink(event) -> None:
            observed.append(service.describe()["submitted"])

        service = ParseService(pipeline=snail_pipeline, event_sink=nosy_sink)
        with service:
            ticket = service.submit(
                request_for_documents("snail", list(corpus_16)[:4], batch_size=2)
            )
            ticket.result(timeout=60)
        assert observed and all(n >= 1 for n in observed)


# ---------------------------------------------------------------------- #
# The concurrency hammer: shared cache, cross-request single-flight
# ---------------------------------------------------------------------- #
class TestConcurrencyHammer:
    N_REQUESTS = 6

    def test_hammer_shared_cache_single_flight(self, snail_pipeline, corpus_16):
        """N concurrent requests over one corpus parse each document
        exactly once between them; everyone else is served by a cache hit
        or a coalesced wait on the in-progress parse."""
        documents = list(corpus_16)
        config = ServiceConfig(
            max_active=self.N_REQUESTS, backend_options={"n_jobs": 4}
        )
        with ParseService(pipeline=snail_pipeline, config=config) as service:
            tickets = [
                service.submit(
                    request_for_documents(
                        "snail", documents, batch_size=4, cache="readwrite"
                    ),
                    client=f"client-{i}",
                )
                for i in range(self.N_REQUESTS)
            ]
            reports = [ticket.result(timeout=120) for ticket in tickets]

        # Exactly-once parsing across ALL requests (the cross-request
        # single-flight acceptance criterion).
        assert sum(r.cache.misses for r in reports) == len(documents)
        assert sum(r.cache.stores for r in reports) == len(documents)
        served_without_parsing = sum(r.cache.hits + r.cache.coalesced for r in reports)
        assert served_without_parsing == (self.N_REQUESTS - 1) * len(documents)
        # With a slow parser and every slot active, at least some lookups
        # must have coalesced onto another request's in-progress parse.
        assert sum(r.cache.coalesced for r in reports) > 0
        # Byte-identical output for every client.
        baseline = [r.text for r in reports[0].results]
        for report in reports[1:]:
            assert [r.text for r in report.results] == baseline
        counters = service.describe()
        assert counters["completed"] == self.N_REQUESTS
        assert counters["failed"] == 0

    def test_hammer_events_and_fair_share_accounting(self, snail_pipeline, corpus_16):
        documents = list(corpus_16)
        events: list = []
        lock = threading.Lock()

        def sink(event) -> None:
            with lock:
                events.append(event)

        config = ServiceConfig(max_active=2, backend_options={"n_jobs": 2})
        with ParseService(
            pipeline=snail_pipeline, config=config, event_sink=sink
        ) as service:
            tickets = [
                service.submit(
                    request_for_documents("snail", documents, batch_size=8),
                    client=f"c{i % 2}",
                )
                for i in range(4)
            ]
            for ticket in tickets:
                ticket.result(timeout=120)
        by_kind: dict[str, int] = {}
        for event in events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        assert by_kind["queued"] == by_kind["started"] == by_kind["completed"] == 4
        assert by_kind["batch"] == 4 * 2  # 16 docs / batch 8, per ticket
        served = service.describe()["served_by_client"]
        assert served == {"c0": 2, "c1": 2}

    def test_priorities_order_admission(self, snail_pipeline, corpus_16):
        """With one execution slot, the queued backlog admits strictly by
        priority regardless of submission order."""
        documents = list(corpus_16)[:8]
        order: list[str] = []
        lock = threading.Lock()

        def sink(event) -> None:
            if event.kind == "started":
                with lock:
                    order.append(event.ticket_id)
        config = ServiceConfig(max_active=1, backend_options={"n_jobs": 2})
        with ParseService(
            pipeline=snail_pipeline, config=config, event_sink=sink
        ) as service:
            # The first ticket occupies the slot; the rest queue.
            head = service.submit(request_for_documents("snail", documents))
            low = service.submit(request_for_documents("snail", documents), priority=1)
            high = service.submit(request_for_documents("snail", documents), priority=9)
            for ticket in (head, low, high):
                ticket.result(timeout=120)
        assert order == [head.id, high.id, low.id]


# ---------------------------------------------------------------------- #
# serve_requests convenience + CLI smoke
# ---------------------------------------------------------------------- #
class TestServeFrontends:
    def test_serve_requests_returns_reports_by_client(self, snail_pipeline, corpus_16):
        from repro.serve import serve_requests

        documents = list(corpus_16)[:8]
        reports = serve_requests(
            {
                "alpha": request_for_documents("snail", documents, cache="readwrite"),
                "beta": request_for_documents("snail", documents, cache="readwrite"),
            },
            pipeline=snail_pipeline,
            priorities={"beta": 2},
        )
        assert set(reports) == {"alpha", "beta"}
        assert all(r.n_documents == len(documents) for r in reports.values())
        assert sum(r.cache.misses for r in reports.values()) == len(documents)

    def test_cli_serve_streams_events_and_dedups(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "serve",
                "--documents", "6",
                "--seed", "3",
                "--requests", "3",
                "--batch-size", "3",
                "--backend-opt", "n_jobs=2",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        ndjson = [json.loads(line) for line in lines if line.startswith('{"kind"')]
        assert {event["kind"] for event in ndjson} >= {"queued", "started", "completed"}
        summary = json.loads(out[out.index('{\n  "service"'):])
        assert summary["service"]["completed"] == 3
        assert summary["cache_totals"]["misses"] == 6  # identical corpora dedup
        assert summary["cache_totals"]["hits"] + summary["cache_totals"]["coalesced"] == 12
        assert summary["service"]["backend"]["backend"] == "async"

    def test_cli_serve_quiet_suppresses_events(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["serve", "--documents", "4", "--requests", "2", "--quiet"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert '{"kind"' not in out
        assert '"cache_totals"' in out

    def test_cli_submit_smoke(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["submit", "--documents", "5", "--seed", "3", "--priority", "2"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert '{"kind": "queued"' in out
        assert '"throughput_docs_per_second"' in out

    def test_cli_submit_request_file(self, tmp_path, capsys):
        from repro.cli import main

        request_path = tmp_path / "request.json"
        request_path.write_text(
            json.dumps(ParseRequest(parser="pypdf", n_documents=4, seed=9).to_json_dict()),
            encoding="utf-8",
        )
        output = tmp_path / "report.json"
        exit_code = main(
            [
                "submit",
                "--request-file", str(request_path),
                "--quiet",
                "--output", str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        assert payload["parser"] == "pypdf"
        assert payload["n_documents"] == 4
        assert "wrote ParseReport" in capsys.readouterr().out

    def test_cli_submit_bad_request_file_exits_cleanly(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit, match="invalid request"):
            main(["submit", "--request-file", str(bad)])


# ---------------------------------------------------------------------- #
# Abandoned tickets must always settle (regression: close/dispatch race)
# ---------------------------------------------------------------------- #
class TestAbandonedTicketsSettle:
    def test_close_without_drain_terminates_blocked_event_consumers(
        self, snail_pipeline, corpus_16
    ):
        """A consumer blocked in events() on a queued-then-abandoned ticket
        must receive a terminal cancelled event, not hang forever."""
        documents = list(corpus_16)
        service = ParseService(
            pipeline=snail_pipeline, config=ServiceConfig(max_active=1)
        )
        first = service.submit(request_for_documents("snail", documents))
        second = service.submit(request_for_documents("snail", documents))
        seen: list[str] = []
        consumed = threading.Event()

        def consume() -> None:
            for event in second.events():  # no timeout: would hang pre-fix
                seen.append(event.kind)
            consumed.set()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        service.close(drain=False)
        assert consumed.wait(10), "events() consumer hung on the abandoned ticket"
        assert seen == ["queued", "cancelled"]
        assert second.state is TicketState.CANCELLED
        first.result(timeout=60)  # running work always completes

    def test_dispatch_racing_a_closed_pool_settles_the_ticket(self, snail_pipeline):
        """If close() shuts the runner pool down between a ticket leaving
        the queue and reaching the pool, the ticket must settle as
        cancelled (terminal event + counters) instead of sitting in
        _active forever with consumers hung in events()/result()."""
        service = ParseService(
            pipeline=snail_pipeline, config=ServiceConfig(max_active=1)
        )
        # Force the race deterministically: the pool is already shut down
        # when submit()'s dispatch tries to hand the ticket over.
        service._runners.shutdown(wait=True)
        ticket = service.submit(ParseRequest(parser="snail", n_documents=2, seed=1))
        assert [e.kind for e in ticket.events(timeout=5)] == ["queued", "cancelled"]
        assert ticket.state is TicketState.CANCELLED
        with pytest.raises(ServiceError, match="cancelled"):
            ticket.result(timeout=5)
        description = service.describe()
        assert description["active"] == 0
        assert description["cancelled"] == 1
        service.drain(timeout=5)  # nothing stranded in _active
        service.close(drain=False)
