"""Tests of the pluggable execution-backend API.

Covers the backend registry, the ordered-window execution contract (and
the thread backend's teardown regression), the serial/thread/process
parity guarantee (byte-identical reports modulo timings, including
α-budget boundaries and cache ``readwrite``), the HPC adapter, the
``n_jobs`` deprecation path, and the execution telemetry round trip.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.cache import ParseCache
from repro.core.config import AdaParseConfig
from repro.core.engine import AdaParseEngine
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.registry import default_registry
from repro.pipeline import (
    ExecutionStats,
    ParsePipeline,
    ParseReport,
    ParseRequest,
    ThreadBackend,
    backend_names,
    create_backend,
    request_for_documents,
)
from repro.pipeline.backends import (
    BackendError,
    HPCBackend,
    SerialBackend,
    normalize_backend_spec,
    resolve_execution,
)
from repro.pipeline.backends.thread import THREAD_NAME_PREFIX

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Options that make the process backend deterministic in tests: fork keeps
#: this module's ScriptedEngine picklable by reference.
PROCESS_OPTIONS = {"n_jobs": 2, "mp_context": "fork"}


class ScriptedEngine(AdaParseEngine):
    """Engine double with deterministic improvement scores (no training)."""

    name = "scripted-backend"

    def improvement_scores(self, documents, extracted_texts) -> np.ndarray:
        return np.linspace(0.1, 1.0, len(documents))


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def corpus_100():
    return build_corpus(CorpusConfig(n_documents=100, seed=17, min_pages=2, max_pages=4))


@pytest.fixture(scope="module")
def small_corpus():
    return build_corpus(CorpusConfig(n_documents=16, seed=19, min_pages=2, max_pages=3))


@pytest.fixture()
def engine(registry):
    # batch_size=40 over 100 documents puts the α budget on 40/40/20 batch
    # boundaries, the regression surface of the per-batch cap.
    return ScriptedEngine(registry, AdaParseConfig(alpha=0.05, batch_size=40))


def _double(x: int) -> int:
    return 2 * x


def _triple(x: int) -> int:
    return 3 * x


def _backend_threads() -> list[threading.Thread]:
    return [
        t for t in threading.enumerate() if t.name.startswith(THREAD_NAME_PREFIX)
    ]


# ---------------------------------------------------------------------- #
# Registry & resolution
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "thread", "process", "hpc", "async"} <= set(backend_names())

    def test_create_by_name(self):
        backend = create_backend("thread", {"n_jobs": 2})
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 2
        backend.close()

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="serial"):
            create_backend("quantum")

    def test_unknown_option_lists_known(self):
        with pytest.raises(ValueError, match="n_jobs"):
            create_backend("thread", {"bogus": 1})

    def test_invalid_option_value(self):
        with pytest.raises(ValueError, match="positive"):
            create_backend("thread", {"n_jobs": 0})

    @pytest.mark.parametrize(
        "backend,options,expected",
        [
            ("auto", None, ("serial", {})),
            ("auto", {"n_jobs": 1}, ("serial", {})),
            ("auto", {"n_jobs": 4}, ("thread", {"n_jobs": 4})),
            ("thread", {"n_jobs": 4}, ("thread", {"n_jobs": 4})),
            ("process", {"n_jobs": 2}, ("process", {"n_jobs": 2})),
            ("serial", None, ("serial", {})),
            ("hpc", {"n_nodes": 2}, ("hpc", {"n_nodes": 2})),
        ],
    )
    def test_normalize_spec(self, backend, options, expected):
        assert normalize_backend_spec(backend, options) == expected

    def test_normalize_spec_n_jobs_kwarg_removed(self):
        with pytest.raises(TypeError):
            normalize_backend_spec("auto", None, n_jobs=4)

    def test_auto_coerces_integral_float_n_jobs(self):
        # A CLI-coerced `--backend-opt n_jobs=4.0` must not silently run
        # serial; integral floats resolve to the thread backend.
        assert normalize_backend_spec("auto", {"n_jobs": 4.0}) == (
            "thread",
            {"n_jobs": 4},
        )

    @pytest.mark.parametrize("bad", ["four", 2.5, True])
    def test_non_integral_n_jobs_rejected(self, bad):
        with pytest.raises(ValueError, match="integer"):
            normalize_backend_spec("auto", {"n_jobs": bad})

    @pytest.mark.parametrize("bad", [0, -3])
    def test_non_positive_n_jobs_rejected_not_silently_serial(self, bad):
        # Regression: n_jobs=0 under auto used to degrade to serial quietly.
        with pytest.raises(ValueError, match="positive"):
            normalize_backend_spec("auto", {"n_jobs": bad})
        with pytest.raises(ValueError, match="positive"):
            ParseRequest(parser="pymupdf", backend_options={"n_jobs": bad})

    def test_auto_with_thread_options_but_no_parallelism_names_auto(self):
        # window is a thread option; failing it against serial would blame a
        # backend the caller never mentioned.
        with pytest.raises(ValueError, match="auto.*explicitly"):
            normalize_backend_spec("auto", {"window": 8})

    def test_bogus_mp_context_fails_at_request_construction(self):
        with pytest.raises(ValueError, match="mp_context"):
            ParseRequest(backend="process", backend_options={"mp_context": "bogus"})

    def test_instance_passthrough_is_not_owned(self):
        backend = SerialBackend()
        resolved, owned = resolve_execution(backend)
        assert resolved is backend and not owned
        with pytest.raises(ValueError, match="instance"):
            resolve_execution(backend, {"n_jobs": 2})


# ---------------------------------------------------------------------- #
# map_ordered contract
# ---------------------------------------------------------------------- #
class TestMapOrdered:
    def test_serial_order_and_stats(self):
        backend = SerialBackend()
        out = list(backend.map_ordered(lambda x: x * x, range(7)))
        assert out == [x * x for x in range(7)]
        stats = backend.stats()
        assert stats.backend == "serial"
        assert stats.workers == 1
        assert stats.batches_dispatched == stats.batches_completed == 7
        assert stats.in_flight_high_water == 1
        assert stats.queue_wait_seconds_high_water == 0.0
        assert set(stats.batch_latency_seconds) == {"mean", "p50", "p90", "p99", "max"}
        backend.close()

    def test_thread_order_preserved_under_jitter(self):
        backend = ThreadBackend(n_jobs=4)

        def jittery(x: int) -> int:
            time.sleep(0.001 * (x % 5))
            return x

        with backend:
            assert list(backend.map_ordered(jittery, range(40))) == list(range(40))
        stats = backend.stats()
        assert stats.batches_completed == 40
        assert 1 <= stats.in_flight_high_water <= backend.window

    def test_thread_window_bounds_in_flight(self):
        backend = ThreadBackend(n_jobs=2, window=3)
        with backend:
            list(backend.map_ordered(lambda x: x, range(20)))
        assert backend.stats().in_flight_high_water <= 3

    def test_worker_error_propagates(self):
        backend = ThreadBackend(n_jobs=2)

        def boom(x: int) -> int:
            if x == 3:
                raise RuntimeError("bad batch")
            return x

        with backend:
            with pytest.raises(RuntimeError, match="bad batch"):
                list(backend.map_ordered(boom, range(10)))

    def test_closed_backend_refuses_work(self):
        backend = ThreadBackend(n_jobs=2)
        backend.close()
        with pytest.raises(BackendError, match="closed"):
            list(backend.map_ordered(lambda x: x, [1]))
        backend.close()  # idempotent

    def test_early_close_cancels_pending_and_leaks_no_threads(self):
        """Regression: abandoning the stream used to leave queued batches
        uncancelled and the pool's threads behind.  Now the iterator's
        teardown cancels everything that hasn't started and close() joins
        the workers."""
        assert _backend_threads() == []
        backend = ThreadBackend(n_jobs=2, window=6)

        def slow(x: int) -> int:
            time.sleep(0.05)
            return x

        stream = backend.map_ordered(slow, range(50))
        assert next(stream) == 0  # window submitted, first batch consumed
        stream.close()  # abandon mid-stream
        backend.close()  # joins workers
        stats = backend.stats()
        assert stats.batches_dispatched == 6
        assert stats.batches_cancelled >= 1
        # Whatever wasn't cancelled actually ran; nothing is unaccounted for.
        assert stats.batches_completed + stats.batches_cancelled == stats.batches_dispatched
        assert stats.batches_completed < 50
        assert _backend_threads() == []


# ---------------------------------------------------------------------- #
# Request / report plumbing
# ---------------------------------------------------------------------- #
class TestRequestBackendFields:
    def test_json_round_trip(self):
        request = ParseRequest(
            parser="pymupdf",
            n_documents=5,
            backend="process",
            backend_options={"n_jobs": 2},
        )
        rebuilt = ParseRequest.from_json_dict(json.loads(json.dumps(request.to_json_dict())))
        assert rebuilt.backend == "process"
        assert rebuilt.backend_options == {"n_jobs": 2}
        assert rebuilt == request

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="known"):
            ParseRequest(backend="quantum")

    def test_unknown_backend_option_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            ParseRequest(backend="thread", backend_options={"bogus": 1})

    def test_removed_n_jobs_raises_pointing_at_backend_options(self):
        with pytest.raises(TypeError, match="backend_options"):
            ParseRequest(parser="pymupdf", n_jobs=4)
        request = ParseRequest(parser="pymupdf", backend_options={"n_jobs": 4})
        assert request.resolved_backend() == ("thread", {"n_jobs": 4})

    def test_auto_resolves_serial_without_parallelism(self):
        assert ParseRequest(parser="pymupdf").resolved_backend() == ("serial", {})

    def test_execution_stats_round_trip(self):
        stats = ExecutionStats(
            backend="thread",
            workers=4,
            batches_dispatched=9,
            batches_completed=9,
            in_flight_high_water=8,
            queue_wait_seconds_high_water=0.25,
            batch_latency_seconds={"mean": 0.1, "p50": 0.1, "p90": 0.2, "p99": 0.2, "max": 0.2},
            extra={"note": 1},
        )
        assert ExecutionStats.from_json_dict(stats.to_json_dict()) == stats

    def test_report_round_trips_execution_block(self, registry, small_corpus):
        report = ParsePipeline(registry).run(
            request_for_documents(
                "pymupdf", list(small_corpus), batch_size=4,
                backend="thread", backend_options={"n_jobs": 2},
            )
        )
        assert report.execution.backend == "thread"
        assert report.execution.workers == 2
        assert report.execution.batches_dispatched == 4
        rebuilt = ParseReport.from_json_dict(report.to_json_dict())
        assert rebuilt.execution == report.execution
        assert rebuilt.summary()["execution"]["backend"] == "thread"


# ---------------------------------------------------------------------- #
# Backend parity: identical parse output on every backend
# ---------------------------------------------------------------------- #
#: Timing-dependent payload fields (zeroed before byte comparison).
_TIMING_KEYS = {
    "wall_time_seconds",
    "throughput_docs_per_second",
    "time_saved_seconds",
    "bytes_read",
    "bytes_written",
}
#: Fields that legitimately describe *how* a run executed, not what it
#: parsed (dropped before byte comparison).  ``phases`` is wall-clock
#: attribution — pure timing telemetry, pinned separately by
#: :class:`TestPhaseAttributionParity`.
_EXECUTION_KEYS = {"execution", "backend", "backend_options", "n_jobs", "phases"}


def _normalized_bytes(payload: dict) -> bytes:
    """Report JSON with timings zeroed and execution descriptors dropped."""

    def scrub(node):
        if isinstance(node, dict):
            return {
                key: (0 if key in _TIMING_KEYS else scrub(value))
                for key, value in node.items()
                if key not in _EXECUTION_KEYS
            }
        if isinstance(node, list):
            return [scrub(item) for item in node]
        return node

    return json.dumps(scrub(payload), sort_keys=True).encode("utf-8")


def _backend_cases() -> list[tuple[str, dict]]:
    cases = [("serial", {}), ("thread", {"n_jobs": 3}), ("async", {"n_jobs": 3})]
    if HAVE_FORK:
        cases.append(("process", dict(PROCESS_OPTIONS)))
    return cases


class TestBackendParity:
    def _report(self, registry, engine, documents, backend, options, cache=""):
        pipeline = ParsePipeline(
            registry, engines={engine.name: engine}, cache=ParseCache()
        )
        overrides = {"cache": "readwrite"} if cache else {}
        request = request_for_documents(
            engine.name,
            documents,
            batch_size=40,
            backend=backend,
            backend_options=options,
            **overrides,
        )
        return pipeline.run(request)

    @pytest.mark.parametrize("backend,options", _backend_cases())
    def test_engine_reports_byte_identical_modulo_timings(
        self, registry, engine, corpus_100, backend, options
    ):
        documents = list(corpus_100)
        baseline = self._report(registry, engine, documents, "serial", {})
        candidate = self._report(registry, engine, documents, backend, options)
        assert _normalized_bytes(candidate.to_json_dict(include_text=True)) == (
            _normalized_bytes(baseline.to_json_dict(include_text=True))
        )
        # The α budget holds per batch on every backend (40/40/20 boundaries).
        assert candidate.fraction_routed() <= engine.config.alpha + 1e-9
        assert len(candidate.decisions) == len(documents)
        assert candidate.execution.backend == backend

    @pytest.mark.parametrize("backend,options", _backend_cases())
    def test_cache_readwrite_parity(
        self, registry, engine, small_corpus, backend, options
    ):
        documents = list(small_corpus)
        baseline = self._report(
            registry, engine, documents, "serial", {}, cache="readwrite"
        )
        candidate = self._report(
            registry, engine, documents, backend, options, cache="readwrite"
        )
        assert _normalized_bytes(candidate.to_json_dict(include_text=True)) == (
            _normalized_bytes(baseline.to_json_dict(include_text=True))
        )
        assert candidate.cache.misses == len(documents)
        assert candidate.cache.stores == len(documents)

    @pytest.mark.parametrize("backend,options", _backend_cases())
    def test_base_parser_parity(self, registry, corpus_100, backend, options):
        documents = list(corpus_100)
        baseline = ParsePipeline(registry).run(
            request_for_documents("pymupdf", documents, batch_size=16)
        )
        candidate = ParsePipeline(registry).run(
            request_for_documents(
                "pymupdf", documents, batch_size=16,
                backend=backend, backend_options=options,
            )
        )
        assert _normalized_bytes(candidate.to_json_dict(include_text=True)) == (
            _normalized_bytes(baseline.to_json_dict(include_text=True))
        )


class TestRemoteBackendParity:
    """The backend-parity guarantee extended to a real 2-worker cluster.

    Workers are in-process daemons over localhost TCP whose pipelines
    carry the same ScriptedEngine instance, so the fingerprint handshake
    passes and reports must be byte-identical (modulo timings/telemetry)
    to the thread backend — including α-budget batch boundaries and
    cache ``readwrite``.
    """

    @pytest.fixture()
    def cluster(self, registry, engine):
        from repro.cluster.worker import WorkerDaemon

        workers = [
            WorkerDaemon(
                name=f"parity-{i}",
                pipeline=ParsePipeline(
                    registry, engines={engine.name: engine}, cache=ParseCache()
                ),
            ).start()
            for i in range(2)
        ]
        yield ",".join(worker.address for worker in workers)
        for worker in workers:
            worker.stop()

    def _report(self, registry, engine, documents, backend, options, cache=""):
        pipeline = ParsePipeline(
            registry, engines={engine.name: engine}, cache=ParseCache()
        )
        overrides = {"cache": "readwrite"} if cache else {}
        request = request_for_documents(
            engine.name,
            documents,
            batch_size=40,
            backend=backend,
            backend_options=options,
            **overrides,
        )
        return pipeline.run(request)

    def test_engine_report_matches_thread_over_alpha_boundaries(
        self, registry, engine, corpus_100, cluster
    ):
        documents = list(corpus_100)
        baseline = self._report(
            registry, engine, documents, "thread", {"n_jobs": 3}
        )
        candidate = self._report(
            registry, engine, documents, "remote", {"workers": cluster}
        )
        assert _normalized_bytes(candidate.to_json_dict(include_text=True)) == (
            _normalized_bytes(baseline.to_json_dict(include_text=True))
        )
        assert candidate.fraction_routed() <= engine.config.alpha + 1e-9
        assert len(candidate.decisions) == len(documents)
        assert candidate.execution.backend == "remote"

    def test_cache_readwrite_parity_with_thread(
        self, registry, engine, small_corpus, cluster
    ):
        documents = list(small_corpus)
        baseline = self._report(
            registry, engine, documents, "thread", {"n_jobs": 3}, cache="readwrite"
        )
        candidate = self._report(
            registry, engine, documents, "remote", {"workers": cluster},
            cache="readwrite",
        )
        assert _normalized_bytes(candidate.to_json_dict(include_text=True)) == (
            _normalized_bytes(baseline.to_json_dict(include_text=True))
        )
        assert candidate.cache.misses == len(documents)
        assert candidate.cache.stores == len(documents)

    def test_base_parser_parity_with_thread(self, registry, corpus_100, cluster):
        documents = list(corpus_100)
        baseline = ParsePipeline(registry).run(
            request_for_documents(
                "pymupdf", documents, batch_size=16,
                backend="thread", backend_options={"n_jobs": 3},
            )
        )
        candidate = ParsePipeline(registry).run(
            request_for_documents(
                "pymupdf", documents, batch_size=16,
                backend="remote", backend_options={"workers": cluster},
            )
        )
        assert _normalized_bytes(candidate.to_json_dict(include_text=True)) == (
            _normalized_bytes(baseline.to_json_dict(include_text=True))
        )


# ---------------------------------------------------------------------- #
# Phase attribution parity: identical phase keys on every backend
# ---------------------------------------------------------------------- #
#: The pinned ``ParseReport.phases`` key sets.  Every backend must produce
#: exactly these keys for a given pipeline shape — a new phase (or a phase
#: that only shows up on some backends) is an API change and must be
#: pinned here deliberately.
BASE_PHASE_KEYS = {"source.iter", "validate.type", "parse"}
ENGINE_PHASE_KEYS = BASE_PHASE_KEYS | {
    "parse.default",
    "route.validate",
    "route.score",
    "parse.high_quality",
}
CACHE_PHASE_KEYS = {"cache.key", "cache.lookup", "cache.store"}

_PHASE_ROW_KEYS = {"total_s", "self_s", "cpu_s", "calls", "bytes"}


def _assert_phase_rows_well_formed(report: ParseReport) -> None:
    for name, row in report.phases.items():
        assert set(row) == _PHASE_ROW_KEYS, name
        assert row["total_s"] >= 0 and row["calls"] >= 1, name


class TestPhaseAttributionParity:
    """``ParseReport.phases`` carries the same key set on every backend.

    The timings differ (that's the point of the attribution), but the
    *shape* of the table is part of the backend contract: a dashboard
    built against the serial backend must read identically against a
    process pool or a remote cluster.
    """

    def _report(self, registry, engine, documents, backend, options, cache=""):
        pipeline = ParsePipeline(
            registry, engines={engine.name: engine}, cache=ParseCache()
        )
        overrides = {"cache": "readwrite"} if cache else {}
        request = request_for_documents(
            engine.name,
            documents,
            batch_size=40,
            backend=backend,
            backend_options=options,
            **overrides,
        )
        return pipeline.run(request)

    @pytest.mark.parametrize("backend,options", _backend_cases())
    def test_base_parser_phase_keys(self, registry, small_corpus, backend, options):
        report = ParsePipeline(registry).run(
            request_for_documents(
                "pymupdf", list(small_corpus), batch_size=4,
                backend=backend, backend_options=options,
            )
        )
        assert set(report.phases) == BASE_PHASE_KEYS
        _assert_phase_rows_well_formed(report)

    @pytest.mark.parametrize("backend,options", _backend_cases())
    def test_engine_phase_keys(
        self, registry, engine, corpus_100, backend, options
    ):
        # corpus_100 guarantees the α budget routes documents in every
        # batch, so ``parse.high_quality`` must appear on every backend.
        report = self._report(registry, engine, list(corpus_100), backend, options)
        assert set(report.phases) == ENGINE_PHASE_KEYS
        _assert_phase_rows_well_formed(report)
        # attribution is meaningful, not just present
        assert report.phases["parse"]["total_s"] > 0

    @pytest.mark.parametrize("backend,options", _backend_cases())
    def test_engine_cache_phase_keys(
        self, registry, engine, corpus_100, backend, options
    ):
        report = self._report(
            registry, engine, list(corpus_100), backend, options, cache="readwrite"
        )
        assert set(report.phases) == ENGINE_PHASE_KEYS | CACHE_PHASE_KEYS
        _assert_phase_rows_well_formed(report)

    def test_phases_survive_json_round_trip(self, registry, engine, corpus_100):
        report = self._report(registry, engine, list(corpus_100), "serial", {})
        rebuilt = ParseReport.from_json_dict(report.to_json_dict())
        assert rebuilt.phases == report.phases
        assert set(rebuilt.summary()["phases"]) == ENGINE_PHASE_KEYS


class TestRemotePhaseAttributionParity:
    """The phase-key contract extends to a real 2-worker cluster: worker
    tables ship back over the wire and merge into the coordinator's
    timer, so the merged report pins the exact same key sets."""

    @pytest.fixture()
    def cluster(self, registry, engine):
        from repro.cluster.worker import WorkerDaemon

        workers = [
            WorkerDaemon(
                name=f"phase-parity-{i}",
                pipeline=ParsePipeline(
                    registry, engines={engine.name: engine}, cache=ParseCache()
                ),
            ).start()
            for i in range(2)
        ]
        yield ",".join(worker.address for worker in workers)
        for worker in workers:
            worker.stop()

    def _report(self, registry, engine, documents, options, cache=""):
        pipeline = ParsePipeline(
            registry, engines={engine.name: engine}, cache=ParseCache()
        )
        overrides = {"cache": "readwrite"} if cache else {}
        request = request_for_documents(
            engine.name,
            documents,
            batch_size=40,
            backend="remote",
            backend_options=options,
            **overrides,
        )
        return pipeline.run(request)

    def test_engine_phase_keys_match_local_backends(
        self, registry, engine, corpus_100, cluster
    ):
        # worker_cache must mirror the request's (off) cache policy or the
        # workers' own cache phases would leak extra keys into the table.
        report = self._report(
            registry, engine, list(corpus_100),
            {"workers": cluster, "worker_cache": "off"},
        )
        assert set(report.phases) == ENGINE_PHASE_KEYS
        _assert_phase_rows_well_formed(report)
        assert report.phases["parse.default"]["total_s"] > 0

    def test_engine_cache_phase_keys_match_local_backends(
        self, registry, engine, corpus_100, cluster
    ):
        report = self._report(
            registry, engine, list(corpus_100),
            {"workers": cluster}, cache="readwrite",
        )
        assert set(report.phases) == ENGINE_PHASE_KEYS | CACHE_PHASE_KEYS
        _assert_phase_rows_well_formed(report)


# ---------------------------------------------------------------------- #
# Process backend specifics
# ---------------------------------------------------------------------- #
@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestProcessBackend:
    def test_cache_write_back_merges_into_parent(self, registry, small_corpus):
        documents = list(small_corpus)
        pipeline = ParsePipeline(registry, cache=ParseCache())
        first = pipeline.run(
            request_for_documents(
                "pymupdf", documents, cache="readwrite",
                backend="process", backend_options=dict(PROCESS_OPTIONS),
            )
        )
        # Children parsed everything; the parent merged the results back.
        assert first.cache.misses == len(documents)
        assert first.cache.stores == len(documents)
        # A serial follow-up on the same pipeline is served entirely from
        # the parent's cache — proof the write-back landed parent-side.
        second = pipeline.run(
            request_for_documents("pymupdf", documents, cache="readwrite")
        )
        assert second.cache.hits == len(documents)
        assert second.cache.misses == 0
        assert [r.text for r in second.results] == [r.text for r in first.results]

    def test_worker_registered_once_then_fallback_for_second_worker(self):
        # The first worker rides the pool initializer (shipped once per
        # child); a different second worker on the same pool still runs
        # correctly via the per-call fallback.
        from repro.pipeline.backends import ProcessBackend

        backend = ProcessBackend(**PROCESS_OPTIONS)
        try:
            first = backend.wrap_inner(_double)
            assert [first(i) for i in range(4)] == [0, 2, 4, 6]
            second = backend.wrap_inner(_triple)
            assert [second(i) for i in range(4)] == [0, 3, 6, 9]
            # And the registered worker keeps working alongside it.
            assert first(5) == 10
        finally:
            backend.close()

    def test_unpicklable_worker_raises_backend_error(self):
        class UnpicklableWorker:
            def __call__(self, batch):  # pragma: no cover - never runs
                return [], []

            def __reduce__(self):
                raise TypeError("cannot pickle this worker")

        from repro.pipeline.backends import ProcessBackend

        backend = ProcessBackend(**PROCESS_OPTIONS)
        try:
            with pytest.raises(BackendError, match="picklable"):
                backend.wrap_inner(UnpicklableWorker())
        finally:
            backend.close()


# ---------------------------------------------------------------------- #
# Async backend specifics
# ---------------------------------------------------------------------- #
class TestAsyncBackend:
    def _threads(self) -> list[threading.Thread]:
        from repro.pipeline.backends.async_ import ASYNC_THREAD_PREFIX

        return [
            t for t in threading.enumerate() if t.name.startswith(ASYNC_THREAD_PREFIX)
        ]

    def test_order_preserved_under_jitter(self):
        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=4)

        def jittery(x: int) -> int:
            time.sleep(0.001 * (x % 5))
            return x

        with backend:
            assert list(backend.map_ordered(jittery, range(40))) == list(range(40))
            stats = backend.stats()
        assert stats.backend == "async"
        assert stats.workers == 4
        assert stats.batches_completed == 40
        assert stats.extra["event_loop"] == "asyncio"

    def test_max_window_bounds_in_flight(self):
        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=2, window=2, max_window=5)
        with backend:
            list(backend.map_ordered(lambda x: x, range(50)))
        stats = backend.stats()
        assert stats.in_flight_high_water <= 5
        assert stats.extra["window_high_water"] <= 5

    def test_adaptive_window_grows_on_stable_latency(self):
        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=2, window=2, max_window=8)
        with backend:
            list(backend.map_ordered(lambda x: (time.sleep(0.005), x)[1], range(30)))
        extra = backend.stats().extra
        assert extra["window_initial"] == 2
        assert extra["window_growths"] > 0
        assert extra["window_high_water"] > 2
        assert extra["maps_completed"] == 1

    def test_adaptive_disabled_pins_window(self):
        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=2, window=3, adaptive=False)
        with backend:
            list(backend.map_ordered(lambda x: x, range(20)))
        extra = backend.stats().extra
        assert extra["window_growths"] == 0
        assert extra["window_shrinks"] == 0
        assert extra["window_high_water"] == 3

    def test_worker_error_propagates(self):
        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=2)

        def boom(x: int) -> int:
            if x == 3:
                raise RuntimeError("bad async batch")
            return x

        with backend:
            with pytest.raises(RuntimeError, match="bad async batch"):
                list(backend.map_ordered(boom, range(10)))
        # The accounting invariant survives errored runs: the batch that
        # raised still executed, so it counts as completed, and everything
        # dispatched is accounted for.
        stats = backend.stats()
        assert stats.batches_completed + stats.batches_cancelled == stats.batches_dispatched

    def test_closed_backend_refuses_work(self):
        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=2)
        backend.close()
        with pytest.raises(BackendError, match="closed"):
            list(backend.map_ordered(lambda x: x, [1]))
        backend.close()  # idempotent

    def test_early_close_cancels_pending_and_leaks_no_threads(self):
        """Abandoning the stream cancels unstarted batches (judged on the
        executor future, which cannot lie about already-running work) and
        close() joins both the loop thread and the executor workers."""
        from repro.pipeline.backends import AsyncBackend

        assert self._threads() == []
        backend = AsyncBackend(n_jobs=2, window=6, adaptive=False)

        def slow(x: int) -> int:
            time.sleep(0.05)
            return x

        stream = backend.map_ordered(slow, range(50))
        assert next(stream) == 0
        stream.close()  # abandon mid-stream
        backend.close()
        stats = backend.stats()
        assert stats.batches_cancelled >= 1
        assert stats.batches_completed + stats.batches_cancelled == stats.batches_dispatched
        assert stats.batches_completed < 50
        assert self._threads() == []

    def test_amap_ordered_runs_on_a_caller_owned_loop(self):
        """The asyncio-native generator works from any loop (the serve
        multiplexer's usage); the executor pool is shared either way."""
        import asyncio

        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=2)

        async def collect() -> list[int]:
            out = []
            async for value in backend.amap_ordered(lambda x: x * x, range(12)):
                out.append(value)
            return out

        try:
            assert asyncio.run(collect()) == [x * x for x in range(12)]
        finally:
            backend.close()

    def test_concurrent_maps_share_one_backend(self):
        """Two threads streaming through one instance interleave safely —
        the invariant the parse service relies on."""
        from repro.pipeline.backends import AsyncBackend

        backend = AsyncBackend(n_jobs=4)
        results: dict[str, list[int]] = {}

        def run(label: str, offset: int) -> None:
            results[label] = list(
                backend.map_ordered(
                    lambda x: (time.sleep(0.002), x + offset)[1], range(20)
                )
            )

        threads = [
            threading.Thread(target=run, args=("a", 0)),
            threading.Thread(target=run, args=("b", 100)),
        ]
        with backend:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results["a"] == list(range(20))
        assert results["b"] == list(range(100, 120))
        stats = backend.stats()
        assert stats.batches_completed == 40
        assert stats.extra["maps_completed"] == 2


class TestAdaptiveWindowController:
    def test_grows_additively_on_stable_latency(self):
        from repro.pipeline.backends import AdaptiveWindow

        window = AdaptiveWindow(initial=2, min_size=1, max_size=6)
        for _ in range(10):
            window.observe(0.01)
        assert window.size == 6  # grew to the cap, one step at a time
        assert window.growths == 4
        assert window.high_water == 6

    def test_shrinks_multiplicatively_on_latency_spike(self):
        from repro.pipeline.backends import AdaptiveWindow

        window = AdaptiveWindow(initial=8, min_size=1, max_size=8)
        window.observe(0.01)  # prime the EWMA
        window.observe(0.2)  # 20x spike
        assert window.size == 4  # halved, not decremented
        assert window.shrinks == 1
        assert window.low_water == 4
        window.observe(1.0)
        assert window.size <= 4

    def test_respects_bounds(self):
        from repro.pipeline.backends import AdaptiveWindow

        window = AdaptiveWindow(initial=2, min_size=2, max_size=3)
        window.observe(0.01)
        for _ in range(5):
            window.observe(10.0)
        assert window.size >= 2
        for _ in range(20):
            window.observe(0.001)
        assert window.size <= 3

    def test_disabled_never_moves(self):
        from repro.pipeline.backends import AdaptiveWindow

        window = AdaptiveWindow(initial=4, min_size=1, max_size=8, enabled=False)
        for latency in (0.01, 5.0, 0.0001):
            window.observe(latency)
        assert window.size == 4
        assert window.growths == window.shrinks == 0

    def test_initial_clamped_into_bounds(self):
        from repro.pipeline.backends import AdaptiveWindow

        assert AdaptiveWindow(initial=100, min_size=1, max_size=8).size == 8
        assert AdaptiveWindow(initial=0, min_size=2, max_size=8).size == 2


# ---------------------------------------------------------------------- #
# HPC adapter
# ---------------------------------------------------------------------- #
class TestHPCBackend:
    def test_results_match_serial_and_extra_has_simulation(self, registry, small_corpus):
        documents = list(small_corpus)
        baseline = ParsePipeline(registry).run(
            request_for_documents("pymupdf", documents, batch_size=4)
        )
        report = ParsePipeline(registry).run(
            request_for_documents(
                "pymupdf", documents, batch_size=4,
                backend="hpc",
                backend_options={"n_nodes": 2, "docs_per_archive": 8},
            )
        )
        assert [r.text for r in report.results] == [r.text for r in baseline.results]
        assert report.execution.backend == "hpc"
        assert report.execution.workers == 2
        extra = report.execution.extra
        assert extra["sim_nodes"] == 2
        assert extra["sim_time_s"] > 0
        assert extra["sim_docs_per_s"] > 0
        assert extra["sim_documents_completed"] == len(documents)

    def test_direct_adapter_replay_is_cached_until_new_work(self):
        backend = HPCBackend(n_nodes=1, docs_per_archive=4)
        assert backend.stats().extra == {}  # nothing ran, nothing simulated
        backend.close()

    def test_reused_instance_labels_mixed_parsers(self):
        from repro.parsers.base import ParseResult

        backend = HPCBackend(n_nodes=1, docs_per_archive=4)
        batches = [
            ([ParseResult(parser_name="pymupdf", doc_id="a", page_texts=["x"])], []),
            ([ParseResult(parser_name="nougat", doc_id="b", page_texts=["y"])], []),
        ]
        list(backend.map_ordered(lambda batch: batch, batches))
        # The aggregated replay is honestly labelled rather than attributed
        # to whichever parser happened to run first.
        assert backend._parser_name == "mixed"
        assert backend.stats().extra["sim_documents_completed"] == 2
        backend.close()


# ---------------------------------------------------------------------- #
# Consumers accept backend specs
# ---------------------------------------------------------------------- #
class TestConsumers:
    def test_pipeline_accepts_backend_instance_and_reports_stats(
        self, registry, small_corpus
    ):
        backend = ThreadBackend(n_jobs=2)
        pipeline = ParsePipeline(registry)
        with backend:
            results, _ = pipeline.parse_with_telemetry(
                "pymupdf", list(small_corpus), batch_size=4, backend=backend
            )
        assert len(results) == len(small_corpus)
        assert backend.stats().batches_dispatched == 4

    def test_dataset_builder_backend_spec_matches_serial(self, registry, small_corpus):
        from repro.datasets.assembly import DatasetBuildConfig, DatasetBuilder

        parser = registry.get("pymupdf")
        threaded = DatasetBuilder(
            parser,
            DatasetBuildConfig(
                min_tokens=10, backend="thread", backend_options={"n_jobs": 2}
            ),
        ).build(small_corpus)
        serial = DatasetBuilder(parser, DatasetBuildConfig(min_tokens=10)).build(
            small_corpus
        )
        assert threaded.summary() == serial.summary()

    def test_dataset_builder_rejects_unknown_backend(self):
        from repro.datasets.assembly import DatasetBuildConfig

        with pytest.raises(ValueError, match="known"):
            DatasetBuildConfig(backend="quantum")

    def test_dataset_builder_rejects_unknown_backend_option(self):
        from repro.datasets.assembly import DatasetBuildConfig

        with pytest.raises(ValueError, match="njobs"):
            DatasetBuildConfig(backend="thread", backend_options={"njobs": 8})

    def test_harness_config_rejects_unknown_backend_option(self):
        from repro.evaluation.harness import HarnessConfig

        with pytest.raises(ValueError, match="known"):
            HarnessConfig(backend="quantum")
        with pytest.raises(ValueError, match="njobs"):
            HarnessConfig(backend="thread", backend_options={"njobs": 8})

    def test_config_n_jobs_aliases_raise_like_the_request(self):
        from repro.datasets.assembly import DatasetBuildConfig
        from repro.evaluation.harness import HarnessConfig

        with pytest.raises(TypeError, match="backend_options"):
            DatasetBuildConfig(n_jobs=2)
        with pytest.raises(TypeError, match="backend_options"):
            HarnessConfig(n_jobs=2)

    def test_serial_request_never_imports_hpc_stack(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parents[1])
        code = (
            "import sys, repro\n"
            "repro.ParseRequest(parser='pymupdf', n_documents=2, backend='serial')\n"
            "assert not any(m.startswith('repro.hpc') for m in sys.modules), 'hpc leaked'\n"
            "assert 'repro.pipeline.backends.async_' not in sys.modules, 'async leaked'\n"
            "assert not any(m.startswith('repro.serve') for m in sys.modules), 'serve leaked'\n"
        )
        env = dict(os.environ, PYTHONPATH=src)
        subprocess.run([sys.executable, "-c", code], check=True, env=env)

    def test_harness_backend_spec(self, registry, small_corpus):
        from repro.evaluation.harness import EvaluationHarness, HarnessConfig

        harness = EvaluationHarness(
            HarnessConfig(backend="thread", backend_options={"n_jobs": 2})
        )
        report = harness.evaluate(
            small_corpus, [registry.get("pymupdf")], compute_win_rate=False
        )
        assert "pymupdf" in report.aggregates


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def test_pipeline_backend_flags(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "pipeline",
                "--documents", "6",
                "--seed", "4",
                "--backend", "thread",
                "--backend-opt", "n_jobs=2",
                "--backend-opt", "window=4",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["execution"]["backend"] == "thread"
        assert payload["execution"]["workers"] == 2
        assert payload["request"]["backend"] == "thread"
        assert payload["request"]["backend_options"] == {"n_jobs": 2, "window": 4}

    def test_pipeline_jobs_flag_is_a_hard_error_with_the_fix(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--backend thread --backend-opt n_jobs=2"):
            main(["pipeline", "--documents", "4", "--jobs", "2"])

    def test_dataset_jobs_flag_is_a_hard_error(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--jobs was removed"):
            main(["dataset", "--documents", "4", "--min-tokens", "5", "--jobs", "2"])

    def test_dataset_backend_flags(self, capsys):
        from repro.cli import main

        exit_code = main(
            [
                "dataset",
                "--documents", "4",
                "--min-tokens", "5",
                "--backend", "serial",
            ]
        )
        assert exit_code == 0
        assert '"retention_rate"' in capsys.readouterr().out

    def test_malformed_backend_opt_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="key=value"):
            main(["pipeline", "--documents", "2", "--backend-opt", "n_jobs"])
