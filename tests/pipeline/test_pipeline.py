"""Tests of the unified ParseRequest/ParseReport pipeline API."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import AdaParseConfig
from repro.core.engine import AdaParseEngine
from repro.documents.corpus import CorpusConfig, build_corpus
from repro.parsers.registry import default_registry
from repro.pipeline import (
    DEFAULT_BATCH_SIZE,
    ParsePipeline,
    ParseReport,
    ParseRequest,
    request_for_documents,
)


class ScriptedEngine(AdaParseEngine):
    """Engine double with deterministic improvement scores (no training)."""

    name = "scripted"

    def improvement_scores(self, documents, extracted_texts) -> np.ndarray:
        # Strictly increasing, all above the improvement margin: under a
        # per-batch α cap the top-k of every batch must be routed.
        return np.linspace(0.1, 1.0, len(documents))


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def corpus_250():
    return build_corpus(CorpusConfig(n_documents=250, seed=11, min_pages=2, max_pages=4))


@pytest.fixture(scope="module")
def small_corpus():
    return build_corpus(CorpusConfig(n_documents=20, seed=13, min_pages=2, max_pages=4))


@pytest.fixture()
def engine(registry):
    return ScriptedEngine(registry, AdaParseConfig(alpha=0.05, batch_size=100))


class TestParseRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParseRequest(n_documents=0)
        with pytest.raises(TypeError, match="n_jobs was removed"):
            ParseRequest(n_jobs=4)
        with pytest.raises(ValueError):
            ParseRequest(batch_size=0)
        with pytest.raises(ValueError):
            ParseRequest(alpha=1.5)

    def test_documents_coerced_to_tuple(self, small_corpus):
        request = ParseRequest(documents=list(small_corpus))
        assert isinstance(request.documents, tuple)
        assert request.corpus_config() is None
        # Provenance count follows the explicit collection, not the default.
        assert request.n_documents == len(small_corpus)
        assert request.to_json_dict()["n_documents"] == len(small_corpus)

    def test_empty_documents_rejected(self):
        with pytest.raises(ValueError):
            ParseRequest(documents=())

    def test_corpus_shortcut(self):
        request = ParseRequest(n_documents=7, seed=3)
        config = request.corpus_config()
        assert config is not None
        assert (config.n_documents, config.seed) == (7, 3)

    def test_json_round_trip(self):
        from repro.documents.textgen import TextGenConfig

        request = ParseRequest(
            parser="nougat",
            corpus=CorpusConfig(
                n_documents=9,
                seed=4,
                min_pages=2,
                max_pages=5,
                textgen=TextGenConfig(min_words_per_sentence=30, max_words_per_sentence=40),
            ),
            batch_size=3,
            alpha=0.2,
            backend="thread",
            backend_options={"n_jobs": 2},
        )
        rebuilt = ParseRequest.from_json_dict(request.to_json_dict())
        assert rebuilt.parser == "nougat"
        assert rebuilt.batch_size == 3
        assert rebuilt.alpha == 0.2
        assert rebuilt.backend == "thread"
        assert rebuilt.backend_options == {"n_jobs": 2}
        # The full corpus spec (including nested textgen knobs) is lossless,
        # so a rehydrated request replays over identical documents.
        assert rebuilt.corpus == request.corpus
        # Headline provenance mirrors the corpus spec.
        assert (rebuilt.n_documents, rebuilt.seed) == (9, 4)

    def test_explicit_documents_rebuild_but_refuse_replay(self, registry, small_corpus):
        request = request_for_documents("pymupdf", list(small_corpus))
        payload = request.to_json_dict()
        assert payload["doc_ids"] == [d.doc_id for d in small_corpus]
        rebuilt = ParseRequest.from_json_dict(payload)
        # Inspectable provenance survives...
        assert rebuilt.doc_ids == tuple(d.doc_id for d in small_corpus)
        assert rebuilt.n_documents == len(small_corpus)
        # ...but replaying against a freshly generated corpus is refused.
        with pytest.raises(ValueError, match="not serialised"):
            rebuilt.corpus_config()
        with pytest.raises(ValueError, match="not serialised"):
            ParsePipeline(registry).run(rebuilt)


class TestPipelineRun:
    def test_run_matches_legacy_parse_many(self, registry, small_corpus):
        parser = registry.get("pymupdf")
        legacy = parser.parse_many(list(small_corpus))
        report = ParsePipeline(registry).run(
            request_for_documents("pymupdf", list(small_corpus))
        )
        assert [r.text for r in report.results] == [r.text for r in legacy]
        assert [r.doc_id for r in report.results] == [d.doc_id for d in small_corpus]
        assert report.decisions == []
        assert report.n_succeeded == len(small_corpus)
        assert report.throughput_docs_per_second > 0
        assert report.usage.cpu_seconds == pytest.approx(
            sum(r.usage.cpu_seconds for r in legacy)
        )

    def test_engine_run_matches_legacy(self, registry, engine, small_corpus):
        documents = list(small_corpus)
        legacy = engine.parse_many(documents)
        report = ParsePipeline(registry, engines={engine.name: engine}).run(
            request_for_documents(engine.name, documents)
        )
        assert [r.text for r in report.results] == [r.text for r in legacy]
        assert len(report.decisions) == len(documents)
        assert report.fraction_routed() <= engine.config.alpha + 1e-9

    def test_thread_backend_parity(self, registry, engine, corpus_250):
        documents = list(corpus_250)
        pipeline = ParsePipeline(registry, engines={engine.name: engine})
        serial = pipeline.run(request_for_documents(engine.name, documents))
        threaded = pipeline.run(
            request_for_documents(
                engine.name, documents,
                backend="thread", backend_options={"n_jobs": 4},
            )
        )
        assert [r.text for r in serial.results] == [r.text for r in threaded.results]
        assert serial.decisions == threaded.decisions
        assert serial.execution.backend == "serial"
        assert threaded.execution.backend == "thread"

    def test_removed_n_jobs_raises_and_backend_options_replace_it(
        self, registry, engine, small_corpus
    ):
        documents = list(small_corpus)
        with pytest.raises(TypeError, match="backend_options"):
            request_for_documents(engine.name, documents, n_jobs=4)
        # The replacement spelling reaches the thread backend.
        report = ParsePipeline(registry, engines={engine.name: engine}).run(
            request_for_documents(
                engine.name,
                documents,
                backend="thread",
                backend_options={"n_jobs": 4},
            )
        )
        assert report.execution.backend == "thread"
        assert report.execution.workers == 4

    def test_alpha_override_produces_sibling_engine(self, registry, engine, small_corpus):
        pipeline = ParsePipeline(registry, engines={engine.name: engine})
        report = pipeline.run(
            request_for_documents(engine.name, list(small_corpus), alpha=0.0)
        )
        assert report.fraction_routed() == 0.0
        # The cached engine keeps its original budget; the run's telemetry
        # travels in the report, not on the engine.
        assert engine.config.alpha == 0.05
        assert len(report.decisions) == len(small_corpus)

    def test_unknown_parser_lists_known_names(self, registry):
        with pytest.raises(KeyError, match="adaparse_ft"):
            ParsePipeline(registry).run(ParseRequest(parser="nope", n_documents=2))

    def test_run_from_corpus_spec_is_deterministic(self, registry):
        request = ParseRequest(
            parser="pypdf",
            corpus=CorpusConfig(n_documents=6, seed=21, min_pages=2, max_pages=3),
        )
        first = ParsePipeline(registry).run(request)
        second = ParsePipeline(registry).run(request)
        assert [r.text for r in first.results] == [r.text for r in second.results]


class TestAlphaBudgetAtBatchBoundaries:
    def test_each_batch_independently_capped(self, registry, engine, corpus_250):
        documents = list(corpus_250)
        pipeline = ParsePipeline(registry, engines={engine.name: engine})
        batch_sizes: list[int] = []
        for results, decisions in pipeline.parse_batches(engine, documents, batch_size=100):
            assert len(results) == len(decisions)
            batch_sizes.append(len(results))
            routed = [
                d for d in decisions if d.stage in ("cls1_invalid", "routed_high_quality")
            ]
            forced = [d for d in decisions if d.stage == "cls1_invalid"]
            cap = math.floor(engine.config.alpha * len(results))
            assert len(routed) <= cap + len(forced)
            # Within one batch the α cap itself is never exceeded.
            assert len(routed) <= cap
        assert batch_sizes == [100, 100, 50]

    def test_fraction_routed_respects_alpha_overall(self, registry, engine, corpus_250):
        documents = list(corpus_250)
        report = ParsePipeline(registry, engines={engine.name: engine}).run(
            request_for_documents(engine.name, documents, batch_size=100)
        )
        assert len(report.decisions) == 250
        assert report.fraction_routed() <= engine.config.alpha + 1e-9
        assert sum(report.counts_by_stage().values()) == 250


class TestStreaming:
    def test_iter_parse_is_lazy(self, registry, corpus_250):
        pipeline = ParsePipeline(registry)
        consumed = 0

        def feed():
            nonlocal consumed
            for document in corpus_250:
                consumed += 1
                yield document

        stream = pipeline.iter_parse("pymupdf", feed(), batch_size=10)
        first = next(stream)
        assert first.doc_id == corpus_250[0].doc_id
        # Only the first batch was pulled from the source — the full corpus's
        # results were never materialised.
        assert consumed == 10
        rest = list(stream)
        assert consumed == len(corpus_250)
        assert len(rest) == len(corpus_250) - 1

    def test_base_parser_iter_parse_streams(self, registry, small_corpus):
        parser = registry.get("pymupdf")
        consumed = 0

        def feed():
            nonlocal consumed
            for document in small_corpus:
                consumed += 1
                yield document

        stream = parser.iter_parse(feed())
        first = next(stream)
        assert first.doc_id == small_corpus[0].doc_id
        assert consumed == 1  # one document parsed per pull, nothing buffered
        assert len(list(stream)) == len(small_corpus) - 1

    def test_engine_iter_parse_streams_batches(self, registry, engine, corpus_250):
        stream = engine.iter_parse(iter(corpus_250))
        first = next(stream)
        assert first.doc_id == corpus_250[0].doc_id
        assert first.parser_name == engine.name

    def test_threaded_streaming_preserves_order(self, registry, corpus_250):
        pipeline = ParsePipeline(registry)
        streamed = list(
            pipeline.iter_parse(
                "pymupdf",
                iter(corpus_250),
                batch_size=16,
                backend="thread",
                backend_options={"n_jobs": 4},
            )
        )
        assert [r.doc_id for r in streamed] == [d.doc_id for d in corpus_250]

    def test_default_batch_size_used_for_base_parsers(self, registry, small_corpus):
        pipeline = ParsePipeline(registry)
        batches = list(pipeline.parse_batches("pymupdf", list(small_corpus)))
        assert len(batches) == math.ceil(len(small_corpus) / DEFAULT_BATCH_SIZE)


class TestTelemetryRemoval:
    """``last_summary`` finished its deprecation cycle: access now fails."""

    def test_last_summary_reads_raise_with_pointer(self, engine, small_corpus):
        engine.parse_many(list(small_corpus))
        with pytest.raises(AttributeError, match="parse_with_telemetry"):
            engine.last_summary

    def test_last_summary_writes_raise(self, engine):
        with pytest.raises(AttributeError, match="removed"):
            engine.last_summary = None

    def test_no_hidden_telemetry_state_accumulates(
        self, registry, engine, small_corpus
    ):
        documents = list(small_corpus)
        pipeline = ParsePipeline(registry, engines={engine.name: engine})
        _, decisions = pipeline.parse_with_telemetry(engine, documents)
        assert len(decisions) == len(documents)
        engine.parse(documents[0])
        list(engine.iter_parse(documents))
        list(engine.parse_batches(documents))
        assert not hasattr(engine, "_last_summary")


class TestReportRoundTrip:
    def test_report_round_trips_with_text(self, registry, engine, small_corpus):
        report = ParsePipeline(registry, engines={engine.name: engine}).run(
            request_for_documents(engine.name, list(small_corpus), batch_size=8)
        )
        rebuilt = ParseReport.from_json_dict(report.to_json_dict(include_text=True))
        assert [r.text for r in rebuilt.results] == [r.text for r in report.results]
        assert rebuilt.decisions == report.decisions
        assert rebuilt.usage == report.usage
        assert rebuilt.parser_name == report.parser_name
        assert rebuilt.summary() == report.summary()

    def test_report_without_text_keeps_telemetry(self, registry, small_corpus):
        report = ParsePipeline(registry).run(
            ParseRequest(
                parser="pymupdf",
                corpus=CorpusConfig(n_documents=5, seed=2, min_pages=2, max_pages=3),
            )
        )
        rebuilt = ParseReport.from_json_dict(report.to_json_dict(include_text=False))
        assert [r.doc_id for r in rebuilt.results] == [r.doc_id for r in report.results]
        assert all(r.page_texts == [] for r in rebuilt.results)
        # Page/character counts survive even though the texts were dropped.
        assert [r.n_pages for r in rebuilt.results] == [r.n_pages for r in report.results]
        assert [r.n_characters for r in rebuilt.results] == [
            r.n_characters for r in report.results
        ]
        assert rebuilt.request == report.request


class TestConsumers:
    def test_dataset_builder_streams_through_pipeline(self, registry, small_corpus):
        from repro.datasets.assembly import DatasetBuildConfig, DatasetBuilder

        parser = registry.get("pymupdf")
        config = DatasetBuildConfig(
            min_tokens=10, backend="thread", backend_options={"n_jobs": 2}
        )
        built = DatasetBuilder(parser, config).build(small_corpus)
        legacy = DatasetBuilder(parser, config).build_from_results(
            small_corpus, parser.parse_many(list(small_corpus))
        )
        assert built.summary() == legacy.summary()

    def test_harness_collects_routing_telemetry(self, registry, engine, small_corpus):
        from repro.evaluation.harness import EvaluationHarness, HarnessConfig

        pipeline = ParsePipeline(registry, engines={engine.name: engine})
        harness = EvaluationHarness(
            HarnessConfig(backend="thread", backend_options={"n_jobs": 2}),
            pipeline=pipeline,
        )
        report = harness.evaluate(small_corpus, [registry.get("pymupdf"), engine])
        assert len(report.routing[engine.name]) == len(small_corpus)
        assert report.routing["pymupdf"] == []
        assert engine.name in report.aggregates
