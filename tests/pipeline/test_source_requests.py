"""Tests of the source-centred ParseRequest API.

Covers the redesign's acceptance criteria: a request built from a source
*instance* and one built from the equivalent declarative *spec* produce
byte-identical reports; request JSON is strict about unknown keys; legacy
constructors still work behind a DeprecationWarning; source fingerprints
and cache keys interact correctly (content-addressed sharing, edit → miss);
and HTML documents never route to PDF-only recognition parsers.
"""

from __future__ import annotations

import json
import os
import shutil
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.cache import ParseCache
from repro.core.config import AdaParseConfig
from repro.core.engine import AdaParseEngine
from repro.documents.corpus import CorpusConfig
from repro.documents.sources import (
    HtmlDirSource,
    MarkdownDirSource,
    SourceSpec,
    SyntheticSource,
)
from repro.parsers.registry import default_registry
from repro.pipeline import ParsePipeline, ParseRequest

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "ingest"

#: Timing-dependent payload fields (zeroed before byte comparison).
_TIMING_KEYS = {
    "wall_time_seconds",
    "throughput_docs_per_second",
    "time_saved_seconds",
    "bytes_read",
    "bytes_written",
}
#: ``phases`` is wall-clock attribution — timing telemetry, not parse output.
_EXECUTION_KEYS = {"execution", "backend", "backend_options", "phases"}


def _normalized_bytes(payload: dict) -> bytes:
    """Report JSON with timings zeroed and execution descriptors dropped."""

    def scrub(node):
        if isinstance(node, dict):
            return {
                key: (0 if key in _TIMING_KEYS else scrub(value))
                for key, value in node.items()
                if key not in _EXECUTION_KEYS
            }
        if isinstance(node, list):
            return [scrub(item) for item in node]
        return node

    return json.dumps(scrub(payload), sort_keys=True).encode("utf-8")


class ScriptedEngine(AdaParseEngine):
    """Engine double with deterministic improvement scores (no training)."""

    name = "scripted"

    def improvement_scores(self, documents, extracted_texts) -> np.ndarray:
        # All above the improvement margin: every document wants routing.
        return np.linspace(0.5, 1.0, len(documents))


@pytest.fixture(scope="module")
def registry():
    return default_registry()


def _run(registry, request: ParseRequest, cache: ParseCache | None = None):
    engine = ScriptedEngine(registry, AdaParseConfig(alpha=1.0, batch_size=50))
    pipeline = ParsePipeline(registry, engines={engine.name: engine}, cache=cache)
    return pipeline.run(request)


# ---------------------------------------------------------------------- #
# Spec ↔ instance parity
# ---------------------------------------------------------------------- #
class TestSourceParity:
    def test_instance_spec_mapping_and_shorthand_agree(self, registry):
        path = str(FIXTURES / "html")
        requests = [
            ParseRequest(parser="pymupdf", source=HtmlDirSource(path)),
            ParseRequest(parser="pymupdf", source=SourceSpec("html-dir", {"path": path})),
            ParseRequest(
                parser="pymupdf",
                source={"kind": "html-dir", "options": {"path": path}},
            ),
            ParseRequest(parser="pymupdf", source=f"html-dir:{path}"),
        ]
        assert all(r == requests[0] for r in requests)
        reports = [
            _normalized_bytes(_run(registry, r).to_json_dict(include_text=True))
            for r in requests
        ]
        assert all(blob == reports[0] for blob in reports)

    def test_parity_holds_on_the_thread_backend(self, registry):
        path = str(FIXTURES / "html")
        serial = _run(registry, ParseRequest(parser="pymupdf", source=HtmlDirSource(path)))
        threaded = _run(
            registry,
            ParseRequest(
                parser="pymupdf",
                source=f"html-dir:{path}",
                backend="thread",
                backend_options={"n_jobs": 2},
            ),
        )
        assert _normalized_bytes(threaded.to_json_dict(include_text=True)) == (
            _normalized_bytes(serial.to_json_dict(include_text=True))
        )

    def test_json_round_trip_replays_identically(self, registry):
        request = ParseRequest(
            parser="scripted",
            source=MarkdownDirSource(FIXTURES / "markdown"),
            batch_size=10,
        )
        wire = json.dumps(request.to_json_dict(), sort_keys=True)
        rebuilt = ParseRequest.from_json_dict(json.loads(wire))
        assert rebuilt == request
        assert _normalized_bytes(_run(registry, rebuilt).to_json_dict(include_text=True)) == (
            _normalized_bytes(_run(registry, request).to_json_dict(include_text=True))
        )

    def test_synthetic_shorthand_equals_legacy_count(self):
        modern = ParseRequest(source="synthetic:7?seed=3")
        with pytest.warns(DeprecationWarning, match="n_documents is deprecated"):
            legacy = ParseRequest(n_documents=7, seed=3)
        assert modern == legacy
        assert modern.source == SyntheticSource(CorpusConfig(n_documents=7, seed=3))


# ---------------------------------------------------------------------- #
# Strict JSON and legacy constructors
# ---------------------------------------------------------------------- #
class TestStrictJson:
    def test_unknown_key_fails_with_did_you_mean(self):
        with pytest.raises(ValueError, match=r"'sorce' \(did you mean 'source'\?\)"):
            ParseRequest.from_json_dict({"parser": "pymupdf", "sorce": "synthetic:5"})

    def test_unknown_key_without_a_close_match_still_lists_known(self):
        with pytest.raises(ValueError, match="known:"):
            ParseRequest.from_json_dict({"zzz_field": 1})

    def test_removed_n_jobs_payload_is_rejected(self):
        with pytest.raises(ValueError, match="n_jobs' was removed"):
            ParseRequest.from_json_dict({"parser": "pymupdf", "n_jobs": 4})
        # The old default rides through silently (archived request files).
        request = ParseRequest.from_json_dict({"parser": "pymupdf", "n_jobs": 1})
        assert request.parser == "pymupdf"

    def test_misspelled_source_option_fails_at_submit_time(self):
        payload = {
            "parser": "pymupdf",
            "source": {"kind": "html-dir", "options": {"glbo": "*.html"}},
        }
        with pytest.raises(ValueError, match="did you mean 'glob'"):
            ParseRequest.from_json_dict(payload)


class TestLegacyConstructors:
    def test_default_request_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            request = ParseRequest()
        assert isinstance(request.source, SyntheticSource)
        assert request.n_documents == 100

    def test_each_legacy_field_warns_and_normalises(self, small_corpus):
        with pytest.warns(DeprecationWarning, match="documents is deprecated"):
            explicit = ParseRequest(documents=tuple(small_corpus))
        assert explicit.source.kind == "explicit"
        with pytest.warns(DeprecationWarning, match="corpus is deprecated"):
            synthetic = ParseRequest(corpus=CorpusConfig(n_documents=4, seed=1))
        assert isinstance(synthetic.source, SyntheticSource)
        assert synthetic.n_documents == 4

    def test_source_and_conflicting_legacy_field_rejected(self, small_corpus):
        with pytest.raises(ValueError, match="not both"):
            ParseRequest(
                source="synthetic:5", documents=tuple(small_corpus)
            )


# ---------------------------------------------------------------------- #
# Source fingerprints × cache keys (satellite: content-addressed sharing)
# ---------------------------------------------------------------------- #
class TestFingerprintCacheInteraction:
    def test_byte_identical_sources_share_cache_entries(self, registry, tmp_path):
        shutil.copytree(FIXTURES / "html", tmp_path / "a")
        shutil.copytree(FIXTURES / "html", tmp_path / "b")
        # Freshen one copy's mtime: the *sources* now fingerprint apart even
        # though every document is byte-identical, so cache keys coincide.
        os.utime(tmp_path / "b" / "alpha.html")
        source_a = HtmlDirSource(tmp_path / "a")
        source_b = HtmlDirSource(tmp_path / "b")
        assert source_a.fingerprint() != source_b.fingerprint()

        cache = ParseCache()
        cold = _run(
            registry,
            ParseRequest(parser="pymupdf", source=source_a, cache="readwrite"),
            cache=cache,
        )
        assert (cold.cache.hits, cold.cache.misses) == (0, 2)
        warm = _run(
            registry,
            ParseRequest(parser="pymupdf", source=source_b, cache="readwrite"),
            cache=cache,
        )
        assert (warm.cache.hits, warm.cache.misses) == (2, 0)
        # The parse output itself is identical; only the cache/request
        # bookkeeping (hit counts, source path) differs between the runs.
        for section in ("results", "decisions"):
            cold_payload = cold.to_json_dict(include_text=True)[section]
            warm_payload = warm.to_json_dict(include_text=True)[section]
            assert _normalized_bytes({section: warm_payload}) == (
                _normalized_bytes({section: cold_payload})
            )

    def test_file_edit_changes_fingerprint_and_misses_the_cache(
        self, registry, tmp_path
    ):
        shutil.copytree(FIXTURES / "html", tmp_path / "html")
        source = HtmlDirSource(tmp_path / "html")
        cache = ParseCache()
        request = ParseRequest(parser="pymupdf", source=source, cache="readwrite")
        _run(registry, request, cache=cache)

        fingerprint_before = source.fingerprint()
        page = tmp_path / "html" / "alpha.html"
        page.write_text(page.read_text().replace("</body>", "<p>edited</p></body>"))
        assert source.fingerprint() != fingerprint_before

        rerun = _run(
            registry,
            ParseRequest(parser="pymupdf", source=source, cache="readwrite"),
            cache=cache,
        )
        # The edited page re-parses; the untouched one still hits.
        assert (rerun.cache.hits, rerun.cache.misses) == (1, 1)


# ---------------------------------------------------------------------- #
# Format-aware routing
# ---------------------------------------------------------------------- #
class TestFormatAwareRouting:
    def test_html_never_routes_to_pdf_only_parsers(self, registry):
        report = _run(
            registry,
            ParseRequest(parser="scripted", source=HtmlDirSource(FIXTURES / "html")),
        )
        pdf_only = {
            parser.name
            for parser in registry
            if not parser.supports_doc_type("html")
        }
        assert "nougat" in pdf_only
        assert report.decisions and all(
            decision.chosen_parser not in pdf_only for decision in report.decisions
        )
        # Every document *wanted* routing (scripted scores beat the margin)
        # but the advanced parser is PDF-only, so the decision records why.
        assert all(d.stage == "type_ineligible" for d in report.decisions)
        assert all(d.doc_type == "html" for d in report.decisions)

    def test_per_type_telemetry_in_the_summary(self, registry):
        report = _run(
            registry,
            ParseRequest(parser="scripted", source=HtmlDirSource(FIXTURES / "html")),
        )
        by_type = report.summary()["routing_by_doc_type"]
        assert set(by_type) == {"html"}
        assert by_type["html"]["type_ineligible"] == 2

    def test_base_parser_eligibility_guard(self, registry):
        documents = list(HtmlDirSource(FIXTURES / "html").iter_documents())
        nougat = registry.get("nougat")
        with pytest.raises(ValueError, match="does not support document type 'html'"):
            list(ParsePipeline.check_doc_type_eligibility(nougat, documents))
        pymupdf = registry.get("pymupdf")
        assert list(ParsePipeline.check_doc_type_eligibility(pymupdf, documents)) == documents

    def test_pdf_only_parser_over_html_source_fails_the_run(self, registry):
        request = ParseRequest(
            parser="nougat", source=HtmlDirSource(FIXTURES / "html")
        )
        with pytest.raises(ValueError, match="does not support document type"):
            _run(registry, request)

    def test_markdown_source_parses_end_to_end(self, registry):
        report = _run(
            registry,
            ParseRequest(
                parser="pymupdf", source=MarkdownDirSource(FIXTURES / "markdown")
            ),
        )
        assert report.n_documents == 2
        assert all(result.succeeded for result in report.results)
        assert sorted(result.doc_id for result in report.results) == [
            "appendix",
            "notes",
        ]
